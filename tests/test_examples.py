"""Smoke tests for the example scripts.

Each example must run to completion and print its headline content; these
tests keep the documentation executable as the library evolves.  They run
the ``main()`` functions in-process (fast, importable) rather than via
subprocess.
"""

from __future__ import annotations

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str, capsys) -> str:
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, f"{name}.py"))
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "characterization-free" in out
        assert "model built in" in out
        # The exact model must agree with the golden reference lines.
        assert "38.0 fF" in out

    def test_tradeoff_exploration(self, capsys):
        out = run_example("tradeoff_exploration", capsys)
        assert "size/accuracy trade-off" in out
        assert "preserves it exactly" in out

    def test_rtl_datapath_bounds(self, capsys):
        out = run_example("rtl_datapath_bounds", capsys)
        assert "conservatism violations: 0" in out
        assert "tightening vs constant bound" in out

    def test_blif_ip_model(self, capsys):
        out = run_example("blif_ip_model", capsys)
        assert "gray coding saves" in out
        assert "without ever opening the netlist" in out

    def test_hybrid_glitch_model(self, capsys):
        out = run_example("hybrid_glitch_model", capsys)
        assert "glitches are" in out
        assert "hybrid" in out

    def test_activity_analysis(self, capsys):
        out = run_example("activity_analysis", capsys)
        assert "worst-case transition" in out
        assert "most active nets" in out
