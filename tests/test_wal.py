"""Write-ahead log durability: framing, torn tails, crash recovery.

Unit tests exercise :class:`WriteAheadLog` directly — frame round
trips, snapshot + tail merges, torn-tail truncation, and seed-driven
truncation/bit-flip fuzzing (the prefix property: however the tail is
mangled, recovery yields an unbroken prefix of the appended records,
and recovering twice yields identical results).  Integration tests
rebase a :class:`BuildQueueServer` and an object store root onto the
log and kill/restart them in-thread: done stays done (never a double
publish), running returns to pending with attempts intact, and a
half-written object is never served.
"""

from __future__ import annotations

import contextlib
import json
import random
import zlib

import pytest

from repro.obs import get_metrics
from repro.serve import (
    BuildQueueClient,
    ObjectStoreBackend,
    ObjectStoreConfig,
    QueueConfig,
    WalError,
    WriteAheadLog,
    reset_breakers,
    start_object_store,
    start_queue,
)
from repro.serve.wal import MAX_RECORD_BYTES, _encode_frame
from repro.testing import faults

from tests.test_queue import make_netlist


@pytest.fixture(autouse=True)
def _fresh_breakers():
    # Ephemeral ports recycle across tests; a breaker opened by one
    # test must not short-circuit the next one's dial.
    reset_breakers()
    yield
    reset_breakers()


def counter_value(name: str) -> float:
    return get_metrics().counter(name).value


def records(n: int):
    return [{"op": "put", "seq": i, "blob": "x" * (i % 7)} for i in range(n)]


class TestFrameRoundTrip:
    def test_append_then_recover_returns_records_in_order(self, tmp_path):
        with WriteAheadLog(tmp_path, name="t") as wal:
            for rec in records(5):
                wal.append(rec)
            assert wal.lsn == 5
        state, tail = WriteAheadLog(tmp_path, name="t").recover()
        assert state is None
        assert tail == records(5)

    def test_lsn_continues_across_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path, name="t") as wal:
            wal.append({"op": "a"})
        reopened = WriteAheadLog(tmp_path, name="t")
        reopened.recover()
        assert reopened.append({"op": "b"}) == 2
        _, tail = WriteAheadLog(tmp_path, name="t").recover()
        assert [r["op"] for r in tail] == ["a", "b"]

    def test_oversized_record_rejected_without_lsn_advance(self, tmp_path):
        wal = WriteAheadLog(tmp_path, name="t")
        with pytest.raises(WalError):
            wal.append({"blob": "x" * (MAX_RECORD_BYTES + 1)})
        assert wal.lsn == 0
        wal.append({"op": "ok"})
        _, tail = WriteAheadLog(tmp_path, name="t").recover()
        assert tail == [{"op": "ok"}]

    def test_fsync_disabled_still_recovers(self, tmp_path):
        with WriteAheadLog(tmp_path, name="t", fsync=False) as wal:
            fsyncs_before = counter_value("wal.fsyncs")
            for rec in records(3):
                wal.append(rec)
            assert counter_value("wal.fsyncs") == fsyncs_before
        _, tail = WriteAheadLog(tmp_path, name="t").recover()
        assert tail == records(3)


class TestSnapshotAndCompaction:
    def test_snapshot_plus_tail_merge_by_lsn(self, tmp_path):
        wal = WriteAheadLog(tmp_path, name="t")
        for rec in records(4):
            wal.append(rec)
        wal.compact({"applied": 4})
        assert wal.log_path.stat().st_size == 0
        wal.append({"op": "post", "seq": 99})
        state, tail = WriteAheadLog(tmp_path, name="t").recover()
        assert state == {"applied": 4}
        # Only the record after the snapshot's LSN replays.
        assert tail == [{"op": "post", "seq": 99}]

    def test_maybe_compact_honours_threshold(self, tmp_path):
        wal = WriteAheadLog(tmp_path, name="t", compact_every=3)
        wal.append({"op": "a"})
        assert not wal.should_compact
        assert not wal.maybe_compact({"n": 1})
        wal.append({"op": "b"})
        wal.append({"op": "c"})
        assert wal.should_compact
        assert wal.maybe_compact({"n": 3})
        assert wal.records_since_compact == 0
        state, tail = WriteAheadLog(tmp_path, name="t").recover()
        assert state == {"n": 3} and tail == []

    def test_corrupt_snapshot_falls_back_to_log_replay(self, tmp_path):
        wal = WriteAheadLog(tmp_path, name="t")
        for rec in records(3):
            wal.append(rec)
        # Forge a snapshot whose checksum lies; the log still holds
        # everything, so recovery must reject it and replay in full.
        wal.snapshot_path.write_text(
            json.dumps({"lsn": 3, "state": {"evil": True}, "sha256": "0" * 64})
        )
        rejects_before = counter_value("wal.snapshot_rejects")
        state, tail = WriteAheadLog(tmp_path, name="t").recover()
        assert state is None
        assert tail == records(3)
        assert counter_value("wal.snapshot_rejects") == rejects_before + 1

    def test_stats_reports_durability_corner(self, tmp_path):
        wal = WriteAheadLog(tmp_path, name="t", compact_every=7)
        wal.append({"op": "a"})
        stats = wal.stats()
        assert stats["lsn"] == 1
        assert stats["records_since_compact"] == 1
        assert stats["compact_every"] == 7
        assert stats["fsync"] is True
        assert stats["log_bytes"] > 0
        assert stats["has_snapshot"] is False


class TestTornTail:
    def test_partial_frame_truncated_on_replay(self, tmp_path):
        with WriteAheadLog(tmp_path, name="t") as wal:
            for rec in records(3):
                wal.append(rec)
        # Simulate a crash mid-append: half of a valid frame lands.
        payload = json.dumps({"lsn": 4, "rec": {"op": "torn"}}).encode()
        frame = _encode_frame(payload)
        with open(tmp_path / "t.log", "ab") as handle:
            handle.write(frame[: len(frame) // 2])
        truncations_before = counter_value("wal.torn_tail_truncations")
        wal2 = WriteAheadLog(tmp_path, name="t")
        _, tail = wal2.recover()
        assert tail == records(3)
        assert counter_value("wal.torn_tail_truncations") == (
            truncations_before + 1
        )
        # The torn bytes are gone from disk: appends continue cleanly.
        assert wal2.append({"op": "after"}) == 4
        _, tail = WriteAheadLog(tmp_path, name="t").recover()
        assert tail == records(3) + [{"op": "after"}]

    def test_crc_mismatch_cuts_the_tail(self, tmp_path):
        with WriteAheadLog(tmp_path, name="t") as wal:
            for rec in records(4):
                wal.append(rec)
        blob = bytearray((tmp_path / "t.log").read_bytes())
        blob[-1] ^= 0xFF  # flip a byte inside the last frame's payload
        (tmp_path / "t.log").write_bytes(bytes(blob))
        _, tail = WriteAheadLog(tmp_path, name="t").recover()
        assert tail == records(3)

    def test_absurd_length_field_does_not_allocate(self, tmp_path):
        with WriteAheadLog(tmp_path, name="t") as wal:
            wal.append({"op": "a"})
        import struct

        with open(tmp_path / "t.log", "ab") as handle:
            # A "frame" claiming 3 GiB: the guard must stop the scan.
            handle.write(struct.pack("<II", 3 << 30, zlib.crc32(b"")))
        _, tail = WriteAheadLog(tmp_path, name="t").recover()
        assert tail == [{"op": "a"}]

    def test_truncation_fuzz_prefix_property(self, tmp_path):
        """Cutting the log at ANY byte offset recovers an unbroken
        prefix, and recovering twice yields identical results."""
        rng = random.Random(20260808)
        base = tmp_path / "full"
        with WriteAheadLog(base, name="t") as wal:
            appended = records(12)
            for rec in appended:
                wal.append(rec)
        blob = (base / "t.log").read_bytes()
        for trial in range(20):
            cut = rng.randrange(0, len(blob) + 1)
            trial_dir = tmp_path / f"cut{trial}"
            trial_dir.mkdir()
            (trial_dir / "t.log").write_bytes(blob[:cut])
            _, tail = WriteAheadLog(trial_dir, name="t").recover()
            assert tail == appended[: len(tail)], f"cut at {cut}"
            # Deterministic: a second recovery sees the truncated file
            # and yields byte-identical results.
            again_state, again = WriteAheadLog(trial_dir, name="t").recover()
            assert again == tail and again_state is None

    def test_bitflip_fuzz_prefix_property(self, tmp_path):
        rng = random.Random(7)
        base = tmp_path / "full"
        with WriteAheadLog(base, name="t") as wal:
            appended = records(10)
            for rec in appended:
                wal.append(rec)
        blob = (base / "t.log").read_bytes()
        for trial in range(20):
            mangled = bytearray(blob)
            mangled[rng.randrange(len(mangled))] ^= 1 << rng.randrange(8)
            trial_dir = tmp_path / f"flip{trial}"
            trial_dir.mkdir()
            (trial_dir / "t.log").write_bytes(bytes(mangled))
            _, tail = WriteAheadLog(trial_dir, name="t").recover()
            # A flip mid-file cuts there; replayed records are still an
            # unbroken prefix of what was appended (CRC framing means a
            # flipped payload byte cannot masquerade as a valid record).
            assert tail == appended[: len(tail)]
            _, again = WriteAheadLog(trial_dir, name="t").recover()
            assert again == tail


class TestFaultSites:
    def test_torn_tail_site_leaves_recoverable_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path, name="t")
        wal.append({"op": "a"})
        with faults.inject([faults.FaultSpec("wal.torn_tail", times=1)]):
            with pytest.raises(OSError):
                wal.append({"op": "lost"})
        assert wal.lsn == 1  # the failed append did not ack
        wal2 = WriteAheadLog(tmp_path, name="t")
        _, tail = wal2.recover()
        assert tail == [{"op": "a"}]
        assert wal2.append({"op": "b"}) == 2

    def test_fsync_fail_site_does_not_advance_lsn(self, tmp_path):
        wal = WriteAheadLog(tmp_path, name="t")
        with faults.inject([faults.FaultSpec("wal.fsync_fail", times=1)]):
            with pytest.raises(OSError):
                wal.append({"op": "a"})
        assert wal.lsn == 0
        # Retry after the transient failure: clean append, lsn 1.
        assert wal.append({"op": "a"}) == 1
        _, tail = WriteAheadLog(tmp_path, name="t").recover()
        assert tail == [{"op": "a"}]


class TestQueueRecovery:
    def wal_config(self, tmp_path, **overrides) -> QueueConfig:
        kwargs = dict(
            lease_s=2.0,
            sweep_interval_s=0.05,
            max_attempts=3,
            wal_dir=str(tmp_path / "qwal"),
        )
        kwargs.update(overrides)
        return QueueConfig(**kwargs)

    def test_pending_jobs_survive_restart(self, tmp_path):
        config = self.wal_config(tmp_path)
        netlists = [make_netlist(i) for i in range(3)]
        with start_queue(config) as handle:
            with BuildQueueClient(handle.host, handle.port) as client:
                keys = [client.submit(n)["key"] for n in netlists]
        recovered_before = counter_value("queue.recovery.jobs")
        with start_queue(config) as handle:
            with BuildQueueClient(handle.host, handle.port) as client:
                stats = client.stats()
                assert stats["jobs"].get("pending") == 3
                claimed = {client.claim("w")["key"] for _ in range(3)}
        assert claimed == set(keys)
        assert counter_value("queue.recovery.jobs") == recovered_before + 3

    def test_done_stays_done_and_never_double_publishes(self, tmp_path):
        config = self.wal_config(tmp_path)
        netlist = make_netlist(0)
        with start_queue(config) as handle:
            with BuildQueueClient(handle.host, handle.port) as client:
                key = client.submit(netlist)["key"]
                client.claim("w1")
                assert client.publish(key, "w1")["accepted"]
        with start_queue(config) as handle:
            with BuildQueueClient(handle.host, handle.port) as client:
                assert client.wait(key, timeout_s=1.0)["state"] == "done"
                # A zombie worker's retried publish after the restart is
                # a duplicate, not a second accept.
                late = client.publish(key, "w-zombie")
                assert not late["accepted"] and late["duplicate"]
                # The done job dedupes resubmits, so no rebuild either.
                assert client.submit(netlist)["deduped"]

    def test_running_returns_to_pending_with_attempts_intact(self, tmp_path):
        config = self.wal_config(tmp_path)
        with start_queue(config) as handle:
            with BuildQueueClient(handle.host, handle.port) as client:
                key = client.submit(make_netlist(1))["key"]
                assert client.claim("w1")["attempt"] == 1
        requeued_before = counter_value("queue.recovery.requeued_leases")
        with start_queue(config) as handle:
            with BuildQueueClient(handle.host, handle.port) as client:
                claimed = client.claim("w2")
                assert claimed["key"] == key
                # The lease died with the server but the attempt did
                # not: crash loops still burn toward max_attempts.
                assert claimed["attempt"] == 2
        assert (
            counter_value("queue.recovery.requeued_leases")
            == requeued_before + 1
        )

    def test_recovery_is_idempotent_across_repeated_restarts(self, tmp_path):
        config = self.wal_config(tmp_path, wal_compact_every=4)
        netlists = [make_netlist(i) for i in range(4)]
        with start_queue(config) as handle:
            with BuildQueueClient(handle.host, handle.port) as client:
                keys = [client.submit(n)["key"] for n in netlists]
                client.claim("w1")
                client.publish(keys[0], "w1")
        for _ in range(3):  # restart repeatedly without touching state
            with start_queue(config) as handle:
                with BuildQueueClient(handle.host, handle.port) as client:
                    stats = client.stats()
                    assert stats["jobs"].get("done") == 1
                    assert stats["jobs"].get("pending") == 3

    def test_wal_stats_visible_in_queue_stats(self, tmp_path):
        config = self.wal_config(tmp_path)
        with start_queue(config) as handle:
            with BuildQueueClient(handle.host, handle.port) as client:
                client.submit(make_netlist(0))
                stats = client.stats()
                assert stats["wal"]["lsn"] >= 1
                assert stats["wal"]["fsync"] is True


class TestObjectStoreIndexRecovery:
    def config(self, tmp_path) -> ObjectStoreConfig:
        return ObjectStoreConfig(root=str(tmp_path / "objects"))

    def test_objects_survive_restart(self, tmp_path):
        config = self.config(tmp_path)
        with start_object_store(config) as handle:
            with contextlib.closing(
                ObjectStoreBackend(handle.host, handle.port)
            ) as backend:
                backend.put("objects/a.json", b"alpha")
                backend.put("objects/b.json", b"beta")
        with start_object_store(config) as handle:
            with contextlib.closing(
                ObjectStoreBackend(handle.host, handle.port)
            ) as backend:
                assert backend.get("objects/a.json") == b"alpha"
                assert sorted(backend.list("objects/")) == [
                    "objects/a.json",
                    "objects/b.json",
                ]

    def test_corrupted_object_dropped_never_served(self, tmp_path):
        config = self.config(tmp_path)
        with start_object_store(config) as handle:
            with contextlib.closing(
                ObjectStoreBackend(handle.host, handle.port)
            ) as backend:
                backend.put("objects/x.json", b"committed payload")
        # Corrupt the file behind the index's back — the on-disk image
        # of a torn write that was journaled but never completed.
        victim = tmp_path / "objects" / "objects" / "x.json"
        victim.write_bytes(b"half-wri")
        dropped_before = counter_value("objstore.recovery.dropped")
        with start_object_store(config) as handle:
            with contextlib.closing(
                ObjectStoreBackend(handle.host, handle.port)
            ) as backend:
                with pytest.raises(FileNotFoundError):
                    backend.get("objects/x.json")
                assert "objects/x.json" not in backend.list("objects/")
        assert counter_value("objstore.recovery.dropped") == dropped_before + 1

    def test_unindexed_file_adopted_on_recovery(self, tmp_path):
        config = self.config(tmp_path)
        with start_object_store(config) as handle:
            with contextlib.closing(
                ObjectStoreBackend(handle.host, handle.port)
            ) as backend:
                backend.put("objects/old.json", b"indexed")
        # A file that predates the index (or whose journal record was
        # lost with fsync off): present on disk, absent from the index.
        orphan = tmp_path / "objects" / "objects" / "orphan.json"
        orphan.write_bytes(b"adopt me")
        adopted_before = counter_value("objstore.recovery.adopted")
        with start_object_store(config) as handle:
            with contextlib.closing(
                ObjectStoreBackend(handle.host, handle.port)
            ) as backend:
                assert backend.get("objects/orphan.json") == b"adopt me"
        assert counter_value("objstore.recovery.adopted") >= adopted_before + 1

    def test_index_dir_never_listed(self, tmp_path):
        config = self.config(tmp_path)
        with start_object_store(config) as handle:
            with contextlib.closing(
                ObjectStoreBackend(handle.host, handle.port)
            ) as backend:
                backend.put("objects/a.json", b"a")
                names = backend.list("")
                assert all(not n.startswith(".index") for n in names)

    def test_delete_survives_restart(self, tmp_path):
        config = self.config(tmp_path)
        with start_object_store(config) as handle:
            with contextlib.closing(
                ObjectStoreBackend(handle.host, handle.port)
            ) as backend:
                backend.put("objects/gone.json", b"data")
                backend.delete("objects/gone.json")
        with start_object_store(config) as handle:
            with contextlib.closing(
                ObjectStoreBackend(handle.host, handle.port)
            ) as backend:
                assert backend.list("objects/") == []
