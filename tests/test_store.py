"""ModelStore: content addressing, LRU, corruption recovery, sharing."""

from __future__ import annotations

import json
import multiprocessing

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import build_add_model
from repro.netlist import Netlist, NetlistBuilder
from repro.obs import get_metrics
from repro.serve import ModelStore, canonical_build_config, store_key
from repro.sim import uniform_pairs


def small_netlist(name: str = "smallmac", flavor: int = 0) -> Netlist:
    """A 4-input mapped macro; ``flavor`` varies the structure."""
    builder = NetlistBuilder(name)
    a, b, c, d = (builder.input(ch) for ch in "abcd")
    if flavor == 0:
        out = builder.or2(builder.and2(a, b), builder.xor2(c, d))
    elif flavor == 1:
        out = builder.and2(builder.or2(a, b), builder.nand2(c, d))
    else:
        out = builder.xor2(builder.xor2(a, b), builder.or2(c, d))
    builder.netlist.add_output(out)
    return builder.build()


def counter_value(name: str) -> float:
    return get_metrics().counter(name).value


class TestKeying:
    def test_same_structure_same_key(self):
        left = small_netlist("name-one")
        right = small_netlist("name-two")
        assert left.content_hash() == right.content_hash()
        assert store_key(left, {}) == store_key(right, {})

    def test_config_changes_key(self):
        netlist = small_netlist()
        base = store_key(netlist, {})
        assert store_key(netlist, {"max_nodes": 7}) != base
        assert store_key(netlist, {"strategy": "max"}) != base
        # Defaults spelled explicitly hash like the empty config...
        assert store_key(netlist, {"max_nodes": None, "strategy": "avg"}) == base
        # ...and the empty config means build_add_model's real default
        # (an exact model), not some store-invented budget: a budgeted
        # build must never alias onto the exact model's key.
        assert store_key(netlist, {"max_nodes": 1000}) != base

    def test_defaults_track_builder_signature(self):
        import inspect

        from repro.models.addmodel import build_add_model

        signature_defaults = {
            name: parameter.default
            for name, parameter in inspect.signature(
                build_add_model
            ).parameters.items()
            if parameter.default is not inspect.Parameter.empty
        }
        assert canonical_build_config({}) == signature_defaults
        assert canonical_build_config({})["max_nodes"] is None

    def test_structure_changes_key(self):
        assert store_key(small_netlist(flavor=0), {}) != store_key(
            small_netlist(flavor=1), {}
        )

    def test_unknown_config_key_rejected(self):
        with pytest.raises(ModelError, match="unknown build config"):
            canonical_build_config({"max_nodez": 3})


class TestGetOrBuild:
    def test_miss_builds_then_hits(self, tmp_path):
        store = ModelStore(tmp_path)
        netlist = small_netlist()
        builds_before = counter_value("serve.store.builds")
        first = store.get_or_build(netlist, max_nodes=100)
        assert counter_value("serve.store.builds") == builds_before + 1
        # Second call: memory hit, identical object, no rebuild.
        second = store.get_or_build(netlist, max_nodes=100)
        assert second is first
        assert counter_value("serve.store.builds") == builds_before + 1
        # A fresh store on the same directory loads from disk.
        disk_hits_before = counter_value("serve.store.disk_hits")
        reloaded = ModelStore(tmp_path).get_or_build(netlist, max_nodes=100)
        assert counter_value("serve.store.builds") == builds_before + 1
        assert counter_value("serve.store.disk_hits") == disk_hits_before + 1
        initial, final = uniform_pairs(netlist.num_inputs, 32, seed=3)
        np.testing.assert_allclose(
            reloaded.pair_capacitances(initial, final),
            first.pair_capacitances(initial, final),
        )

    def test_cached_model_matches_direct_build(self, tmp_path):
        netlist = small_netlist()
        cached = ModelStore(tmp_path).get_or_build(netlist, max_nodes=50)
        direct = build_add_model(netlist, max_nodes=50)
        initial, final = uniform_pairs(netlist.num_inputs, 64, seed=5)
        np.testing.assert_allclose(
            cached.pair_capacitances(initial, final),
            direct.pair_capacitances(initial, final),
        )
        assert cached.source_hash == netlist.content_hash()

    def test_many_deduplicates_identical_jobs(self, tmp_path):
        store = ModelStore(tmp_path)
        netlist = small_netlist()
        builds_before = counter_value("serve.store.builds")
        models = store.get_or_build_many(
            [netlist, netlist, (netlist, {"max_nodes": 9})],
            processes=1,
            max_nodes=100,
        )
        assert counter_value("serve.store.builds") == builds_before + 2
        assert models[0] is models[1]
        assert models[2] is not models[0]

    def test_default_config_builds_exact_model(self, tmp_path):
        store = ModelStore(tmp_path)
        netlist = small_netlist()
        exact = store.get_or_build(netlist)
        assert exact.report is not None
        assert exact.report.max_nodes is None
        # An explicit budget is a different build and a different entry.
        budgeted = store.get_or_build(netlist, max_nodes=1000)
        assert budgeted is not exact
        assert store.get_or_build(netlist) is exact

    def test_put_and_contains(self, tmp_path):
        store = ModelStore(tmp_path)
        netlist = small_netlist()
        model = build_add_model(netlist, max_nodes=100)
        key = store.put(netlist, model, max_nodes=100)
        assert store.contains(key)
        assert store.key_for(netlist, max_nodes=100) == key
        assert store.get(key) is model


class TestLRU:
    def test_tight_budget_evicts_lru(self, tmp_path):
        # Budget below two payloads: only the most recent model stays.
        store = ModelStore(tmp_path, memory_budget_bytes=1)
        first_net, second_net = small_netlist(flavor=0), small_netlist(flavor=1)
        evictions_before = counter_value("serve.store.lru_evictions")
        store.get_or_build(first_net, max_nodes=100)
        store.get_or_build(second_net, max_nodes=100)
        assert store.memory_entries == 1
        assert counter_value("serve.store.lru_evictions") == evictions_before + 1
        # The evicted model still resolves — from disk, not a rebuild.
        builds_before = counter_value("serve.store.builds")
        again = store.get_or_build(first_net, max_nodes=100)
        assert counter_value("serve.store.builds") == builds_before
        assert again.macro_name == first_net.name

    def test_recently_used_survives(self, tmp_path):
        models = [
            build_add_model(small_netlist(flavor=k), max_nodes=100)
            for k in range(3)
        ]
        nets = [small_netlist(flavor=k) for k in range(3)]
        store = ModelStore(tmp_path)
        keys = [
            store.put(net, model, max_nodes=100)
            for net, model in zip(nets, models)
        ]
        # Shrink the budget to roughly two entries and touch key 0 so
        # key 1 is the least recently used.
        cost = store.memory_bytes // 3
        store.memory_budget_bytes = int(2.5 * cost)
        store.get(keys[0])
        store.get_or_build(small_netlist(flavor=1), max_nodes=9)  # new insert
        resident = set(store._lru)
        assert keys[0] in resident
        assert keys[1] not in resident


class TestCorruption:
    def test_truncated_entry_recovers(self, tmp_path):
        store = ModelStore(tmp_path)
        netlist = small_netlist()
        store.get_or_build(netlist, max_nodes=100)
        key = store.key_for(netlist, max_nodes=100)
        path = store._object_path(key)
        path.write_bytes(path.read_bytes()[:40])  # simulate a torn write
        fresh = ModelStore(tmp_path)
        corrupt_before = counter_value("serve.store.corrupt_entries")
        builds_before = counter_value("serve.store.builds")
        model = fresh.get_or_build(netlist, max_nodes=100)
        assert counter_value("serve.store.corrupt_entries") == corrupt_before + 1
        assert counter_value("serve.store.builds") == builds_before + 1
        assert model.macro_name == netlist.name
        assert path.exists()  # rebuilt and rewritten

    def test_wrong_netlist_payload_quarantined(self, tmp_path):
        store = ModelStore(tmp_path)
        impostor, victim = small_netlist(flavor=0), small_netlist(flavor=1)
        store.get_or_build(impostor, max_nodes=100)
        # Plant the impostor's entry under the victim's key.
        impostor_key = store.key_for(impostor, max_nodes=100)
        victim_key = store.key_for(victim, max_nodes=100)
        fresh = ModelStore(tmp_path)
        fresh._object_path(victim_key).write_bytes(
            store._object_path(impostor_key).read_bytes()
        )
        model = fresh.get_or_build(victim, max_nodes=100)
        assert model.source_hash == victim.content_hash()

    def test_structurally_malformed_payload_quarantined(self, tmp_path):
        # A payload that parses as JSON but whose node records have the
        # wrong shape raises TypeError/AttributeError deep in
        # model_from_dict; it must still be quarantined (not poison the
        # key forever).
        store = ModelStore(tmp_path)
        netlist = small_netlist()
        store.get_or_build(netlist, max_nodes=100)
        key = store.key_for(netlist, max_nodes=100)
        path = store._object_path(key)
        raw = json.loads(path.read_bytes())
        raw["model"]["nodes"] = [17, "not-a-node"]
        path.write_text(json.dumps(raw))
        fresh = ModelStore(tmp_path)
        corrupt_before = counter_value("serve.store.corrupt_entries")
        model = fresh.get_or_build(netlist, max_nodes=100)
        assert counter_value("serve.store.corrupt_entries") == corrupt_before + 1
        assert model.macro_name == netlist.name
        assert json.loads(path.read_bytes())["model"]["nodes"] != [17, "not-a-node"]

    def test_foreign_store_version_skipped_not_deleted(self, tmp_path):
        # An entry written by a *newer* store version sharing the
        # directory must survive: this build skips it (rebuilding in its
        # own format) instead of destroying the other build's cache.
        store = ModelStore(tmp_path)
        netlist = small_netlist()
        store.get_or_build(netlist, max_nodes=100)
        key = store.key_for(netlist, max_nodes=100)
        path = store._object_path(key)
        raw = json.loads(path.read_bytes())
        raw["version"] = 99
        future_blob = json.dumps(raw)
        path.write_text(future_blob)
        fresh = ModelStore(tmp_path)
        corrupt_before = counter_value("serve.store.corrupt_entries")
        skips_before = counter_value("serve.store.version_skips")
        assert fresh.get(key) is None
        assert counter_value("serve.store.version_skips") == skips_before + 1
        assert counter_value("serve.store.corrupt_entries") == corrupt_before
        assert path.read_text() == future_blob  # untouched

    def test_corrupt_manifest_rebuilt_from_objects(self, tmp_path):
        store = ModelStore(tmp_path)
        store.get_or_build(small_netlist(), max_nodes=100)
        store.manifest_path.write_text("not json at all")
        entries = ModelStore(tmp_path).ls()
        assert len(entries) == 1
        assert entries[0].macro_name == "smallmac"


class TestMaintenance:
    def test_ls_and_disk_bytes(self, tmp_path):
        store = ModelStore(tmp_path)
        store.get_or_build(small_netlist(flavor=0), max_nodes=100)
        store.get_or_build(small_netlist(flavor=1), max_nodes=100)
        entries = store.ls()
        assert len(entries) == 2
        assert store.disk_bytes() == sum(e.payload_bytes for e in entries)

    def test_gc_by_bytes_drops_oldest(self, tmp_path):
        store = ModelStore(tmp_path)
        store.get_or_build(small_netlist(flavor=0), max_nodes=100)
        store.get_or_build(small_netlist(flavor=1), max_nodes=100)
        removed = store.gc(max_bytes=0)
        assert len(removed) == 2
        assert store.ls() == []
        assert not store.contains(
            store.key_for(small_netlist(flavor=0), max_nodes=100)
        )

    def test_gc_by_age(self, tmp_path):
        store = ModelStore(tmp_path)
        store.get_or_build(small_netlist(), max_nodes=100)
        entry = store.ls()[0]
        assert store.gc(max_age_seconds=3600.0) == []
        removed = store.gc(
            max_age_seconds=10.0, now=entry.created_at + 3600.0
        )
        assert [e.key for e in removed] == [entry.key]

    def test_remove(self, tmp_path):
        store = ModelStore(tmp_path)
        netlist = small_netlist()
        store.get_or_build(netlist, max_nodes=100)
        key = store.key_for(netlist, max_nodes=100)
        assert store.remove(key)
        assert not store.contains(key)
        assert not store.remove(key)


class TestAccessRecency:
    """gc evicts by last access, not creation (regression for the switch)."""

    def test_gc_by_bytes_keeps_recently_accessed_over_recently_created(
        self, tmp_path
    ):
        store = ModelStore(tmp_path)
        old_net, new_net = small_netlist(flavor=0), small_netlist(flavor=1)
        store.get_or_build(old_net, max_nodes=100)   # created first...
        store.get_or_build(new_net, max_nodes=100)
        old_key = store.key_for(old_net, max_nodes=100)
        new_key = store.key_for(new_net, max_nodes=100)
        store.get(old_key)                           # ...but touched last
        entry_bytes = max(e.payload_bytes for e in store.ls())
        removed = store.gc(max_bytes=entry_bytes)
        # The created_at policy would evict old_key; recency keeps it.
        assert [e.key for e in removed] == [new_key]
        assert store.contains(old_key)

    def test_gc_by_age_uses_last_access(self, tmp_path):
        store = ModelStore(tmp_path)
        store.get_or_build(small_netlist(), max_nodes=100)
        entry = ModelStore(tmp_path).ls()[0]
        # Forge an access long after creation, as a manifest would
        # record it after a later process served the entry.
        raw = json.loads(store.manifest_path.read_text())
        raw["entries"][entry.key]["last_access_at"] = entry.created_at + 3000.0
        store.manifest_path.write_text(json.dumps(raw))
        fresh = ModelStore(tmp_path)
        # 3500s after creation but only 500s after the access: survives
        # a 600s age limit (created_at policy would have evicted it)...
        assert fresh.gc(
            max_age_seconds=600.0, now=entry.created_at + 3500.0
        ) == []
        # ...and goes once the *access* is older than the limit.
        removed = fresh.gc(
            max_age_seconds=600.0, now=entry.created_at + 4000.0
        )
        assert [e.key for e in removed] == [entry.key]

    def test_disk_hit_persists_last_access(self, tmp_path):
        store = ModelStore(tmp_path)
        store.get_or_build(small_netlist(), max_nodes=100)
        key = store.ls()[0].key
        created = store.ls()[0].created_at
        reader = ModelStore(tmp_path)
        assert reader.get(key) is not None  # disk hit records the access
        entry = ModelStore(tmp_path).ls()[0]
        assert entry.last_access_at >= created

    def test_older_manifest_without_field_still_reads(self, tmp_path):
        store = ModelStore(tmp_path)
        store.get_or_build(small_netlist(), max_nodes=100)
        raw = json.loads(store.manifest_path.read_text())
        for record in raw["entries"].values():
            record.pop("last_access_at", None)  # a pre-field manifest
        store.manifest_path.write_text(json.dumps(raw))
        entries = ModelStore(tmp_path).ls()
        assert len(entries) == 1
        assert entries[0].last_access_at == entries[0].created_at

    def test_gc_batches_evictions_into_one_manifest_write(self, tmp_path):
        store = ModelStore(tmp_path)
        for flavor in range(3):
            store.get_or_build(small_netlist(flavor=flavor), max_nodes=100)
        writes = []
        original = store._write_manifest
        store._write_manifest = lambda entries: (
            writes.append(1), original(entries),
        )[1]
        removed = store.gc(max_bytes=0)
        assert len(removed) == 3
        assert len(writes) == 1  # used to be one rewrite per entry
        assert store.ls() == []


class TestPrefetchReport:
    def test_prefetch_splits_hits_and_builds(self, tmp_path):
        store = ModelStore(tmp_path)
        nets = [small_netlist(flavor=0), small_netlist(flavor=1)]
        store.get_or_build(nets[0], max_nodes=100)
        hits_before = counter_value("serve.store.warm.hits")
        builds_before = counter_value("serve.store.warm.builds")
        report = store.prefetch(nets, max_nodes=100)
        assert len(report.keys) == 2
        assert report.hits == 1 and report.builds == 1
        assert counter_value("serve.store.warm.hits") == hits_before + 1
        assert counter_value("serve.store.warm.builds") == builds_before + 1
        # Everything is warm now: a second pass is all hits.
        again = store.prefetch(nets, max_nodes=100)
        assert again.hits == 2 and again.builds == 0
        assert "2 model(s)" in again.summary()


def _worker_build(args):
    """Module-level worker so it pickles under spawn too."""
    root, flavor = args
    store = ModelStore(root)
    model = store.get_or_build(small_netlist(flavor=flavor), max_nodes=100)
    return model.macro_name, model.size


class TestSharing:
    def test_two_processes_share_one_directory(self, tmp_path):
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(2) as pool:
                results = pool.map(
                    _worker_build, [(str(tmp_path), 0), (str(tmp_path), 0)]
                )
        except (ValueError, OSError):
            pytest.skip("cannot fork worker processes in this environment")
        assert results[0] == results[1]
        # Exactly one object landed on disk (same key from both sides),
        # and a third participant reuses it without building.
        store = ModelStore(tmp_path)
        assert len(store.ls()) == 1
        builds_before = counter_value("serve.store.builds")
        store.get_or_build(small_netlist(flavor=0), max_nodes=100)
        assert counter_value("serve.store.builds") == builds_before


class TestConcurrency:
    def test_threads_racing_get_or_build_same_key(self, tmp_path):
        """Two threads resolving one key concurrently both get equal
        models and leave exactly one store entry behind."""
        import threading

        store = ModelStore(tmp_path)
        netlist = small_netlist(flavor=1)
        results: list = [None, None]
        errors: list = []

        def resolve(slot: int) -> None:
            try:
                results[slot] = store.get_or_build(netlist, max_nodes=100)
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=resolve, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)
        assert not errors
        assert all(model is not None for model in results)
        # Worst case both threads built; the atomic replace means one
        # entry wins and both models answer identically.
        assert len(store.ls()) == 1
        initial, final = uniform_pairs(4, 16, seed=3)
        left = results[0].pair_capacitances(initial, final)
        right = results[1].pair_capacitances(initial, final)
        assert np.allclose(left, right)

    def test_reader_hits_manifest_mid_rewrite(self, tmp_path):
        """A reader that loads the store right after a torn manifest
        rewrite still sees every object (reconciliation wins)."""
        from repro.testing import faults

        store = ModelStore(tmp_path)
        first = small_netlist(flavor=0)
        second = small_netlist(flavor=2)
        store.get_or_build(first, max_nodes=100)
        # after=1 lets the second put's object write through (hit 1) and
        # tears the manifest rewrite that follows it (hit 2) — exactly a
        # writer dying mid-manifest while a reader comes in.
        with faults.inject(
            [faults.FaultSpec("store.torn_write", times=1, after=1)]
        ):
            store.get_or_build(second, max_nodes=100)
        reader = ModelStore(tmp_path)
        entries = reader.ls()
        assert len(entries) == 2
        for netlist in (first, second):
            assert (
                reader.get(reader.key_for(netlist, max_nodes=100)) is not None
            )
