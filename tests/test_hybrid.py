"""Tests for the hybrid (analytical + characterized residual) model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CharacterizationError
from repro.models import HybridModel, build_add_model
from repro.sim import markov_sequence, sequence_glitch_capacitances


class TestCharacterization:
    def test_reduces_glitch_bias(self, reconvergent_netlist):
        """The structural model underestimates glitch-aware power; the
        hybrid's characterized residual must close most of that gap."""
        structural = build_add_model(reconvergent_netlist)
        hybrid = HybridModel.characterize(
            reconvergent_netlist, structural, training_length=250
        )
        sequence = markov_sequence(3, 300, sp=0.5, st=0.5, seed=31)
        total = sequence_glitch_capacitances(reconvergent_netlist, sequence)
        structural_bias = abs(
            structural.sequence_capacitances(sequence).mean() - total.mean()
        )
        hybrid_bias = abs(
            hybrid.sequence_capacitances(sequence).mean() - total.mean()
        )
        assert hybrid_bias < structural_bias

    def test_constant_residual_variant(self, reconvergent_netlist):
        hybrid = HybridModel.characterize(
            reconvergent_netlist, training_length=150, linear_residual=False
        )
        assert np.all(hybrid.residual_coefficients_fF == 0.0)

    def test_builds_structural_model_if_missing(self, fig2_netlist):
        hybrid = HybridModel.characterize(fig2_netlist, training_length=100)
        assert hybrid.structural.macro_name == "fig2"

    def test_residual_width_validated(self, fig2_netlist):
        structural = build_add_model(fig2_netlist)
        with pytest.raises(CharacterizationError):
            HybridModel(structural, 0.0, np.zeros(5))


class TestEvaluation:
    def test_pair_capacitances_matches_single(self, reconvergent_netlist, rng):
        hybrid = HybridModel.characterize(
            reconvergent_netlist, training_length=120
        )
        initial = rng.random((25, 3)) < 0.5
        final = rng.random((25, 3)) < 0.5
        batch = hybrid.pair_capacitances(initial, final)
        for k in range(25):
            assert batch[k] == pytest.approx(
                hybrid.switching_capacitance(initial[k], final[k])
            )

    def test_residual_decomposition(self, fig2_netlist):
        structural = build_add_model(fig2_netlist)
        hybrid = HybridModel(structural, 2.0, np.array([1.0, 3.0]))
        base = structural.switching_capacitance([0, 1], [1, 1])
        assert hybrid.switching_capacitance([0, 1], [1, 1]) == pytest.approx(
            base + 2.0 + 1.0  # intercept + coefficient of toggled bit 0
        )
