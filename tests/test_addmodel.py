"""Tests for the core contribution: ADD-based power model construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import comparator, parity
from repro.errors import ModelError
from repro.models import build_add_model, shrink_model
from repro.sim import (
    exhaustive_pairs,
    markov_sequence,
    pair_switching_capacitances,
    sequence_switching_capacitances,
    switching_capacitance,
    uniform_pairs,
)


def assert_exact_on_all_pairs(netlist, model):
    for initial, final in exhaustive_pairs(netlist.num_inputs):
        truth = switching_capacitance(
            netlist, initial.tolist(), final.tolist()
        )
        estimate = model.switching_capacitance(initial, final)
        assert estimate == pytest.approx(truth), (initial, final)


class TestExactModels:
    def test_fig2_exact(self, fig2_netlist):
        model = build_add_model(fig2_netlist)
        assert_exact_on_all_pairs(fig2_netlist, model)

    def test_xor_chain_exact(self, xor_chain_netlist):
        model = build_add_model(xor_chain_netlist)
        assert_exact_on_all_pairs(xor_chain_netlist, model)

    def test_reconvergent_exact(self, reconvergent_netlist):
        model = build_add_model(reconvergent_netlist)
        assert_exact_on_all_pairs(reconvergent_netlist, model)

    def test_parity_exact(self):
        netlist = parity(5)
        model = build_add_model(netlist)
        assert_exact_on_all_pairs(netlist, model)

    @pytest.mark.parametrize("scheme", ["interleaved", "blocked"])
    def test_both_orderings_exact(self, fig2_netlist, scheme):
        model = build_add_model(fig2_netlist, scheme=scheme)
        assert_exact_on_all_pairs(fig2_netlist, model)

    def test_explicit_input_order(self, fig2_netlist):
        model = build_add_model(fig2_netlist, input_order=["x2", "x1"])
        assert_exact_on_all_pairs(fig2_netlist, model)

    def test_exact_model_average_is_analytic(self, fig2_netlist):
        model = build_add_model(fig2_netlist)
        pairs = list(exhaustive_pairs(2))
        truth = np.mean(
            [
                switching_capacitance(fig2_netlist, i.tolist(), f.tolist())
                for i, f in pairs
            ]
        )
        assert model.average_capacitance_uniform() == pytest.approx(truth)


class TestApproximatedModels:
    def test_size_budget_respected(self):
        netlist = comparator(4)
        for max_nodes in (200, 50, 20):
            model = build_add_model(netlist, max_nodes=max_nodes)
            assert model.size <= max_nodes

    def test_avg_model_preserves_global_average(self, fig2_netlist):
        exact = build_add_model(fig2_netlist)
        small = build_add_model(fig2_netlist, max_nodes=4)
        assert small.average_capacitance_uniform() == pytest.approx(
            exact.average_capacitance_uniform()
        )

    def test_upper_bound_conservative_exhaustive(self, reconvergent_netlist):
        model = build_add_model(
            reconvergent_netlist, max_nodes=5, strategy="max"
        )
        for initial, final in exhaustive_pairs(3):
            truth = switching_capacitance(
                reconvergent_netlist, initial.tolist(), final.tolist()
            )
            assert model.switching_capacitance(initial, final) >= truth - 1e-9

    def test_lower_bound_conservative_exhaustive(self, reconvergent_netlist):
        model = build_add_model(
            reconvergent_netlist, max_nodes=5, strategy="min"
        )
        for initial, final in exhaustive_pairs(3):
            truth = switching_capacitance(
                reconvergent_netlist, initial.tolist(), final.tolist()
            )
            assert model.switching_capacitance(initial, final) <= truth + 1e-9

    def test_upper_bound_on_larger_circuit_sampled(self):
        netlist = comparator(6)
        model = build_add_model(netlist, max_nodes=60, strategy="max")
        initial, final = uniform_pairs(netlist.num_inputs, 300, seed=11)
        truth = pair_switching_capacitances(netlist, initial, final)
        estimates = model.pair_capacitances(initial, final)
        assert np.all(estimates >= truth - 1e-9)

    def test_report_metadata(self, fig2_netlist):
        model = build_add_model(fig2_netlist, max_nodes=4)
        report = model.report
        assert report.macro_name == "fig2"
        assert report.max_nodes == 4
        assert report.final_nodes == model.size
        assert report.peak_nodes >= report.final_nodes
        assert report.cpu_seconds >= 0.0
        assert report.num_gates == fig2_netlist.num_gates

    def test_shrink_model_chain(self):
        netlist = comparator(4)
        exact = build_add_model(netlist)
        sizes = []
        model = exact
        for target in (100, 40, 10, 3):
            model = shrink_model(model, target)
            sizes.append(model.size)
            assert model.size <= target
        assert sizes == sorted(sizes, reverse=True)

    def test_shrunk_bound_stays_conservative(self, reconvergent_netlist):
        bound = build_add_model(reconvergent_netlist, strategy="max")
        small = shrink_model(bound, 3)
        for initial, final in exhaustive_pairs(3):
            truth = switching_capacitance(
                reconvergent_netlist, initial.tolist(), final.tolist()
            )
            assert small.switching_capacitance(initial, final) >= truth - 1e-9


class TestAnalyticQueries:
    def test_global_extrema_bracket_samples(self, fig2_netlist):
        model = build_add_model(fig2_netlist)
        values = [
            model.switching_capacitance(i, f) for i, f in exhaustive_pairs(2)
        ]
        assert model.global_maximum() == pytest.approx(max(values))
        assert model.global_minimum() == pytest.approx(min(values))

    def test_leaf_values_sorted_distinct(self, fig2_netlist):
        model = build_add_model(fig2_netlist)
        leaves = model.leaf_values()
        assert leaves == sorted(set(leaves))

    def test_expected_capacitance_matches_uniform(self, fig2_netlist):
        model = build_add_model(fig2_netlist)
        assert model.expected_capacitance(0.5, 0.5) == pytest.approx(
            model.average_capacitance_uniform()
        )

    def test_expected_capacitance_matches_simulation(self):
        netlist = parity(4)
        model = build_add_model(netlist)
        for sp, st in [(0.5, 0.2), (0.3, 0.3), (0.7, 0.1)]:
            sequence = markov_sequence(4, 20000, sp=sp, st=st, seed=13)
            empirical = sequence_switching_capacitances(
                netlist, sequence
            ).mean()
            analytic = model.expected_capacitance(sp, st)
            assert analytic == pytest.approx(empirical, rel=0.05)

    def test_expected_capacitance_requires_interleaved(self, fig2_netlist):
        model = build_add_model(fig2_netlist, scheme="blocked")
        with pytest.raises(ModelError):
            model.expected_capacitance(0.5, 0.5)

    def test_expected_capacitance_validates_statistics(self, fig2_netlist):
        model = build_add_model(fig2_netlist)
        with pytest.raises(ModelError):
            model.expected_capacitance(0.1, 0.9)

    def test_zero_activity_means_zero_power(self, fig2_netlist):
        model = build_add_model(fig2_netlist)
        assert model.expected_capacitance(0.5, 0.0) == pytest.approx(0.0)


class TestBatchEvaluation:
    def test_pair_capacitances_matches_single(self, fig2_netlist, rng):
        model = build_add_model(fig2_netlist)
        initial = rng.random((30, 2)) < 0.5
        final = rng.random((30, 2)) < 0.5
        batch = model.pair_capacitances(initial, final)
        for k in range(30):
            assert batch[k] == model.switching_capacitance(initial[k], final[k])

    def test_sequence_capacitances(self, fig2_netlist):
        model = build_add_model(fig2_netlist)
        sequence = markov_sequence(2, 40, seed=15)
        truth = sequence_switching_capacitances(fig2_netlist, sequence)
        estimates = model.sequence_capacitances(sequence)
        assert np.allclose(estimates, truth)

    def test_shape_mismatch_rejected(self, fig2_netlist):
        model = build_add_model(fig2_netlist)
        with pytest.raises(ModelError):
            model.pair_capacitances(
                np.zeros((2, 2), dtype=bool), np.zeros((3, 2), dtype=bool)
            )

    @pytest.mark.parametrize("kernel", ["pointer", "levelized"])
    def test_forced_kernels_agree_with_auto(self, fig2_netlist, rng, kernel):
        model = build_add_model(fig2_netlist)
        # 4 rows: small enough that "auto" would take the scalar fallback,
        # so forcing a kernel genuinely exercises the compiled path.
        initial = rng.random((4, 2)) < 0.5
        final = rng.random((4, 2)) < 0.5
        forced = model.pair_capacitances(initial, final, kernel=kernel)
        assert np.array_equal(
            forced, model.pair_capacitances(initial, final)
        )

    def test_unknown_kernel_rejected(self, fig2_netlist):
        from repro.errors import DDError

        model = build_add_model(fig2_netlist)
        batch = np.zeros((2, 2), dtype=bool)
        with pytest.raises(DDError):
            model.pair_capacitances(batch, batch, kernel="vectorised")


class TestValidation:
    def test_bad_max_nodes(self, fig2_netlist):
        with pytest.raises(ModelError):
            build_add_model(fig2_netlist, max_nodes=0)

    def test_bad_input_order(self, fig2_netlist):
        with pytest.raises(ModelError):
            build_add_model(fig2_netlist, input_order=["x1"])

    def test_shrink_random_rejected(self, fig2_netlist):
        model = build_add_model(fig2_netlist)
        model.strategy = "random"
        with pytest.raises(ModelError):
            shrink_model(model, 3)
