"""Equivalence-under-transformation for ``dd.reorder`` and ``dd.approx``.

Both transformations promise a relationship to the original function:
reordering promises *exact* equivalence, approximation promises
equivalence within a declared error budget (``step``-grid rounding for
:func:`quantize_leaves`, one-sided error for the bound strategies,
mean preservation for ``avg``).  These tests verify the promises
exhaustively on real power ADDs, with the independent oracle as the
final referee.
"""

from __future__ import annotations

import itertools
import random

import numpy as np
import pytest

from repro.dd.approx import approximate, collapse_by_threshold, quantize_leaves
from repro.dd.reorder import transfer
from repro.models import build_add_model
from repro.testing.generate import GenParams, build_fuzz_netlist
from repro.testing.oracle import (
    oracle_capacitance_matrix,
    index_pattern,
)


def _model(seed: int = 19, num_inputs: int = 3, num_gates: int = 9):
    netlist = build_fuzz_netlist(
        GenParams(num_inputs=num_inputs, num_gates=num_gates), seed
    )
    return netlist, build_add_model(netlist, max_nodes=None)


def _all_values(manager, root, num_vars: int) -> np.ndarray:
    """The function's value on every assignment of ``num_vars`` variables."""
    return np.array(
        [
            manager.evaluate(root, list(bits))
            for bits in itertools.product((0, 1), repeat=num_vars)
        ]
    )


class TestReorderExactness:
    def test_reversed_order_preserves_function(self):
        netlist, model = _model()
        manager = model.manager
        support = sorted(manager.support(model.root))
        order = list(reversed(support))
        target, new_root = transfer(manager, model.root, order)
        column_of = {var: k for k, var in enumerate(order)}
        width = 2 * model.num_inputs
        for bits in itertools.product((0, 1), repeat=width):
            assignment = [0] * len(order)
            for var, column in column_of.items():
                assignment[column] = bits[var]
            assert target.evaluate(new_root, assignment) == pytest.approx(
                manager.evaluate(model.root, list(bits))
            )

    @pytest.mark.parametrize("shuffle_seed", [1, 2, 3])
    def test_random_orders_match_oracle(self, shuffle_seed):
        """Reordered diagram vs the Eq.-4 oracle on every transition."""
        netlist, model = _model(seed=29)
        manager, space = model.manager, model.space
        support = sorted(manager.support(model.root))
        order = list(support)
        random.Random(shuffle_seed).shuffle(order)
        target, new_root = transfer(manager, model.root, order)
        column_of = {var: k for k, var in enumerate(order)}
        position = {name: k for k, name in enumerate(space.input_names)}
        external = [position[name] for name in model.input_names]
        matrix = oracle_capacitance_matrix(netlist)
        n = netlist.num_inputs
        for i in range(1 << n):
            for f in range(1 << n):
                xi = index_pattern(i, n)
                xf = index_pattern(f, n)
                packed = [0] * (2 * n)
                for k, pos in enumerate(external):
                    packed[space.xi(pos)] = xi[k]
                    packed[space.xf(pos)] = xf[k]
                assignment = [0] * len(order)
                for var, column in column_of.items():
                    assignment[column] = packed[var]
                assert target.evaluate(new_root, assignment) == pytest.approx(
                    matrix[i, f]
                ), (i, f, order)

    def test_transfer_size_roundtrip(self):
        """Transferring back to the original order restores the size."""
        _, model = _model(seed=23)
        manager = model.manager
        support = sorted(manager.support(model.root))
        shuffled = list(support)
        random.Random(7).shuffle(shuffled)
        mid_manager, mid_root = transfer(manager, model.root, shuffled)
        # The shuffled manager's support indices are 0..len-1; map home.
        back_order = sorted(
            range(len(shuffled)), key=lambda k: shuffled[k]
        )
        home_manager, home_root = transfer(mid_manager, mid_root, back_order)
        assert home_manager.size(home_root) == manager.size(model.root)


class TestQuantizeLeavesBudget:
    @pytest.mark.parametrize("step", [0.5, 2.0, 10.0])
    def test_nearest_error_at_most_half_step(self, step):
        _, model = _model(seed=47)
        manager = model.manager
        width = 2 * model.num_inputs
        before = _all_values(manager, model.root, width)
        rounded = quantize_leaves(manager, model.root, step, "nearest")
        after = _all_values(manager, rounded, width)
        assert float(np.abs(after - before).max()) <= step / 2 + 1e-9

    @pytest.mark.parametrize("step", [0.5, 2.0, 10.0])
    def test_up_is_one_sided(self, step):
        _, model = _model(seed=47)
        manager = model.manager
        width = 2 * model.num_inputs
        before = _all_values(manager, model.root, width)
        raised = quantize_leaves(manager, model.root, step, "up")
        after = _all_values(manager, raised, width)
        error = after - before
        assert float(error.min()) >= -1e-9
        assert float(error.max()) <= step + 1e-9

    @pytest.mark.parametrize("step", [0.5, 2.0, 10.0])
    def test_down_is_one_sided(self, step):
        _, model = _model(seed=47)
        manager = model.manager
        width = 2 * model.num_inputs
        before = _all_values(manager, model.root, width)
        lowered = quantize_leaves(manager, model.root, step, "down")
        after = _all_values(manager, lowered, width)
        error = after - before
        assert float(error.max()) <= 1e-9
        assert float(error.min()) >= -step - 1e-9


class TestApproximateBudgets:
    @pytest.mark.parametrize("max_size", [2, 5, 12])
    def test_max_never_decreases_values(self, max_size):
        _, model = _model(seed=53)
        manager = model.manager
        width = 2 * model.num_inputs
        before = _all_values(manager, model.root, width)
        collapsed = approximate(manager, model.root, max_size, strategy="max")
        after = _all_values(manager, collapsed, width)
        assert manager.size(collapsed) <= max(max_size, manager.size(model.root))
        assert float((after - before).min()) >= -1e-9

    @pytest.mark.parametrize("max_size", [2, 5, 12])
    def test_min_never_increases_values(self, max_size):
        _, model = _model(seed=53)
        manager = model.manager
        width = 2 * model.num_inputs
        before = _all_values(manager, model.root, width)
        collapsed = approximate(manager, model.root, max_size, strategy="min")
        after = _all_values(manager, collapsed, width)
        assert float((after - before).max()) <= 1e-9

    @pytest.mark.parametrize("max_size", [2, 6, 16])
    def test_avg_preserves_global_mean(self, max_size):
        _, model = _model(seed=59)
        manager = model.manager
        width = 2 * model.num_inputs
        before = _all_values(manager, model.root, width)
        collapsed = approximate(manager, model.root, max_size, strategy="avg")
        after = _all_values(manager, collapsed, width)
        assert float(after.mean()) == pytest.approx(float(before.mean()), abs=1e-9)

    def test_threshold_collapse_preserves_mean(self):
        _, model = _model(seed=61)
        manager = model.manager
        width = 2 * model.num_inputs
        before = _all_values(manager, model.root, width)
        collapsed = collapse_by_threshold(
            manager, model.root, threshold=25.0, strategy="avg"
        )
        after = _all_values(manager, collapsed, width)
        assert manager.size(collapsed) <= manager.size(model.root)
        assert float(after.mean()) == pytest.approx(float(before.mean()), abs=1e-9)
