"""Tests for conservative bound utilities and composition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import parity
from repro.errors import ModelError
from repro.models import (
    build_add_model,
    build_lower_bound_model,
    build_upper_bound_model,
    constant_bound_from_model,
    summed_constant_bound,
    summed_pattern_bound,
    verify_upper_bound,
)
from repro.sim import exhaustive_max_capacitance, uniform_pairs


class TestBoundConstruction:
    def test_upper_bound_builder_uses_max_strategy(self, fig2_netlist):
        model = build_upper_bound_model(fig2_netlist, max_nodes=4)
        assert model.is_upper_bound
        assert not model.is_lower_bound

    def test_lower_bound_builder_uses_min_strategy(self, fig2_netlist):
        model = build_lower_bound_model(fig2_netlist, max_nodes=4)
        assert model.is_lower_bound

    def test_exact_bound_global_max_equals_true_worst_case(self, fig2_netlist):
        model = build_upper_bound_model(fig2_netlist)
        true_worst, _, _ = exhaustive_max_capacitance(fig2_netlist)
        assert model.global_maximum() == pytest.approx(true_worst)

    def test_approximate_bound_dominates_true_worst_case(self):
        netlist = parity(6)
        model = build_upper_bound_model(netlist, max_nodes=10)
        true_worst, _, _ = exhaustive_max_capacitance(netlist)
        assert model.global_maximum() >= true_worst - 1e-9


class TestConstantBound:
    def test_derives_from_global_maximum(self, fig2_netlist):
        model = build_upper_bound_model(fig2_netlist, max_nodes=6)
        constant = constant_bound_from_model(model)
        assert constant.value_fF == pytest.approx(model.global_maximum())

    def test_rejects_non_max_models(self, fig2_netlist):
        model = build_add_model(fig2_netlist)  # avg strategy
        with pytest.raises(ModelError):
            constant_bound_from_model(model)


class TestVerification:
    def test_verify_passes_for_bound(self, fig2_netlist):
        model = build_upper_bound_model(fig2_netlist, max_nodes=4)
        initial, final = uniform_pairs(2, 200, seed=21)
        check = verify_upper_bound(model, fig2_netlist, initial, final)
        assert check.conservative
        assert check.violations == 0
        assert check.max_violation_fF == 0.0
        assert check.mean_slack_fF >= 0.0
        assert check.max_slack_fF >= check.mean_slack_fF

    def test_verify_flags_a_bad_bound(self, fig2_netlist):
        # An avg model is NOT a bound; verification must catch that.
        model = build_add_model(fig2_netlist, max_nodes=2, strategy="avg")
        initial, final = uniform_pairs(2, 200, seed=22)
        check = verify_upper_bound(model, fig2_netlist, initial, final)
        assert not check.conservative
        assert check.max_violation_fF > 0.0


class TestComposition:
    def test_pattern_bound_tighter_than_constant_bound(self, fig2_netlist):
        models = [
            build_upper_bound_model(fig2_netlist, max_nodes=8)
            for _ in range(3)
        ]
        loose = summed_constant_bound(models)
        # A quiet pattern (no transition) should compose to a much lower
        # pattern-dependent bound.
        quiet = summed_pattern_bound(
            models,
            [[0, 0]] * 3,
            [[0, 0]] * 3,
        )
        assert quiet < loose
        # And the composed bound is still above the true quiet power (0).
        assert quiet >= 0.0

    def test_composed_bound_is_conservative(self, fig2_netlist, rng):
        from repro.sim import switching_capacitance

        models = [
            build_upper_bound_model(fig2_netlist, max_nodes=5)
            for _ in range(2)
        ]
        for _ in range(30):
            pairs = [
                (
                    (rng.random(2) < 0.5).tolist(),
                    (rng.random(2) < 0.5).tolist(),
                )
                for _ in range(2)
            ]
            bound = summed_pattern_bound(
                models, [p[0] for p in pairs], [p[1] for p in pairs]
            )
            truth = sum(
                switching_capacitance(fig2_netlist, xi, xf)
                for xi, xf in pairs
            )
            assert bound >= truth - 1e-9

    def test_length_mismatch_rejected(self, fig2_netlist):
        model = build_upper_bound_model(fig2_netlist, max_nodes=4)
        with pytest.raises(ModelError):
            summed_pattern_bound([model], [], [])
