"""Chaos suite: the fault-injection framework and every resilience layer.

Framework semantics first (validation, triggers, determinism, env round
trip), then each pipeline stage driven through its injected failures:
supervised parallel builds, server admission control, client retries and
store hardening, ending in a marked end-to-end round trip with faults at
every site at once.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile

import pytest

from repro.errors import (
    BuildTimeoutError,
    FaultPlanError,
    OverloadError,
    ReproError,
    ServeConnectionError,
)
from repro.models import build_add_model
from repro.models.addmodel import BuildOutcome, build_add_models_parallel
from repro.netlist import NetlistBuilder
from repro.obs import get_metrics
from repro.serve import (
    ModelStore,
    PowerQueryClient,
    RetryPolicy,
    ServerConfig,
    generate_load,
    start_in_thread,
)
from repro.testing import faults
from repro.testing.oracle import oracle_switching_capacitance

_MET = get_metrics()


def counter(name: str) -> int:
    state = _MET.snapshot().get(name)
    return int(state["value"]) if state else 0


def make_netlist(name: str = "trio"):
    builder = NetlistBuilder(name)
    a, b, c = (builder.input(ch) for ch in "abc")
    builder.netlist.add_output(builder.xor2(builder.and2(a, b), c))
    return builder.build()


def make_quad(name: str = "quad", variant: int = 0):
    builder = NetlistBuilder(name)
    a, b, c, d = (builder.input(ch) for ch in "abcd")
    # The variant changes the structure (not just the name), so two quads
    # resolve to *distinct* content-addressed store keys.
    combine = builder.or2 if variant == 0 else builder.and2
    builder.netlist.add_output(
        combine(builder.and2(a, b), builder.xor2(c, d))
    )
    return builder.build()


# ---------------------------------------------------------------------------
# Framework semantics
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault site"):
            faults.FaultPlan([faults.FaultSpec("no.such.site")])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"probability": 1.5},
            {"probability": -0.1},
            {"times": 0},
            {"after": -1},
            {"max_token": -1},
            {"delay_s": -0.5},
            {"error": "KeyboardInterrupt"},
        ],
    )
    def test_bad_trigger_rejected(self, kwargs):
        with pytest.raises(FaultPlanError):
            faults.FaultPlan([faults.FaultSpec("store.io.read", **kwargs)])

    def test_duplicate_site_rejected(self):
        with pytest.raises(FaultPlanError, match="duplicate"):
            faults.FaultPlan(
                [
                    faults.FaultSpec("store.io.read"),
                    faults.FaultSpec("store.io.read"),
                ]
            )

    def test_times_and_after(self):
        plan = faults.FaultPlan(
            [faults.FaultSpec("store.io.read", times=2, after=1)]
        )
        fired = [plan.check("store.io.read") is not None for _ in range(5)]
        # Hit 1 skipped by after; hits 2-3 fire; times=2 caps the rest.
        assert fired == [False, True, True, False, False]
        assert plan.fire_count("store.io.read") == 2

    def test_max_token_gates_on_caller_token(self):
        plan = faults.FaultPlan(
            [faults.FaultSpec("build.worker.crash", max_token=1)]
        )
        assert plan.check("build.worker.crash", token=1) is not None
        assert plan.check("build.worker.crash", token=2) is None
        # Tokenless hits never fire a token-gated spec.
        assert plan.check("build.worker.crash") is None

    def test_probability_is_seed_deterministic(self):
        def pattern(seed):
            plan = faults.FaultPlan(
                [faults.FaultSpec("store.io.read", probability=0.5)],
                seed=seed,
            )
            return [
                plan.check("store.io.read") is not None for _ in range(64)
            ]

        first = pattern(42)
        assert first == pattern(42)
        assert 0 < sum(first) < 64

    def test_json_env_round_trip(self):
        spec = faults.FaultSpec(
            "serve.connection.reset", times=3, delay_s=0.1, error="OSError"
        )
        with faults.inject([spec], seed=9) as plan:
            blob = os.environ[faults.ENV_VAR]
            clone = faults.FaultPlan.from_json(blob)
            assert clone.seed == plan.seed
            assert clone.specs["serve.connection.reset"] == spec
        assert faults.ENV_VAR not in os.environ

    def test_inject_restores_previous_state(self):
        assert faults.active_plan() is None
        with faults.inject([faults.FaultSpec("store.io.read")]):
            assert faults.active_plan() is not None
            with faults.inject([faults.FaultSpec("store.io.write")]) as inner:
                assert faults.active_plan() is inner
            assert "store.io.read" in faults.active_plan().specs
        assert faults.active_plan() is None

    def test_env_var_arms_plan_without_install(self):
        plan = faults.FaultPlan([faults.FaultSpec("store.io.read", times=1)])
        os.environ[faults.ENV_VAR] = plan.to_json()
        try:
            armed = faults.active_plan()
            assert armed is not None
            assert "store.io.read" in armed.specs
        finally:
            os.environ.pop(faults.ENV_VAR, None)

    def test_fires_increment_injected_counter(self):
        before = counter("faults.injected.store.io.read")
        with faults.inject([faults.FaultSpec("store.io.read", times=2)]):
            with pytest.raises(OSError):
                faults.maybe_fail("store.io.read")
            with pytest.raises(OSError):
                faults.maybe_fail("store.io.read")
            faults.maybe_fail("store.io.read")  # capped: no raise
        assert counter("faults.injected.store.io.read") == before + 2

    def test_no_plan_means_no_fault(self):
        assert faults.check("store.io.read") is None
        faults.maybe_fail("serve.connection.reset")
        assert not faults.maybe_delay("serve.eval.slow")


# ---------------------------------------------------------------------------
# Supervised parallel builds
# ---------------------------------------------------------------------------
class TestBuildResilience:
    def test_crash_on_first_attempt_is_retried(self):
        nets = [make_netlist(f"n{i}") for i in range(3)]
        crashes = counter("build.worker.crashes")
        retries = counter("build.worker.retries")
        with faults.inject(
            [faults.FaultSpec("build.worker.crash", max_token=1)]
        ):
            models = build_add_models_parallel(nets, processes=2)
        assert len(models) == 3
        assert counter("build.worker.crashes") >= crashes + 3
        assert counter("build.worker.retries") >= retries + 3
        expect = oracle_switching_capacitance(nets[0], [0, 0, 0], [1, 1, 1])
        got = models[0].pair_capacitances([[0, 0, 0]], [[1, 1, 1]])[0]
        assert got == pytest.approx(expect)

    def test_persistent_crash_falls_back_in_process(self):
        nets = [make_netlist(f"p{i}") for i in range(2)]
        fallbacks = counter("build.inprocess_fallbacks")
        with faults.inject([faults.FaultSpec("build.worker.crash")]):
            outcomes = build_add_models_parallel(
                nets, processes=2, max_retries=1, raise_on_error=False
            )
        assert [o.status for o in outcomes] == ["fallback", "fallback"]
        assert all(o.ok and o.attempts == 2 for o in outcomes)
        assert counter("build.inprocess_fallbacks") == fallbacks + 2

    def test_hung_worker_times_out(self):
        nets = [make_netlist(f"h{i}") for i in range(2)]
        timeouts = counter("build.worker.timeouts")
        with faults.inject(
            [faults.FaultSpec("build.worker.hang", delay_s=10.0)]
        ):
            with pytest.raises(BuildTimeoutError, match="budget"):
                build_add_models_parallel(
                    nets, processes=2, job_timeout_s=0.5, max_retries=0
                )
        assert counter("build.worker.timeouts") >= timeouts + 1

    def test_timeout_degrades_to_collapsed_build(self):
        nets = [make_netlist(f"d{i}") for i in range(2)]
        degraded = counter("build.degraded.count")
        with faults.inject(
            [faults.FaultSpec("build.worker.hang", delay_s=10.0)]
        ):
            outcomes = build_add_models_parallel(
                nets,
                processes=2,
                job_timeout_s=0.5,
                max_retries=0,
                degrade_max_nodes=64,
                raise_on_error=False,
            )
        assert [o.status for o in outcomes] == ["degraded", "degraded"]
        assert all(o.effective_kwargs["max_nodes"] == 64 for o in outcomes)
        assert counter("build.degraded.count") == degraded + 2
        # 64 nodes exceed the exact ADD size, so degraded values are
        # still exact against the independent oracle.
        expect = oracle_switching_capacitance(nets[0], [0, 1, 0], [1, 0, 1])
        got = outcomes[0].model.pair_capacitances([[0, 1, 0]], [[1, 0, 1]])[0]
        assert got == pytest.approx(expect)

    def test_blowup_degrades_and_raises_without_budget(self):
        nets = [make_netlist(f"b{i}") for i in range(2)]
        with faults.inject(
            [faults.FaultSpec("build.blowup", error="MemoryError")]
        ):
            outcomes = build_add_models_parallel(
                nets, processes=2, degrade_max_nodes=64, raise_on_error=False
            )
            assert [o.status for o in outcomes] == ["degraded", "degraded"]
            with pytest.raises(MemoryError):
                build_add_models_parallel(nets, processes=2)

    def test_raise_on_error_false_keeps_siblings(self):
        good = make_netlist("good")
        with faults.inject(
            [faults.FaultSpec("build.blowup", error="MemoryError")]
        ):
            outcomes = build_add_models_parallel(
                [good, (good, {"max_nodes": 64})],
                processes=2,
                raise_on_error=False,
            )
        assert isinstance(outcomes[0], BuildOutcome)
        # Job 0 (max_nodes=None) blows up everywhere; job 1 is budgeted
        # and never hits the site.
        assert not outcomes[0].ok and outcomes[0].status == "failed"
        assert outcomes[1].ok and outcomes[1].status == "ok"
        with pytest.raises(MemoryError):
            outcomes[0].raise_error()

    def test_pool_unavailable_falls_back_sequentially(self):
        nets = [make_netlist(f"s{i}") for i in range(3)]
        fallbacks = counter("build.pool_fallbacks")
        with faults.inject(
            [faults.FaultSpec("build.pool.unavailable", times=1)]
        ):
            models = build_add_models_parallel(nets, processes=2)
        assert len(models) == 3
        assert counter("build.pool_fallbacks") == fallbacks + 1


# ---------------------------------------------------------------------------
# Server admission control
# ---------------------------------------------------------------------------
class TestServerConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_wait_ms": -1.0},
            {"request_timeout_s": 0.0},
            {"max_connections": 0},
            {"max_parked_rows": 0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServerConfig(**kwargs)


class TestAdmissionControl:
    def test_connection_cap_sheds_with_structured_reply(self):
        netlist = make_quad("capped")
        model = build_add_model(netlist, max_nodes=200)
        handle = start_in_thread(
            {"capped": model}, ServerConfig(max_connections=1)
        )
        try:
            shed = counter("serve.shed.connections")
            with PowerQueryClient(handle.host, handle.port) as first:
                assert first.ping()
                extra = socket.create_connection(
                    (handle.host, handle.port), timeout=5.0
                )
                try:
                    reply = json.loads(
                        extra.makefile("rb").readline().decode("utf-8")
                    )
                finally:
                    extra.close()
            assert reply["ok"] is False
            assert reply["error"]["type"] == "unavailable"
            assert counter("serve.shed.connections") == shed + 1
        finally:
            handle.stop()

    def test_parked_row_budget_sheds_requests(self):
        netlist = make_quad("parked")
        model = build_add_model(netlist, max_nodes=200)
        handle = start_in_thread(
            {"parked": model},
            ServerConfig(max_batch=100, max_wait_ms=100.0, max_parked_rows=2),
        )
        try:
            shed = counter("serve.shed.requests")
            sock = socket.create_connection(
                (handle.host, handle.port), timeout=5.0
            )
            stream = sock.makefile("rwb")
            try:
                for k in range(3):
                    stream.write(
                        (
                            json.dumps(
                                {
                                    "id": k,
                                    "op": "evaluate",
                                    "model": "parked",
                                    "initial": "0000",
                                    "final": "1111",
                                }
                            )
                            + "\n"
                        ).encode("utf-8")
                    )
                stream.flush()
                replies = [
                    json.loads(stream.readline().decode("utf-8"))
                    for _ in range(3)
                ]
            finally:
                sock.close()
            by_id = {reply["id"]: reply for reply in replies}
            # Two rows park under the budget; the third is shed at once.
            assert by_id[2]["ok"] is False
            assert by_id[2]["error"]["type"] == "unavailable"
            assert by_id[0]["ok"] and by_id[1]["ok"]
            assert counter("serve.shed.requests") == shed + 1
        finally:
            handle.stop()

    def test_healthz_reports_queue_and_shed_state(self):
        netlist = make_quad("healthy")
        model = build_add_model(netlist, max_nodes=200)
        handle = start_in_thread(
            {"healthy": model},
            ServerConfig(max_connections=8, max_parked_rows=1000),
        )
        try:
            with PowerQueryClient(handle.host, handle.port) as client:
                health = client.healthz()
            assert health["status"] == "ok"
            assert health["connections"] == 1
            assert health["parked_rows"] == 0
            assert health["limits"] == {
                "max_connections": 8,
                "max_parked_rows": 1000,
            }
            assert set(health["shed"]) == {"connections", "requests", "rows"}
            assert "degraded_builds" in health
        finally:
            handle.stop()


# ---------------------------------------------------------------------------
# Client retries
# ---------------------------------------------------------------------------
class TestClientRetry:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -1.0},
            {"multiplier": 0.5},
            {"jitter": 2.0},
        ],
    )
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_reset_is_retried_to_success(self):
        netlist = make_quad("resilient")
        model = build_add_model(netlist, max_nodes=200)
        handle = start_in_thread({"resilient": model}, ServerConfig())
        try:
            with faults.inject(
                [faults.FaultSpec("serve.connection.reset", times=1)]
            ):
                client = PowerQueryClient(
                    handle.host,
                    handle.port,
                    timeout=5.0,
                    retry=RetryPolicy(base_delay_s=0.01),
                    rng_seed=7,
                )
                try:
                    value = client.evaluate("resilient", "0000", "1111")
                finally:
                    client.close()
            expect = oracle_switching_capacitance(
                netlist, [0, 0, 0, 0], [1, 1, 1, 1]
            )
            assert value == pytest.approx(expect)
        finally:
            handle.stop()

    def test_reset_without_policy_raises_typed_error(self):
        netlist = make_quad("fragile")
        model = build_add_model(netlist, max_nodes=200)
        handle = start_in_thread({"fragile": model}, ServerConfig())
        try:
            with faults.inject(
                [faults.FaultSpec("serve.connection.reset", times=1)]
            ):
                with PowerQueryClient(
                    handle.host, handle.port, timeout=5.0
                ) as client:
                    with pytest.raises(ServeConnectionError):
                        client.evaluate("fragile", "0000", "1111")
        finally:
            handle.stop()

    def test_exhausted_retries_raise(self):
        netlist = make_quad("doomed")
        model = build_add_model(netlist, max_nodes=200)
        handle = start_in_thread({"doomed": model}, ServerConfig())
        try:
            with faults.inject(
                [faults.FaultSpec("serve.connection.reset")]  # every request
            ):
                client = PowerQueryClient(
                    handle.host,
                    handle.port,
                    timeout=5.0,
                    retry=RetryPolicy(max_attempts=2, base_delay_s=0.01),
                    rng_seed=3,
                )
                try:
                    with pytest.raises((ServeConnectionError, OverloadError)):
                        client.evaluate("doomed", "0000", "1111")
                finally:
                    client.close()
        finally:
            handle.stop()

    def test_connect_refused_is_typed(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ServeConnectionError):
            PowerQueryClient("127.0.0.1", port, timeout=0.5)

    def test_generate_load_survives_resets(self):
        netlist = make_quad("loaded")
        model = build_add_model(netlist, max_nodes=200)
        handle = start_in_thread(
            {"loaded": model}, ServerConfig(max_batch=16, max_wait_ms=1.0)
        )
        try:
            with faults.inject(
                [faults.FaultSpec("serve.connection.reset", times=4)]
            ):
                report = generate_load(
                    handle.host,
                    handle.port,
                    "loaded",
                    [("0000", "1111"), ("1010", "0101")],
                    clients=4,
                    requests_per_client=8,
                )
            assert report.errors == 0
            assert report.retries + report.reconnects >= 4
            assert report.to_dict()["reconnects"] == report.reconnects
        finally:
            handle.stop()


# ---------------------------------------------------------------------------
# Store hardening
# ---------------------------------------------------------------------------
class TestStoreFaults:
    def test_transient_read_error_is_retried(self, tmp_path):
        store = ModelStore(tmp_path)
        netlist = make_netlist("readable")
        key = store.put(
            netlist, build_add_model(netlist, max_nodes=64), max_nodes=64
        )
        fresh = ModelStore(tmp_path)  # cold LRU: get must touch disk
        retries = counter("serve.store.io_retries")
        with faults.inject([faults.FaultSpec("store.io.read", times=1)]):
            model = fresh.get(key)
        assert model is not None
        assert counter("serve.store.io_retries") >= retries + 1

    def test_transient_write_error_is_retried(self, tmp_path):
        store = ModelStore(tmp_path)
        netlist = make_netlist("writable")
        with faults.inject([faults.FaultSpec("store.io.write", times=1)]):
            key = store.put(
                netlist,
                build_add_model(netlist, max_nodes=64),
                max_nodes=64,
            )
        # Despite the injected failure the object landed on disk.
        assert ModelStore(tmp_path).get(key) is not None

    def test_persistent_read_error_is_a_miss_not_a_crash(self, tmp_path):
        store = ModelStore(tmp_path)
        netlist = make_netlist("unlucky")
        store.put(
            netlist, build_add_model(netlist, max_nodes=64), max_nodes=64
        )
        fresh = ModelStore(tmp_path)
        failures = counter("serve.store.io_failures")
        with faults.inject([faults.FaultSpec("store.io.read")]):
            model = fresh.get_or_build(netlist, max_nodes=64)
        assert model is not None  # rebuilt instead of crashing
        assert counter("serve.store.io_failures") == failures + 1

    def test_torn_object_write_is_quarantined_and_rebuilt(self, tmp_path):
        store = ModelStore(tmp_path)
        netlist = make_netlist("torn")
        corrupt = counter("serve.store.corrupt_entries")
        with faults.inject([faults.FaultSpec("store.torn_write", times=1)]):
            key = store.put(
                netlist,
                build_add_model(netlist, max_nodes=64),
                max_nodes=64,
            )
        fresh = ModelStore(tmp_path)
        assert fresh.get(key) is None  # truncated file quarantined
        assert counter("serve.store.corrupt_entries") == corrupt + 1
        model = fresh.get_or_build(netlist, max_nodes=64)
        expect = oracle_switching_capacitance(netlist, [0, 0, 0], [1, 1, 1])
        got = model.pair_capacitances([[0, 0, 0]], [[1, 1, 1]])[0]
        assert got == pytest.approx(expect)

    def test_torn_manifest_recovers_from_objects(self, tmp_path):
        store = ModelStore(tmp_path)
        netlist = make_netlist("manifesto")
        recoveries = counter("serve.store.manifest_recoveries")
        # after=1 skips the object write, so the fault lands on the
        # manifest rewrite that follows it.
        with faults.inject(
            [faults.FaultSpec("store.torn_write", times=1, after=1)]
        ):
            store.put(
                netlist,
                build_add_model(netlist, max_nodes=64),
                max_nodes=64,
            )
        fresh = ModelStore(tmp_path)
        entries = fresh.ls()
        assert len(entries) == 1
        assert entries[0].macro_name == "manifesto"
        assert counter("serve.store.manifest_recoveries") >= recoveries + 1


# ---------------------------------------------------------------------------
# End to end: every site at once
# ---------------------------------------------------------------------------
@pytest.mark.chaos
def test_full_pipeline_survives_faults_at_every_site():
    """build → store → serve → load round trip with all sites armed.

    The acceptance bar of the resilience layer: worker crashes, torn
    store writes, connection resets and slow evaluations all fire, the
    answers still match the independent oracle, and every degradation is
    visible in counters.
    """
    netlists = [make_quad("alpha"), make_quad("beta", variant=1)]
    plan = [
        faults.FaultSpec("build.worker.crash", max_token=1),
        faults.FaultSpec("store.torn_write", times=1, after=1),
        faults.FaultSpec("serve.connection.reset", times=3),
        faults.FaultSpec("serve.eval.slow", delay_s=0.02, times=2),
    ]
    with tempfile.TemporaryDirectory() as root:
        with faults.inject(plan, seed=11):
            store = ModelStore(root)
            models = store.get_or_build_many(
                [(n, {"max_nodes": 200}) for n in netlists],
                processes=2,
                job_timeout_s=60.0,
                max_retries=2,
            )
            assert len(models) == 2
            handle = start_in_thread(
                dict(zip(["alpha", "beta"], models)),
                ServerConfig(max_batch=16, max_wait_ms=1.0),
            )
            try:
                client = PowerQueryClient(
                    handle.host,
                    handle.port,
                    timeout=10.0,
                    retry=RetryPolicy(base_delay_s=0.01),
                    rng_seed=5,
                )
                try:
                    transitions = [
                        ("0000", "1111"),
                        ("1010", "0101"),
                        ("0011", "1100"),
                    ]
                    for name, netlist in zip(["alpha", "beta"], netlists):
                        for initial, final in transitions:
                            got = client.evaluate(name, initial, final)
                            expect = oracle_switching_capacitance(
                                netlist,
                                [int(b) for b in initial],
                                [int(b) for b in final],
                            )
                            assert got == pytest.approx(expect)
                finally:
                    client.close()
                report = generate_load(
                    handle.host,
                    handle.port,
                    "alpha",
                    transitions,
                    clients=4,
                    requests_per_client=10,
                )
                assert report.errors == 0
            finally:
                handle.stop()
        # Reload: the torn manifest reconciles, objects survive.
        fresh = ModelStore(root)
        assert len(fresh.ls()) == 2
    # The crash site fires inside a worker that os._exit()s, so its
    # injected-counter increment dies with the child; the supervisor-side
    # crash counter is the observable.  Parent-side sites count directly.
    assert counter("faults.injected.store.torn_write") >= 1
    assert counter("faults.injected.serve.connection.reset") >= 1
    assert counter("build.worker.crashes") >= 1
