"""Tests for the characterized baselines: Con, Lin, LUT and TrainingData."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CharacterizationError, ModelError
from repro.models import (
    ConstantModel,
    LinearModel,
    StatsLUTModel,
    generate_training_data,
)
from repro.models.characterize import TrainingData, characterization_sequence
from repro.sim import markov_sequence, sequence_switching_capacitances


class TestTrainingData:
    def test_generation_matches_golden(self, fig2_netlist):
        training = generate_training_data(fig2_netlist, length=50, seed=1)
        assert training.num_samples == 49
        assert training.num_inputs == 2
        golden = sequence_switching_capacitances(
            fig2_netlist,
            np.vstack([training.initial, training.final[-1:]]),
        )
        assert np.allclose(training.capacitances, golden)

    def test_activities(self):
        initial = np.array([[1, 0], [0, 0]], dtype=bool)
        final = np.array([[0, 0], [0, 1]], dtype=bool)
        data = TrainingData(initial, final, np.array([1.0, 2.0]))
        assert data.activities.tolist() == [[1.0, 0.0], [0.0, 1.0]]

    def test_validation(self):
        good = np.zeros((3, 2), dtype=bool)
        with pytest.raises(CharacterizationError):
            TrainingData(good, np.zeros((4, 2), dtype=bool), np.zeros(3))
        with pytest.raises(CharacterizationError):
            TrainingData(good, good, np.zeros(5))
        with pytest.raises(CharacterizationError):
            TrainingData(
                np.zeros((0, 2), dtype=bool),
                np.zeros((0, 2), dtype=bool),
                np.zeros(0),
            )

    def test_characterization_sequence_stats(self, fig2_netlist):
        sequence = characterization_sequence(fig2_netlist, length=2000)
        assert abs(sequence.mean() - 0.5) < 0.05


class TestConstantModel:
    def test_characterize_uses_training_mean(self, fig2_netlist):
        training = generate_training_data(fig2_netlist, length=200, seed=2)
        model = ConstantModel.characterize(fig2_netlist, training)
        assert model.value_fF == pytest.approx(training.capacitances.mean())

    def test_every_pattern_gets_same_value(self, fig2_netlist):
        model = ConstantModel("m", fig2_netlist.inputs, 12.5)
        assert model.switching_capacitance([0, 0], [1, 1]) == 12.5
        assert model.switching_capacitance([1, 1], [0, 0]) == 12.5

    def test_closed_form_summaries(self, fig2_netlist):
        model = ConstantModel("m", fig2_netlist.inputs, 9.0)
        sequence = markov_sequence(2, 50, seed=3)
        assert model.average_capacitance(sequence) == 9.0
        assert model.maximum_capacitance(sequence) == 9.0
        batch = model.pair_capacitances(sequence[:-1], sequence[1:])
        assert np.all(batch == 9.0)

    def test_worst_case_constructor(self, fig2_netlist):
        training = generate_training_data(fig2_netlist, length=200, seed=2)
        model = ConstantModel.worst_case(fig2_netlist, training)
        assert model.value_fF == pytest.approx(training.capacitances.max())

    def test_negative_value_rejected(self):
        with pytest.raises(CharacterizationError):
            ConstantModel("m", ["a"], -1.0)


class TestLinearModel:
    def test_exact_fit_on_linear_circuit(self, fig2_netlist):
        """fig2's switching capacitance IS close to linear in activities;
        more importantly, lstsq must reproduce an exactly linear target."""
        rng = np.random.default_rng(4)
        initial = rng.random((300, 2)) < 0.5
        final = rng.random((300, 2)) < 0.5
        activities = (initial ^ final).astype(float)
        target = 3.0 + activities @ np.array([7.0, 2.0])
        training = TrainingData(initial, final, target)
        model = LinearModel.characterize(fig2_netlist, training)
        assert model.intercept_fF == pytest.approx(3.0, abs=1e-8)
        assert model.coefficients_fF == pytest.approx([7.0, 2.0], abs=1e-8)

    def test_per_pattern_evaluation(self):
        model = LinearModel("m", ["a", "b"], 1.0, [10.0, 100.0])
        assert model.switching_capacitance([0, 0], [1, 0]) == 11.0
        assert model.switching_capacitance([0, 1], [1, 0]) == 111.0
        assert model.switching_capacitance([1, 1], [1, 1]) == 1.0

    def test_batch_matches_single(self, fig2_netlist, rng):
        training = generate_training_data(fig2_netlist, length=100, seed=5)
        model = LinearModel.characterize(fig2_netlist, training)
        initial = rng.random((20, 2)) < 0.5
        final = rng.random((20, 2)) < 0.5
        batch = model.pair_capacitances(initial, final)
        for k in range(20):
            assert batch[k] == pytest.approx(
                model.switching_capacitance(initial[k], final[k])
            )

    def test_coefficient_count(self, fig2_netlist):
        model = LinearModel.characterize(
            fig2_netlist, generate_training_data(fig2_netlist, length=50)
        )
        assert model.num_coefficients == 3

    def test_coefficient_width_validated(self):
        with pytest.raises(CharacterizationError):
            LinearModel("m", ["a", "b"], 0.0, [1.0])

    def test_in_sample_error_is_small(self, fig2_netlist):
        training = generate_training_data(fig2_netlist, length=2000, seed=6)
        model = LinearModel.characterize(fig2_netlist, training)
        estimate = model.pair_capacitances(training.initial, training.final)
        bias = abs(estimate.mean() - training.capacitances.mean())
        assert bias < 0.5  # least squares is unbiased on the sample


class TestStatsLUT:
    def test_lookup_interpolates(self, fig2_netlist):
        model = StatsLUTModel(
            "m",
            fig2_netlist.inputs,
            np.array([0.0, 1.0]),
            np.array([0.0, 1.0]),
            np.array([[0.0, 10.0], [20.0, 30.0]]),
        )
        assert model.lookup(0.0, 0.0) == 0.0
        assert model.lookup(0.0, 1.0) == 10.0
        assert model.lookup(1.0, 0.0) == 20.0
        assert model.lookup(0.5, 0.5) == pytest.approx(15.0)

    def test_lookup_clamps_outside_grid(self, fig2_netlist):
        model = StatsLUTModel(
            "m",
            fig2_netlist.inputs,
            np.array([0.2, 0.8]),
            np.array([0.1, 0.9]),
            np.array([[1.0, 2.0], [3.0, 4.0]]),
        )
        assert model.lookup(0.0, 0.0) == 1.0
        assert model.lookup(1.0, 1.0) == 4.0

    def test_characterize_tracks_statistics(self, fig2_netlist):
        model = StatsLUTModel.characterize(
            fig2_netlist, sequence_length=400, seed=7
        )
        low = markov_sequence(2, 800, sp=0.5, st=0.1, seed=8)
        high = markov_sequence(2, 800, sp=0.5, st=0.5, seed=9)
        # More activity -> more power; the LUT must reflect that.
        assert model.average_capacitance(high) > model.average_capacitance(low)

    def test_grid_shape_validated(self):
        with pytest.raises(CharacterizationError):
            StatsLUTModel(
                "m", ["a"], np.array([0.5]), np.array([0.5]), np.array([[1.0]])
            )

    def test_table_shape_validated(self):
        with pytest.raises(CharacterizationError):
            StatsLUTModel(
                "m",
                ["a"],
                np.array([0.2, 0.8]),
                np.array([0.2, 0.8]),
                np.zeros((3, 2)),
            )


class TestBaseClassValidation:
    def test_width_check(self, fig2_netlist):
        model = ConstantModel("m", fig2_netlist.inputs, 1.0)
        with pytest.raises(ModelError):
            model.pair_capacitances(
                np.zeros((2, 3), dtype=bool), np.zeros((2, 3), dtype=bool)
            )

    def test_sequence_too_short(self):
        model = LinearModel("m", ["a"], 0.0, [1.0])
        with pytest.raises(ModelError):
            model.sequence_capacitances(np.zeros((1, 1), dtype=bool))

    def test_energy_conversion(self):
        model = ConstantModel("m", ["a"], 10.0)
        assert model.energy_fJ([0], [1], vdd=2.0) == 40.0
