"""Tests for the event-driven glitch simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import (
    sequence_glitch_capacitances,
    sequence_switching_capacitances,
    simulate_transition,
    switching_capacitance,
)


class TestZeroDelayAgreement:
    def test_structural_component_matches_golden(self, fig2_netlist, rng):
        for _ in range(20):
            initial = (rng.random(2) < 0.5).tolist()
            final = (rng.random(2) < 0.5).tolist()
            trace = simulate_transition(fig2_netlist, initial, final)
            golden = switching_capacitance(fig2_netlist, initial, final)
            assert trace.zero_delay_capacitance_fF == pytest.approx(golden)

    def test_balanced_tree_has_no_glitches(self, rng):
        """In a balanced tree every gate's inputs settle simultaneously,
        so transport-delay simulation produces no spurious transitions."""
        from repro.netlist import NetlistBuilder

        builder = NetlistBuilder("balanced")
        bits = builder.bus("x", 4)
        builder.output("p", builder.xor_tree(bits))
        netlist = builder.build()
        for _ in range(20):
            initial = (rng.random(4) < 0.5).tolist()
            final = (rng.random(4) < 0.5).tolist()
            trace = simulate_transition(netlist, initial, final)
            assert trace.num_glitch_transitions == 0
            assert trace.glitch_capacitance_fF == pytest.approx(0.0)

    def test_chain_circuit_does_glitch(self, xor_chain_netlist):
        """An XOR chain has unequal input depths: toggling the first and
        last inputs together makes intermediate gates switch twice."""
        trace = simulate_transition(xor_chain_netlist, [0, 0, 0, 0], [1, 0, 0, 1])
        assert trace.num_glitch_transitions > 0


class TestGlitchDetection:
    def test_unequal_paths_produce_glitch(self, reconvergent_netlist):
        """reconv: y = (a & b & c) | ~a.  On a: 0 -> 1 with b = c = 1 the
        OR sees ~a fall (fast) before the AND path rises (slow): a glitch."""
        trace = simulate_transition(reconvergent_netlist, [0, 1, 1], [1, 1, 1])
        assert trace.num_glitch_transitions > 0
        assert trace.switching_capacitance_fF > trace.zero_delay_capacitance_fF

    def test_total_at_least_structural_rising(self, reconvergent_netlist, rng):
        """Every settled rising transition is also seen by the event sim,
        so total capacitance >= zero-delay capacitance."""
        for _ in range(30):
            initial = (rng.random(3) < 0.5).tolist()
            final = (rng.random(3) < 0.5).tolist()
            trace = simulate_transition(reconvergent_netlist, initial, final)
            assert (
                trace.switching_capacitance_fF
                >= trace.zero_delay_capacitance_fF - 1e-9
            )

    def test_custom_delays_change_glitching(self, reconvergent_netlist):
        # Making the inverter as slow as the AND path removes the hazard.
        slow_inv = {}
        for gate in reconvergent_netlist.gates:
            if gate.cell.name == "INV1":
                slow_inv[gate.name] = 3
        balanced = simulate_transition(
            reconvergent_netlist, [0, 1, 1], [1, 1, 1], delays=slow_inv
        )
        assert balanced.num_glitch_transitions == 0


class TestSequenceInterface:
    def test_sequence_glitch_capacitances(self, reconvergent_netlist, rng):
        sequence = rng.random((12, 3)) < 0.5
        totals = sequence_glitch_capacitances(reconvergent_netlist, sequence)
        structural = sequence_switching_capacitances(
            reconvergent_netlist, sequence
        )
        assert totals.shape == structural.shape
        assert np.all(totals >= structural - 1e-9)

    def test_too_short_sequence_rejected(self, reconvergent_netlist):
        with pytest.raises(SimulationError):
            sequence_glitch_capacitances(
                reconvergent_netlist, np.zeros((1, 3), dtype=bool)
            )


class TestValidation:
    def test_pattern_width_checked(self, fig2_netlist):
        with pytest.raises(SimulationError):
            simulate_transition(fig2_netlist, [0], [1])

    def test_bad_delay_rejected(self, fig2_netlist):
        gate = fig2_netlist.gates[0]
        with pytest.raises(SimulationError):
            simulate_transition(
                fig2_netlist, [0, 0], [1, 1], delays={gate.name: 0}
            )

    def test_no_input_change_no_events(self, fig2_netlist):
        trace = simulate_transition(fig2_netlist, [1, 0], [1, 0])
        assert trace.num_output_transitions == 0
        assert trace.switching_capacitance_fF == 0.0
