"""Tests for RTL-level macro composition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import parity, ripple_adder
from repro.errors import ModelError, NetlistError
from repro.models import (
    ConstantModel,
    build_add_model,
    build_upper_bound_model,
)
from repro.rtl import RTLDesign
from repro.sim import markov_sequence


@pytest.fixture
def design():
    """Two 2-bit adders feeding a 3-input parity checker."""
    adder = ripple_adder(2, carry_in=False, name="add2")
    par = parity(3, name="par3")
    d = RTLDesign("datapath", ["a0", "a1", "b0", "b1", "c0", "c1", "d0", "d1"])
    d.add_instance(
        "add_ab",
        adder,
        {"a0": "a0", "a1": "a1", "b0": "b0", "b1": "b1"},
    )
    d.add_instance(
        "add_cd",
        adder,
        {"a0": "c0", "a1": "c1", "b0": "d0", "b1": "d1"},
    )
    d.add_instance(
        "par",
        par,
        {"x0": "add_ab.s0", "x1": "add_cd.s1", "x2": "add_ab.cout"},
    )
    return d


class TestStructure:
    def test_unknown_signal_rejected(self):
        d = RTLDesign("bad", ["a"])
        with pytest.raises(NetlistError, match="unknown design signal"):
            d.add_instance("p", parity(2), {"x0": "a", "x1": "ghost"})

    def test_forward_instance_reference_rejected(self):
        d = RTLDesign("bad", ["a", "b"])
        with pytest.raises(NetlistError):
            d.add_instance(
                "p", parity(2), {"x0": "a", "x1": "later.p"}
            )

    def test_unconnected_input_rejected(self):
        d = RTLDesign("bad", ["a"])
        with pytest.raises(NetlistError, match="unconnected"):
            d.add_instance("p", parity(2), {"x0": "a"})

    def test_duplicate_instance_rejected(self, design):
        with pytest.raises(NetlistError, match="duplicate"):
            design.add_instance(
                "add_ab",
                ripple_adder(2, carry_in=False),
                {"a0": "a0", "a1": "a1", "b0": "b0", "b1": "b1", "cin": "a0"},
            )

    def test_bad_output_reference(self):
        d = RTLDesign("bad", ["a", "b"])
        d.add_instance("p", parity(2), {"x0": "a", "x1": "b"})
        with pytest.raises(NetlistError, match="no output"):
            d.add_instance("q", parity(2), {"x0": "p.ghost", "x1": "a"})


class TestFunctionalSimulation:
    def test_signals_match_manual_composition(self, design):
        rng = np.random.default_rng(41)
        sequence = rng.random((20, 8)) < 0.5
        signals = design.simulate_signals(sequence)
        # Check one cycle by hand.
        row = sequence[7]
        a = int(row[0]) + 2 * int(row[1])
        b = int(row[2]) + 2 * int(row[3])
        total = a + b
        assert int(signals["add_ab.s0"][7]) == total & 1
        assert int(signals["add_ab.cout"][7]) == (total >> 2) & 1

    def test_width_validated(self, design):
        with pytest.raises(ModelError):
            design.simulate_signals(np.zeros((5, 3), dtype=bool))

    def test_instance_input_sequences_shapes(self, design):
        sequence = markov_sequence(8, 10, seed=42)
        per_instance = design.instance_input_sequences(sequence)
        assert per_instance["add_ab"].shape == (10, 4)
        assert per_instance["par"].shape == (10, 3)


class TestPowerComposition:
    def test_exact_models_reproduce_golden(self, design):
        sequence = markov_sequence(8, 60, seed=43)
        for instance in design.instances:
            design.attach_model(
                instance.name, build_add_model(instance.netlist)
            )
        estimate = design.estimated_capacitances(sequence)
        golden = design.golden_capacitances(sequence)
        assert np.allclose(estimate, golden)

    def test_bound_composition_is_conservative(self, design):
        sequence = markov_sequence(8, 60, seed=44)
        for instance in design.instances:
            design.attach_model(
                instance.name,
                build_upper_bound_model(instance.netlist, max_nodes=20),
            )
        bound = design.estimated_capacitances(sequence)
        golden = design.golden_capacitances(sequence)
        assert np.all(bound >= golden - 1e-9)

    def test_pattern_bound_tighter_than_constant_worst_case(self, design):
        sequence = markov_sequence(8, 120, sp=0.5, st=0.2, seed=45)
        for instance in design.instances:
            design.attach_model(
                instance.name,
                build_upper_bound_model(instance.netlist, max_nodes=40),
            )
        per_cycle_bound = design.estimated_capacitances(sequence)
        constant = design.constant_worst_case()
        # Section 1.2: the composed pattern bound is conservative yet far
        # below the sum of global worst cases on typical patterns.
        assert per_cycle_bound.max() <= constant + 1e-9
        assert per_cycle_bound.mean() < constant

    def test_missing_model_rejected(self, design):
        sequence = markov_sequence(8, 10, seed=46)
        with pytest.raises(ModelError, match="without models"):
            design.estimated_capacitances(sequence)

    def test_model_width_checked_on_attach(self, design):
        with pytest.raises(ModelError):
            design.attach_model("par", ConstantModel("c", ["a", "b"], 1.0))

    def test_constant_worst_case_requires_bound_models(self, design):
        for instance in design.instances:
            design.attach_model(
                instance.name,
                ConstantModel("c", instance.netlist.inputs, 5.0),
            )
        with pytest.raises(ModelError, match="global maximum"):
            design.constant_worst_case()
