"""Functional correctness of the benchmark-circuit generators."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.circuits import (
    PAPER_TABLE1,
    address_match_block,
    alu,
    array_multiplier,
    available_circuits,
    comparator,
    decoder,
    load_circuit,
    multiplexer,
    parity,
    parity_check_enable,
    random_logic,
    ripple_adder,
)
from repro.errors import NetlistError
from repro.netlist import assert_valid, check_netlist


def drive(netlist, assignment):
    return netlist.evaluate_outputs(assignment)


class TestMultiplexer:
    @pytest.mark.parametrize("style", ["mux", "gates"])
    def test_selects_correct_data_line(self, style):
        netlist = multiplexer(2, style=style)
        for select in range(4):
            for hot in range(4):
                data = [int(i == hot) for i in range(4)]
                pattern = {f"d{i}": data[i] for i in range(4)}
                pattern["s0"] = select & 1
                pattern["s1"] = (select >> 1) & 1
                assert drive(netlist, pattern)["y"] == int(select == hot)

    def test_styles_are_equivalent(self):
        from repro.netlist import check_equivalent

        tree = multiplexer(3, style="mux", name="m")
        gates = multiplexer(3, style="gates", name="m")
        # Output names coincide ('y'); input sets coincide.
        assert check_equivalent(tree, gates)

    def test_enable_gates_output(self):
        netlist = multiplexer(2, enable=True)
        pattern = {f"d{i}": 1 for i in range(4)}
        pattern.update(s0=0, s1=0, en=0)
        assert drive(netlist, pattern)["y"] == 0
        pattern["en"] = 1
        assert drive(netlist, pattern)["y"] == 1

    def test_bad_width(self):
        with pytest.raises(NetlistError):
            multiplexer(0)


class TestParityAndDecoder:
    @pytest.mark.parametrize("width", [2, 3, 8])
    def test_parity(self, width):
        netlist = parity(width)
        for bits in itertools.product((0, 1), repeat=width):
            assert drive(netlist, list(bits))["p"] == sum(bits) % 2

    def test_decoder_one_hot(self):
        netlist = decoder(3, enable=False)
        for address in range(8):
            bits = [(address >> k) & 1 for k in range(3)]
            outs = drive(netlist, {f"a{k}": bits[k] for k in range(3)})
            assert sum(outs.values()) == 1
            assert outs[f"y{address}"] == 1

    def test_decoder_enable(self):
        netlist = decoder(2, enable=True)
        outs = drive(netlist, {"a0": 1, "a1": 0, "en": 0})
        assert sum(outs.values()) == 0
        outs = drive(netlist, {"a0": 1, "a1": 0, "en": 1})
        assert outs["y1"] == 1


class TestComparator:
    @pytest.mark.parametrize("width", [1, 2, 4])
    def test_against_integer_comparison(self, width):
        netlist = comparator(width)
        for a in range(2 ** width):
            for b in range(2 ** width):
                pattern = {}
                for k in range(width):
                    pattern[f"a{k}"] = (a >> k) & 1
                    pattern[f"b{k}"] = (b >> k) & 1
                outs = drive(netlist, pattern)
                assert outs["gt"] == int(a > b)
                assert outs["eq"] == int(a == b)
                assert outs["lt"] == int(a < b)

    def test_carry_in_cascade(self):
        netlist = comparator(2, carry_in=True)
        # Equal operands defer to the carry-in.
        pattern = {"a0": 1, "a1": 0, "b0": 1, "b1": 0, "gin": 1}
        outs = drive(netlist, pattern)
        assert outs["gt"] == 1 and outs["eq"] == 0


class TestArithmetic:
    @pytest.mark.parametrize("width", [1, 3])
    def test_ripple_adder(self, width):
        netlist = ripple_adder(width)
        for a in range(2 ** width):
            for b in range(2 ** width):
                for cin in (0, 1):
                    pattern = {"cin": cin}
                    for k in range(width):
                        pattern[f"a{k}"] = (a >> k) & 1
                        pattern[f"b{k}"] = (b >> k) & 1
                    outs = drive(netlist, pattern)
                    total = sum(outs[f"s{k}"] << k for k in range(width))
                    total += outs["cout"] << width
                    assert total == a + b + cin

    def test_alu_operations(self):
        width = 3
        netlist = alu(width)
        for a in range(8):
            for b in range(8):
                for op, func in enumerate(
                    [lambda x, y: (x + y) % 8, lambda x, y: x & y,
                     lambda x, y: x | y, lambda x, y: x ^ y]
                ):
                    pattern = {"op0": op & 1, "op1": (op >> 1) & 1}
                    for k in range(width):
                        pattern[f"a{k}"] = (a >> k) & 1
                        pattern[f"b{k}"] = (b >> k) & 1
                    outs = drive(netlist, pattern)
                    result = sum(outs[f"y{k}"] << k for k in range(width))
                    assert result == func(a, b), (a, b, op)

    def test_alu_carry_only_for_add(self):
        netlist = alu(2)
        pattern = {"a0": 1, "a1": 1, "b0": 1, "b1": 1, "op0": 0, "op1": 0}
        assert drive(netlist, pattern)["cout"] == 1
        pattern.update(op0=1)  # AND: carry gated off
        assert drive(netlist, pattern)["cout"] == 0

    @pytest.mark.parametrize("width", [2, 3])
    def test_array_multiplier(self, width):
        netlist = array_multiplier(width)
        for a in range(2 ** width):
            for b in range(2 ** width):
                pattern = {}
                for k in range(width):
                    pattern[f"a{k}"] = (a >> k) & 1
                    pattern[f"b{k}"] = (b >> k) & 1
                outs = drive(netlist, pattern)
                product = sum(
                    outs[f"p{k}"] << k for k in range(2 * width)
                )
                assert product == a * b, (a, b)


class TestStructuredBlocks:
    def test_address_match_block(self):
        netlist = address_match_block(5, 2)
        pattern = {f"addr{k}": 1 for k in range(5)}
        pattern.update(en0=1, en1=1)
        outs = drive(netlist, pattern)
        assert outs["match"] == 1 and outs["valid"] == 1
        pattern["en0"] = 0
        outs = drive(netlist, pattern)
        assert outs["match"] == 1 and outs["valid"] == 0

    def test_parity_check_enable(self):
        netlist = parity_check_enable(3)
        pattern = {"d0": 1, "d1": 1, "d2": 0, "e0": 1, "e1": 0, "e2": 1, "ctl": 0}
        outs = drive(netlist, pattern)
        assert outs["q0"] == 1 and outs["q1"] == 0 and outs["q2"] == 0
        assert outs["par"] == 1  # parity of gated word (1,0,0) is 1
        pattern["ctl"] = 1
        assert drive(netlist, pattern)["par"] == 0


class TestRandomLogic:
    def test_deterministic(self):
        from repro.netlist import write_blif

        one = random_logic("r", 8, 30, seed=5)
        two = random_logic("r", 8, 30, seed=5)
        assert write_blif(one) == write_blif(two)

    def test_seed_changes_circuit(self):
        from repro.netlist import write_blif

        one = random_logic("r", 8, 30, seed=5)
        two = random_logic("r", 8, 30, seed=6)
        assert write_blif(one) != write_blif(two)

    def test_cone_limit_respected(self):
        from repro.dd import DDManager
        from repro.netlist import build_node_functions

        netlist = random_logic("r", 12, 60, seed=7, cone_limit=5)
        manager = DDManager(12)
        variables = {name: k for k, name in enumerate(netlist.inputs)}
        functions = build_node_functions(netlist, manager, variables)
        for node in functions.values():
            assert len(manager.support(node)) <= 5

    def test_every_gate_carries_load(self):
        netlist = random_logic("r", 8, 40, seed=8)
        loads = netlist.load_capacitances()
        assert all(load > 0 for load in loads.values())

    def test_validation_clean(self):
        netlist = random_logic("r", 10, 50, seed=9)
        report = check_netlist(netlist)
        assert report.ok

    def test_parameter_validation(self):
        with pytest.raises(NetlistError):
            random_logic("r", 1, 5, seed=1)
        with pytest.raises(NetlistError):
            random_logic("r", 4, 0, seed=1)
        with pytest.raises(NetlistError):
            random_logic("r", 4, 5, seed=1, cone_limit=1)


class TestMCNCSuite:
    def test_all_circuits_load_and_match_paper_arity(self):
        for name in available_circuits():
            netlist = load_circuit(name)
            assert netlist.num_inputs == PAPER_TABLE1[name].num_inputs
            assert_valid(netlist)

    def test_unknown_circuit_rejected(self):
        with pytest.raises(NetlistError):
            load_circuit("c17")

    def test_load_suite_subset(self):
        from repro.circuits import load_suite

        suite = load_suite(["cm85", "decod"])
        assert set(suite) == {"cm85", "decod"}

    def test_paper_rows_complete(self):
        for name, row in PAPER_TABLE1.items():
            assert row.name == name
            assert row.are_add_percent < row.are_lin_percent < row.are_con_percent
