"""CompiledDD kernels vs the scalar walk, and parallel vs sequential builds.

The compiled batch kernels must be *bit-for-bit* interchangeable with
``DDManager.evaluate`` — the model layer switches between them purely on
batch size, so any numeric divergence would make results depend on how
they were asked for.  The property tests sweep seeded random netlists
across all three approximation strategies (collapsed leaves included)
and check the levelized plan, the pointer fallback and the scalar walk
against each other on random transition batches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.random_logic import random_logic
from repro.dd.compiled import CompiledDD
from repro.dd.manager import DDManager
from repro.errors import DDError
from repro.models import build_add_model, build_add_models_parallel

#: (netlist seed, approximation strategy) grid for the property sweep.
CASES = [
    (seed, strategy)
    for seed in (11, 23, 47)
    for strategy in ("avg", "max", "min")
]


def _build_case(seed: int, strategy: str):
    """A random macro plus a deliberately tight node budget.

    The small ``max_nodes`` forces :func:`repro.dd.approx.approximate`
    to collapse subgraphs into leaves, so the compiled form is exercised
    on genuine ADDs (many distinct terminal values), not just 0/1 BDDs.
    """
    netlist = random_logic("prop", 8, 35, seed=seed, cone_limit=6)
    model = build_add_model(netlist, max_nodes=60, strategy=strategy)
    return netlist, model


def _random_batch(model, rows: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    initial = rng.random((rows, model.num_inputs)) < 0.5
    final = rng.random((rows, model.num_inputs)) < 0.5
    return model._pack_batch(initial, final)


class TestCompiledMatchesScalar:
    @pytest.mark.parametrize("seed,strategy", CASES)
    def test_batch_equals_scalar_walk(self, seed, strategy):
        _, model = _build_case(seed, strategy)
        compiled = model.compiled()
        packed = _random_batch(model, 1000, seed=1000 + seed)
        batch = compiled.evaluate_batch(packed)
        scalar = np.array(
            [model.manager.evaluate(model.root, row) for row in packed]
        )
        # Bit-for-bit: both paths only ever *select* stored terminal
        # values, so there is no tolerance to grant.
        assert np.array_equal(batch, scalar)

    @pytest.mark.parametrize("seed,strategy", CASES)
    def test_levelized_equals_pointer_kernel(self, seed, strategy):
        _, model = _build_case(seed, strategy)
        compiled = model.compiled()
        assert compiled._lev_children is not None
        packed = _random_batch(model, 500, seed=2000 + seed)
        assert np.array_equal(
            compiled._evaluate_levelized(packed),
            compiled._evaluate_pointer(packed),
        )

    def test_collapsed_leaves_are_plain_terminals(self):
        # Sanity for the fixture itself: the tight budget really did
        # produce an approximated diagram with several terminal values.
        _, model = _build_case(11, "avg")
        compiled = model.compiled()
        assert compiled.is_leaf.sum() > 2

    def test_empty_batch(self):
        _, model = _build_case(11, "avg")
        compiled = model.compiled()
        packed = _random_batch(model, 5, seed=3)[:0]
        result = compiled.evaluate_batch(packed)
        assert result.shape == (0,)
        assert result.dtype == np.float64

    def test_single_row(self):
        _, model = _build_case(11, "max")
        compiled = model.compiled()
        packed = _random_batch(model, 1, seed=4)
        batch = compiled.evaluate_batch(packed)
        assert batch.shape == (1,)
        assert batch[0] == model.manager.evaluate(model.root, packed[0])
        assert compiled.evaluate(packed[0]) == batch[0]

    def test_constant_diagram(self):
        manager = DDManager(num_vars=4)
        compiled = CompiledDD.compile(manager, manager.terminal(2.5))
        batch = compiled.evaluate_batch(np.zeros((7, 4), dtype=bool))
        assert np.array_equal(batch, np.full(7, 2.5))
        assert compiled.depth == 0

    def test_narrow_matrix_raises_before_any_work(self):
        _, model = _build_case(23, "avg")
        compiled = model.compiled()
        packed = _random_batch(model, 10, seed=5)
        width = compiled.min_width()
        assert width >= 2
        with pytest.raises(DDError):
            compiled.evaluate_batch(packed[:, : width - 1])


class TestParallelBuildEquivalence:
    def test_parallel_matches_sequential(self):
        netlists = [
            random_logic("par", 7, 30, seed=s, cone_limit=6) for s in (3, 9)
        ]
        sequential = [
            build_add_model(n, max_nodes=80, strategy="avg") for n in netlists
        ]
        parallel = build_add_models_parallel(
            netlists, processes=2, max_nodes=80, strategy="avg"
        )
        rng = np.random.default_rng(60)
        for seq, par, netlist in zip(sequential, parallel, netlists):
            assert par.size == seq.size
            initial = rng.random((300, netlist.num_inputs)) < 0.5
            final = rng.random((300, netlist.num_inputs)) < 0.5
            assert np.array_equal(
                seq.pair_capacitances(initial, final),
                par.pair_capacitances(initial, final),
            )

    def test_sequential_fallback_single_process(self):
        netlist = random_logic("par1", 6, 20, seed=13, cone_limit=5)
        (model,) = build_add_models_parallel(
            [netlist], processes=1, max_nodes=50, strategy="max"
        )
        reference = build_add_model(netlist, max_nodes=50, strategy="max")
        assert model.size == reference.size
        assert model.strategy == "max"
