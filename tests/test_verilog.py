"""Tests for the structural Verilog writer and reader."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.netlist import (
    NetlistBuilder,
    check_equivalent,
    parse_verilog,
    write_verilog,
)


def build_sample():
    builder = NetlistBuilder("sample")
    a, b, s = builder.input("a"), builder.input("b"), builder.input("s")
    builder.output("y", builder.mux(s, builder.and2(a, b), builder.xor2(a, b)))
    builder.output("z", builder.nor2(a, b))
    return builder.build()


class TestWriter:
    def test_module_structure(self):
        text = write_verilog(build_sample())
        assert text.startswith("module sample (")
        assert "endmodule" in text
        assert "input a;" in text
        assert "output y;" in text

    def test_mux_becomes_conditional_assign(self):
        text = write_verilog(build_sample())
        assert "?" in text and ":" in text

    def test_constants_emitted(self):
        builder = NetlistBuilder("consts")
        builder.input("a")
        builder.output("y", builder.const(True))
        text = write_verilog(builder.build())
        assert "1'b1" in text

    def test_net_name_sanitization(self):
        builder = NetlistBuilder("weird")
        a = builder.input("a$[0]")
        builder.output("y", builder.inv(a))
        text = write_verilog(builder.build())
        assert "[0]" not in text  # sanitized


class TestRoundTrip:
    def test_sample_equivalent(self):
        original = build_sample()
        again = parse_verilog(write_verilog(original))
        assert check_equivalent(original, again)

    def test_fig2_equivalent(self, fig2_netlist):
        again = parse_verilog(write_verilog(fig2_netlist))
        assert again.num_inputs == 2
        for a, b in [(0, 0), (0, 1), (1, 0), (1, 1)]:
            assert (
                list(again.evaluate_outputs([a, b]).values())
                == list(fig2_netlist.evaluate_outputs([a, b]).values())
            )

    def test_constant_roundtrip(self):
        builder = NetlistBuilder("consts")
        builder.input("a")
        builder.output("y", builder.const(False))
        original = builder.build()
        again = parse_verilog(write_verilog(original))
        assert again.evaluate_outputs([1])["y"] == 0


class TestParseErrors:
    def test_missing_module(self):
        with pytest.raises(ParseError, match="module"):
            parse_verilog("wire x;")

    def test_missing_endmodule(self):
        with pytest.raises(ParseError, match="endmodule"):
            parse_verilog("module m (a); input a;")

    def test_unknown_primitive(self):
        text = "module m (a, y);\ninput a;\noutput y;\nfoo g0 (y, a);\nendmodule"
        with pytest.raises(ParseError):
            parse_verilog(text)

    def test_unparseable_statement(self):
        text = "module m (a, y);\ninput a;\noutput y;\nalways @(*) y = a;\nendmodule"
        with pytest.raises(ParseError):
            parse_verilog(text)

    def test_comments_stripped(self):
        text = (
            "module m (a, y); // ports\n"
            "input a; /* the\ninput */\n"
            "output y;\n"
            "not g0 (y, a);\n"
            "endmodule"
        )
        netlist = parse_verilog(text)
        assert netlist.evaluate_outputs([0])["y"] == 1
