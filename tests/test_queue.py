"""Distributed build queue: leases, dedupe, exactly-once publish, chaos.

Unit tests drive a thread-hosted :class:`BuildQueueServer` directly
through :class:`BuildQueueClient`; integration tests add a real
:class:`WorkerFarm` of forked processes publishing through a shared
backend; the chaos tier SIGKILLs a worker mid-build and requires every
job to complete via lease reassignment with zero duplicate publishes.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.errors import NetlistError
from repro.netlist import NetlistBuilder, netlist_from_canonical_dict
from repro.obs import get_metrics
from repro.serve import (
    BuildQueueClient,
    ModelStore,
    ObjectStoreConfig,
    QueueConfig,
    StoreWarmer,
    WorkerFarm,
    open_backend,
    start_object_store,
    start_queue,
    sync_stores,
)
from repro.testing import faults


def counter_value(name: str) -> float:
    return get_metrics().counter(name).value


def make_netlist(index: int):
    """A small family of distinct circuits (distinct store keys)."""
    builder = NetlistBuilder(f"queued{index}")
    a, b = builder.input("a"), builder.input("b")
    net = builder.nand2(a, b)
    for step in range(index + 1):
        other = builder.xor2(a, b) if step % 2 else builder.nand2(b, a)
        net = builder.nor2(net, other)
    builder.output("y", net)
    return builder.build()


@pytest.fixture
def queue():
    with start_queue(
        QueueConfig(lease_s=2.0, sweep_interval_s=0.05, max_attempts=3)
    ) as handle:
        yield handle


@pytest.fixture
def client(queue):
    c = BuildQueueClient(queue.host, queue.port)
    yield c
    c.close()


class TestNetlistWireForm:
    def test_round_trip_preserves_content_hash(self, fig2_netlist):
        clone = netlist_from_canonical_dict(fig2_netlist.canonical_dict())
        assert clone.content_hash() == fig2_netlist.content_hash()
        assert clone.inputs == fig2_netlist.inputs
        assert clone.outputs == fig2_netlist.outputs

    def test_round_trip_preserves_tuple_capacitances(self):
        netlist = make_netlist(2)
        clone = netlist_from_canonical_dict(netlist.canonical_dict())
        assert clone.content_hash() == netlist.content_hash()

    def test_malformed_dicts_raise(self):
        with pytest.raises(NetlistError):
            netlist_from_canonical_dict({"inputs": ["a"]})
        with pytest.raises(NetlistError):
            netlist_from_canonical_dict(
                {
                    "inputs": ["a"],
                    "outputs": ["y"],
                    "gates": [{"op": "noSuchOp", "inputs": ["a"],
                               "output": "y", "caps": 8.0}],
                    "output_load_fF": 15.0,
                }
            )


class TestQueueProtocol:
    def test_submit_claim_publish_wait(self, client, fig2_netlist):
        job = client.submit(fig2_netlist)
        assert job["state"] == "pending" and not job["deduped"]
        key = job["key"]
        claimed = client.claim("w1")
        assert claimed["key"] == key and claimed["attempt"] == 1
        assert client.claim("w2") is None  # nothing else pending
        assert client.publish(key, "w1")["accepted"]
        state = client.wait(key, timeout_s=5.0)
        assert state["state"] == "done"

    def test_submits_dedupe_by_content_key(self, client):
        first = client.submit(make_netlist(0))
        deduped_before = counter_value("queue.jobs.deduped")
        second = client.submit(make_netlist(0))
        assert second["key"] == first["key"]
        assert second["deduped"]
        assert counter_value("queue.jobs.deduped") == deduped_before + 1
        # Different config = different key = separate job.
        third = client.submit(make_netlist(0), {"max_nodes": 5})
        assert third["key"] != first["key"] and not third["deduped"]

    def test_duplicate_publish_is_suppressed(self, client, fig2_netlist):
        key = client.submit(fig2_netlist)["key"]
        client.claim("w1")
        dups_before = counter_value("queue.publishes.duplicate")
        assert client.publish(key, "w1")["accepted"]
        late = client.publish(key, "w-zombie")
        assert not late["accepted"] and late["duplicate"]
        assert counter_value("queue.publishes.duplicate") == dups_before + 1

    def test_heartbeat_keeps_lease_and_reports_loss(self, client, fig2_netlist):
        key = client.submit(fig2_netlist)["key"]
        client.claim("w1")
        assert client.heartbeat(key, "w1") is True
        assert client.heartbeat(key, "somebody-else") is False
        client.publish(key, "w1")
        assert client.heartbeat(key, "w1") is False  # terminal = no lease

    def test_fail_re_enqueues_until_attempts_exhaust(self, client, fig2_netlist):
        key = client.submit(fig2_netlist)["key"]
        for attempt in range(1, 4):
            claimed = client.claim(f"w{attempt}")
            assert claimed["attempt"] == attempt
            state = client.fail(key, f"w{attempt}", "boom")
        assert state["state"] == "failed"
        assert "boom" in state["error"]
        assert client.wait(key, timeout_s=1.0)["state"] == "failed"

    def test_lease_expiry_re_enqueues_job(self, fig2_netlist):
        with start_queue(
            QueueConfig(lease_s=0.2, sweep_interval_s=0.05, max_attempts=3)
        ) as handle:
            with BuildQueueClient(handle.host, handle.port) as client:
                key = client.submit(fig2_netlist)["key"]
                expired_before = counter_value("queue.leases.expired")
                assert client.claim("w-dead")["attempt"] == 1
                deadline = time.time() + 5.0
                reclaimed = None
                while reclaimed is None and time.time() < deadline:
                    reclaimed = client.claim("w-alive")
                    time.sleep(0.02)
                assert reclaimed is not None and reclaimed["key"] == key
                assert reclaimed["attempt"] == 2
                assert (
                    counter_value("queue.leases.expired") == expired_before + 1
                )
                client.publish(key, "w-alive")
                assert client.wait(key, timeout_s=2.0)["state"] == "done"

    def test_forced_lease_expiry_fault(self, client, fig2_netlist):
        key = client.submit(fig2_netlist)["key"]
        client.claim("w1")
        with faults.inject([faults.FaultSpec("queue.lease.expire", times=1)]):
            deadline = time.time() + 5.0
            reclaimed = None
            while reclaimed is None and time.time() < deadline:
                reclaimed = client.claim("w2")
                time.sleep(0.02)
        assert reclaimed is not None and reclaimed["key"] == key

    def test_duplicate_claim_fault_double_assigns(self, client, fig2_netlist):
        key = client.submit(fig2_netlist)["key"]
        assert client.claim("w1")["key"] == key
        dup_before = counter_value("queue.claims.duplicate")
        with faults.inject(
            [faults.FaultSpec("queue.job.duplicate_claim", times=1)]
        ):
            second = client.claim("w2")
        assert second is not None and second["key"] == key
        assert counter_value("queue.claims.duplicate") == dup_before + 1
        # Both finish; exactly one publish is accepted.
        results = [client.publish(key, "w1"), client.publish(key, "w2")]
        assert sorted(r["accepted"] for r in results) == [False, True]

    def test_force_resubmit_resurrects_done_job(self, client, fig2_netlist):
        key = client.submit(fig2_netlist)["key"]
        client.claim("w1")
        client.publish(key, "w1")
        assert client.submit(fig2_netlist)["deduped"]  # done jobs dedupe...
        forced = client.submit(fig2_netlist, force=True)  # ...unless forced
        assert not forced["deduped"] and forced["state"] == "pending"
        assert client.claim("w2")["key"] == key


class TestFarmIntegration:
    def test_get_or_build_many_routes_misses_through_farm(self, tmp_path, queue):
        spec = str(tmp_path / "shared")
        store = ModelStore(open_backend(spec))
        netlists = [make_netlist(i) for i in range(4)]
        routed_before = counter_value("serve.store.queue_routed")
        with WorkerFarm(queue.host, queue.port, spec, count=2):
            models = store.get_or_build_many(netlists, queue=queue.spec)
        assert len(models) == 4 and all(m is not None for m in models)
        assert counter_value("serve.store.queue_routed") == routed_before + 4
        # All published into the shared backend: a cold store sees them.
        cold = ModelStore(open_backend(spec))
        for netlist, model in zip(netlists, models):
            revived = cold.get(cold.key_for(netlist))
            assert revived is not None
            assert revived.source_hash == netlist.content_hash()

    def test_unreachable_queue_falls_back_to_local_build(self, tmp_path,
                                                         fig2_netlist):
        store = ModelStore(open_backend(str(tmp_path / "solo")))
        fallbacks_before = counter_value("serve.store.queue_fallbacks")
        model = store.get_or_build(fig2_netlist, queue="127.0.0.1:9")
        assert model is not None
        assert (
            counter_value("serve.store.queue_fallbacks") == fallbacks_before + 1
        )

    def test_warmer_resubmits_hot_missing_keys(self, tmp_path, queue):
        spec = str(tmp_path / "warmed")
        store = ModelStore(open_backend(spec))
        netlist = make_netlist(1)
        with WorkerFarm(queue.host, queue.port, spec, count=1):
            # Two resolutions make the key hot in the access profile.
            store.get_or_build(netlist, queue=queue.spec)
            store.get_or_build(netlist, queue=queue.spec)
            key = store.key_for(netlist)
            # Evict it everywhere, then let the warmer notice.
            store.remove(key)
            assert not store.contains(key)
            warm_before = counter_value("queue.warm.submitted")
            warmer = StoreWarmer(
                store, queue.spec, min_accesses=2, hot_window_s=60.0
            )
            assert warmer.warm_once() == 1
            assert counter_value("queue.warm.submitted") == warm_before + 1
            with BuildQueueClient(queue.host, queue.port) as client:
                assert client.wait(key, timeout_s=20.0)["state"] == "done"
            assert store.contains(key)
            # Hot and present: nothing further to warm.
            assert warmer.warm_once() == 0


@pytest.mark.chaos
class TestChaos:
    def test_sigkill_mid_build_reassigns_and_publishes_once(self, tmp_path):
        """The acceptance scenario: 4 workers, object-store backend,
        SIGKILL one mid-build; every job completes via lease
        reassignment, each key publishes exactly once, and sync
        replicates the result with every hash verified."""
        netlists = [make_netlist(i) for i in range(8)]
        with start_object_store(ObjectStoreConfig()) as obj:
            store = ModelStore(open_backend(obj.spec))
            with start_queue(
                QueueConfig(lease_s=1.0, sweep_interval_s=0.1, max_attempts=4)
            ) as queue:
                with WorkerFarm(
                    queue.host, queue.port, obj.spec, count=4,
                    build_delay_s=0.4,
                ) as farm:
                    with BuildQueueClient(queue.host, queue.port) as client:
                        keys = [client.submit(n)["key"] for n in netlists]
                        assert len(set(keys)) == 8
                        time.sleep(0.2)  # let claims land mid-build
                        victim = farm.processes[0]
                        os.kill(victim.pid, signal.SIGKILL)
                        victim.join(5.0)
                        assert not victim.is_alive()
                        dup_publishes_before = counter_value(
                            "queue.publishes.duplicate"
                        )
                        for key in keys:
                            state = client.wait(key, timeout_s=60.0)
                            assert state["state"] == "done", state
                        stats = client.stats()
                        assert stats["jobs"].get("done") == 8
                        # Zero duplicate publishes registered server-side.
                        assert (
                            counter_value("queue.publishes.duplicate")
                            == dup_publishes_before
                        )
                # Zero client-visible errors: every model resolves.
                for netlist in netlists:
                    assert store.get(store.key_for(netlist)) is not None
            # Exactly one object per key + one manifest on the backend.
            names = store.backend.list("objects/")
            assert sorted(names) == sorted(
                f"objects/{k}.json" for k in set(keys)
            )
            # Replicate to a fresh backend, every content hash verified.
            replica = open_backend(str(tmp_path / "replica"))
            report = sync_stores(store.backend, replica)
            assert report.ok
            assert report.copied == 8 and report.verified == 8

    def test_worker_crash_fault_site_recovers(self, tmp_path):
        """Self-inflicted SIGKILL via the queue.worker.crash site: every
        first-attempt build dies mid-build; respawned workers complete
        the retries (attempt 2 is beyond max_token)."""
        spec = str(tmp_path / "crashy")
        store = ModelStore(open_backend(spec))
        netlists = [make_netlist(i) for i in range(3)]
        with start_queue(
            QueueConfig(lease_s=0.5, sweep_interval_s=0.05, max_attempts=4)
        ) as queue:
            with faults.inject(
                [faults.FaultSpec("queue.worker.crash", max_token=1)]
            ):
                with WorkerFarm(
                    queue.host, queue.port, spec, count=2
                ) as farm:
                    with BuildQueueClient(queue.host, queue.port) as client:
                        keys = [client.submit(n)["key"] for n in netlists]
                        deadline = time.time() + 60.0
                        done = set()
                        while len(done) < len(keys) and time.time() < deadline:
                            farm.respawn_dead()
                            for key in set(keys) - done:
                                state = client.wait(key, timeout_s=0.3)
                                if state["state"] == "done":
                                    done.add(key)
                        assert done == set(keys)
        for netlist in netlists:
            assert store.get(store.key_for(netlist)) is not None
