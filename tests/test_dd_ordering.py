"""Tests for TransitionSpace variable bookkeeping and ordering heuristics."""

from __future__ import annotations

import pytest

from repro.dd import TransitionSpace, fanin_dfs_input_order
from repro.errors import DDError


class TestTransitionSpace:
    def test_interleaved_indices(self):
        space = TransitionSpace(["a", "b", "c"])
        assert [space.xi(k) for k in range(3)] == [0, 2, 4]
        assert [space.xf(k) for k in range(3)] == [1, 3, 5]

    def test_blocked_indices(self):
        space = TransitionSpace(["a", "b", "c"], scheme="blocked")
        assert [space.xi(k) for k in range(3)] == [0, 1, 2]
        assert [space.xf(k) for k in range(3)] == [3, 4, 5]

    def test_variable_names_tagged(self):
        space = TransitionSpace(["a", "b"])
        assert space.manager.var_names[space.xi(0)] == "a@i"
        assert space.manager.var_names[space.xf(0)] == "a@f"

    @pytest.mark.parametrize("scheme", ["interleaved", "blocked"])
    def test_i_to_f_mapping_is_monotone_rename(self, scheme):
        space = TransitionSpace(["a", "b", "c"], scheme=scheme)
        m = space.manager
        f = m.bdd_and(m.var(space.xi(0)), m.var(space.xi(2)))
        g = m.rename(f, space.i_to_f_mapping())
        assert m.support(g) == {space.xf(0), space.xf(2)}

    def test_assignment_packing(self):
        space = TransitionSpace(["a", "b"])
        packed = space.assignment([1, 0], [0, 1])
        assert packed[space.xi(0)] == 1
        assert packed[space.xi(1)] == 0
        assert packed[space.xf(0)] == 0
        assert packed[space.xf(1)] == 1

    def test_assignment_length_checked(self):
        space = TransitionSpace(["a", "b"])
        with pytest.raises(DDError):
            space.assignment([1], [0, 1])

    def test_bad_scheme_rejected(self):
        with pytest.raises(DDError):
            TransitionSpace(["a"], scheme="zigzag")

    def test_duplicate_names_rejected(self):
        with pytest.raises(DDError):
            TransitionSpace(["a", "a"])

    def test_index_bounds_checked(self):
        space = TransitionSpace(["a"])
        with pytest.raises(DDError):
            space.xi(1)
        with pytest.raises(DDError):
            space.xf(-1)


class TestFaninDFSOrder:
    def test_orders_by_first_encounter(self):
        # y = f(b, a); DFS from y should meet b before a.
        order = fanin_dfs_input_order(
            outputs=["y"],
            fanins={"y": ["b", "a"]},
            inputs=["a", "b"],
        )
        assert order == ["b", "a"]

    def test_unreached_inputs_appended(self):
        order = fanin_dfs_input_order(
            outputs=["y"],
            fanins={"y": ["a"]},
            inputs=["a", "b", "c"],
        )
        assert order == ["a", "b", "c"]

    def test_deep_chain_does_not_recurse(self):
        # 10000-deep chain would overflow a recursive implementation.
        fanins = {f"n{i}": [f"n{i + 1}"] for i in range(10000)}
        fanins["n10000"] = ["x"]
        order = fanin_dfs_input_order(["n0"], fanins, ["x"])
        assert order == ["x"]

    def test_shared_cone_visited_once(self):
        fanins = {
            "y1": ["shared", "a"],
            "y2": ["shared", "b"],
            "shared": ["c"],
        }
        order = fanin_dfs_input_order(["y1", "y2"], fanins, ["a", "b", "c"])
        assert order == ["c", "a", "b"]
