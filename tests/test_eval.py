"""Tests for metrics, the sweep runner, trade-off curves and tables."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ModelError
from repro.eval import (
    SweepConfig,
    ascii_table,
    average_relative_error,
    compute_truth_runs,
    evaluate_models_on_runs,
    markdown_table,
    mean_absolute_error,
    relative_error,
    relative_error_percent,
    root_mean_square_error,
    run_sweep,
    series_plot,
    size_accuracy_tradeoff,
)
from repro.models import ConstantModel, LinearModel, build_add_model
from repro.models.characterize import generate_training_data


class TestMetrics:
    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(9.0, 10.0) == pytest.approx(0.1)
        assert relative_error_percent(15.0, 10.0) == pytest.approx(50.0)

    def test_zero_reference(self):
        assert relative_error(0.0, 0.0) == 0.0
        assert math.isinf(relative_error(1.0, 0.0))

    def test_are(self):
        assert average_relative_error([0.1, 0.3]) == pytest.approx(0.2)
        with pytest.raises(ModelError):
            average_relative_error([])

    def test_rmse_and_mae(self):
        estimates = [1.0, 2.0, 3.0]
        truths = [1.0, 4.0, 3.0]
        assert root_mean_square_error(estimates, truths) == pytest.approx(
            math.sqrt(4.0 / 3.0)
        )
        assert mean_absolute_error(estimates, truths) == pytest.approx(2.0 / 3.0)
        with pytest.raises(ModelError):
            root_mean_square_error([1.0], [1.0, 2.0])


class TestSweepConfig:
    def test_grid_filters_infeasible_points(self):
        config = SweepConfig(sp_values=(0.1,), st_values=(0.1, 0.5))
        # At sp = 0.1 only st <= 0.2 is feasible.
        assert config.grid() == [(0.1, 0.1)]

    def test_empty_grid_rejected(self):
        config = SweepConfig(sp_values=(0.05,), st_values=(0.9,))
        with pytest.raises(ModelError):
            config.grid()


class TestRunner:
    @pytest.fixture
    def small_config(self):
        return SweepConfig(
            sp_values=(0.5,),
            st_values=(0.2, 0.5, 0.8),
            sequence_length=400,
            seed=77,
        )

    def test_truth_runs_reproducible(self, fig2_netlist, small_config):
        one = compute_truth_runs(fig2_netlist, small_config)
        two = compute_truth_runs(fig2_netlist, small_config)
        assert len(one) == 3
        for a, b in zip(one, two):
            assert np.array_equal(a.sequence, b.sequence)
            assert a.average_fF == b.average_fF

    def test_exact_add_model_has_zero_are(self, fig2_netlist, small_config):
        model = build_add_model(fig2_netlist)
        result = run_sweep(fig2_netlist, {"ADD": model}, small_config)
        assert result.are_average("ADD") == pytest.approx(0.0, abs=1e-12)
        assert result.are_maximum("ADD") == pytest.approx(0.0, abs=1e-12)

    def test_constant_model_error_grows_off_sample(self, fig2_netlist, small_config):
        training = generate_training_data(fig2_netlist, length=800, seed=5)
        con = ConstantModel.characterize(fig2_netlist, training)
        result = run_sweep(fig2_netlist, {"Con": con}, small_config)
        curve = result.re_curve("Con", sp=0.5)
        # Characterized at st = 0.5: error at st = 0.2 must exceed error at 0.5.
        errors = dict(curve)
        assert errors[0.2] > errors[0.5]

    def test_re_curve_requires_existing_sp(self, fig2_netlist, small_config):
        model = build_add_model(fig2_netlist)
        result = run_sweep(fig2_netlist, {"ADD": model}, small_config)
        with pytest.raises(ModelError):
            result.re_curve("ADD", sp=0.9)

    def test_bound_violations_counted(self, fig2_netlist, small_config):
        # An aggressively collapsed avg model will sit below the peak.
        model = build_add_model(fig2_netlist, max_nodes=1, strategy="avg")
        result = run_sweep(fig2_netlist, {"M": model}, small_config)
        assert result.bound_violations("M") > 0
        bound = build_add_model(fig2_netlist, strategy="max")
        result2 = run_sweep(fig2_netlist, {"B": bound}, small_config)
        assert result2.bound_violations("B") == 0

    def test_no_models_rejected(self, fig2_netlist, small_config):
        runs = compute_truth_runs(fig2_netlist, small_config)
        with pytest.raises(ModelError):
            evaluate_models_on_runs("x", {}, runs)

    def test_multiple_models_share_runs(self, fig2_netlist, small_config):
        training = generate_training_data(fig2_netlist, length=400, seed=6)
        models = {
            "Con": ConstantModel.characterize(fig2_netlist, training),
            "Lin": LinearModel.characterize(fig2_netlist, training),
            "ADD": build_add_model(fig2_netlist),
        }
        result = run_sweep(fig2_netlist, models, small_config)
        assert result.are_average("ADD") <= result.are_average("Lin")
        assert result.are_average("Lin") <= result.are_average("Con") + 0.05


class TestTradeoff:
    def test_monotone_sizes_and_finite_errors(self, fig2_netlist):
        config = SweepConfig(
            sp_values=(0.5,), st_values=(0.3, 0.6), sequence_length=300, seed=3
        )
        points = size_accuracy_tradeoff(
            fig2_netlist, sizes=[12, 6, 3, 1], config=config
        )
        assert [p.target_nodes for p in points] == [1, 3, 6, 12]
        for point in points:
            assert point.actual_nodes <= point.target_nodes
            assert point.are_average >= 0.0
        # Largest budget (near-exact) should be at least as accurate as the
        # constant-collapse extreme.
        assert points[-1].are_average <= points[0].are_average + 1e-9

    def test_percent_property(self, fig2_netlist):
        config = SweepConfig(
            sp_values=(0.5,), st_values=(0.5,), sequence_length=200, seed=4
        )
        points = size_accuracy_tradeoff(fig2_netlist, sizes=[4], config=config)
        assert points[0].are_percent == pytest.approx(
            100.0 * points[0].are_average
        )

    def test_empty_sizes_rejected(self, fig2_netlist):
        with pytest.raises(ModelError):
            size_accuracy_tradeoff(fig2_netlist, sizes=[])


class TestTables:
    def test_ascii_table_alignment(self):
        text = ascii_table(["name", "value"], [["a", 1.25], ["bb", None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "-" in lines[1]
        assert "1.2" in lines[2] or "1.3" in lines[2]
        assert "-" in lines[3]  # None cell

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [["only one"]])

    def test_markdown_table(self):
        text = markdown_table(["x", "y"], [[1, 2.5]])
        assert text.splitlines()[0] == "| x | y |"
        assert "| 1 | 2.5 |" in text

    def test_series_plot_scales_bars(self):
        text = series_plot([(0.1, 1.0), (0.2, 2.0)], width=10)
        lines = text.splitlines()
        assert lines[2].count("#") == 10  # the peak uses the full width
        assert 0 < lines[1].count("#") <= 5

    def test_series_plot_empty(self):
        assert series_plot([]) == "(no data)"


class TestMultiSeriesPlot:
    def test_markers_and_legend(self):
        from repro.eval import multi_series_plot

        text = multi_series_plot(
            {"alpha": [(1, 2.0)], "beta": [(1, 1.0), (2, 3.0)]}, width=10
        )
        assert "# = alpha" in text
        assert "* = beta" in text
        assert "beta=3" in text

    def test_shared_scale(self):
        from repro.eval import multi_series_plot

        text = multi_series_plot(
            {"a": [(1, 10.0)], "b": [(1, 5.0)]}, width=20
        )
        lines = [l for l in text.splitlines() if "|" in l]
        # a's marker lands at the far edge, b's at the midpoint.
        assert lines[0].index("#") - lines[0].index("|") == 21
        assert lines[0].index("*") - lines[0].index("|") == 11

    def test_empty(self):
        from repro.eval import multi_series_plot

        assert multi_series_plot({}) == "(no data)"
