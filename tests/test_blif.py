"""Tests for the BLIF reader and writer."""

from __future__ import annotations

import itertools

import pytest

from repro.errors import ParseError
from repro.netlist import check_equivalent, parse_blif, write_blif

HALF_ADDER = """
# a trivial half adder
.model half_adder
.inputs a b
.outputs s c
.names a b s
10 1
01 1
.names a b c
11 1
.end
"""


class TestParsing:
    def test_half_adder_semantics(self):
        netlist = parse_blif(HALF_ADDER)
        assert netlist.name == "half_adder"
        assert netlist.inputs == ["a", "b"]
        for a, b in itertools.product((0, 1), repeat=2):
            outs = netlist.evaluate_outputs([a, b])
            assert outs["s"] == (a ^ b)
            assert outs["c"] == (a & b)

    def test_comments_and_blank_lines_ignored(self):
        text = HALF_ADDER.replace(".inputs a b", ".inputs a b  # the inputs\n\n")
        netlist = parse_blif(text)
        assert netlist.inputs == ["a", "b"]

    def test_line_continuation(self):
        text = HALF_ADDER.replace(".inputs a b", ".inputs a \\\nb")
        netlist = parse_blif(text)
        assert netlist.inputs == ["a", "b"]

    def test_offset_cover(self):
        text = """
.model offs
.inputs a b
.outputs y
.names a b y
11 0
.end
"""
        netlist = parse_blif(text)
        # y = NOT(a AND b)
        assert netlist.evaluate_outputs([1, 1])["y"] == 0
        assert netlist.evaluate_outputs([1, 0])["y"] == 1

    def test_constant_one_node(self):
        text = """
.model c1
.inputs a
.outputs y z
.names y
1
.names a z
1 1
.end
"""
        netlist = parse_blif(text)
        assert netlist.evaluate_outputs([0])["y"] == 1

    def test_constant_zero_node(self):
        text = """
.model c0
.inputs a
.outputs y
.names y
.names a unused
1 1
.end
"""
        netlist = parse_blif(text)
        assert netlist.evaluate_outputs([1])["y"] == 0

    def test_single_literal_maps_to_buf_or_inv(self):
        text = """
.model wire
.inputs a
.outputs y z
.names a y
1 1
.names a z
0 1
.end
"""
        netlist = parse_blif(text)
        cells = netlist.counts_by_cell()
        assert cells.get("BUF1", 0) >= 1
        assert cells.get("INV1", 0) >= 1
        assert netlist.evaluate_outputs([1]) == {"y": 1, "z": 0}


class TestParseErrors:
    def test_latch_rejected(self):
        with pytest.raises(ParseError, match="latch"):
            parse_blif(".model m\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end")

    def test_missing_inputs(self):
        with pytest.raises(ParseError, match="inputs"):
            parse_blif(".model m\n.outputs y\n.names y\n1\n.end")

    def test_missing_outputs(self):
        with pytest.raises(ParseError, match="outputs"):
            parse_blif(".model m\n.inputs a\n.end")

    def test_undefined_output(self):
        with pytest.raises(ParseError, match="never defined"):
            parse_blif(".model m\n.inputs a\n.outputs ghost\n.end")

    def test_double_definition(self):
        text = """
.model m
.inputs a
.outputs y
.names a y
1 1
.names a y
0 1
.end
"""
        with pytest.raises(ParseError, match="twice"):
            parse_blif(text)

    def test_mixed_polarity_cover(self):
        text = """
.model m
.inputs a b
.outputs y
.names a b y
11 1
00 0
.end
"""
        with pytest.raises(ParseError, match="polarity"):
            parse_blif(text)

    def test_cube_outside_names(self):
        with pytest.raises(ParseError, match="outside"):
            parse_blif(".model m\n.inputs a\n.outputs y\n11 1\n.end")

    def test_content_after_end(self):
        with pytest.raises(ParseError, match="after .end"):
            parse_blif(HALF_ADDER + "\n.names x\n")

    def test_unsupported_directive(self):
        with pytest.raises(ParseError, match="unsupported"):
            parse_blif(".model m\n.inputs a\n.outputs y\n.subckt foo\n.end")

    def test_bad_cube_width(self):
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end"
        with pytest.raises(ParseError):
            parse_blif(text)

    def test_error_carries_line_number(self):
        try:
            parse_blif(".model m\n.inputs a\n.outputs q\n.latch a q\n.end")
        except ParseError as exc:
            assert exc.line == 4
        else:  # pragma: no cover
            pytest.fail("expected ParseError")


class TestRoundTrip:
    def test_write_then_parse_is_equivalent(self, fig2_netlist):
        text = write_blif(fig2_netlist)
        again = parse_blif(text)
        assert check_equivalent(fig2_netlist, again)

    def test_roundtrip_xor_chain(self, xor_chain_netlist):
        again = parse_blif(write_blif(xor_chain_netlist))
        assert check_equivalent(xor_chain_netlist, again)

    def test_roundtrip_mux_gate(self):
        from repro.netlist import NetlistBuilder

        builder = NetlistBuilder("muxy")
        s, a, b = builder.input("s"), builder.input("a"), builder.input("b")
        builder.output("y", builder.mux(s, a, b))
        netlist = builder.build()
        again = parse_blif(write_blif(netlist))
        assert check_equivalent(netlist, again)

    def test_roundtrip_benchmark(self):
        from repro.circuits import load_circuit

        netlist = load_circuit("decod")
        again = parse_blif(write_blif(netlist))
        assert check_equivalent(netlist, again)


class TestMinimizedParsing:
    REDUNDANT = """
.model redundant
.inputs a b c
.outputs y
.names a b c y
110 1
111 1
011 1
010 1
.end
"""

    def test_minimize_reduces_gate_count(self):
        plain = parse_blif(self.REDUNDANT)
        small = parse_blif(self.REDUNDANT, minimize=True)
        assert small.num_gates < plain.num_gates

    def test_minimize_preserves_function(self):
        plain = parse_blif(self.REDUNDANT)
        small = parse_blif(self.REDUNDANT, minimize=True)
        assert check_equivalent(plain, small)

    def test_minimize_on_roundtrip_of_benchmark(self):
        from repro.circuits import load_circuit

        original = load_circuit("decod")
        again = parse_blif(write_blif(original), minimize=True)
        assert check_equivalent(original, again)
