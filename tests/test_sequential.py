"""Tests for sequential (registered) RTL designs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import parity, ripple_adder
from repro.errors import ModelError, NetlistError
from repro.models import build_add_model, build_upper_bound_model
from repro.rtl.sequential import SequentialDesign
from repro.sim import markov_sequence


@pytest.fixture
def accumulator():
    """A 2-bit accumulator: register bank feeding an adder fed back."""
    adder = ripple_adder(2, carry_in=False, name="add2")
    design = SequentialDesign("accumulator", ["in0", "in1"])
    design.add_register("acc0", "sum.s0", load_fF=10.0)
    design.add_register("acc1", "sum.s1", load_fF=10.0)
    design.add_instance(
        "sum", adder,
        {"a0": "in0", "a1": "in1", "b0": "acc0", "b1": "acc1"},
    )
    return design


class TestConstruction:
    def test_register_name_collision(self, accumulator):
        with pytest.raises(NetlistError):
            accumulator.add_register("acc0", "sum.s0")
        with pytest.raises(NetlistError):
            accumulator.add_register("in0", "sum.s0")

    def test_unknown_connection_signal(self):
        design = SequentialDesign("d", ["x"])
        with pytest.raises(NetlistError):
            design.add_instance("p", parity(2), {"x0": "x", "x1": "ghost"})

    def test_bad_register_source_caught_at_simulation(self):
        design = SequentialDesign("d", ["x", "y"])
        design.add_register("r", "nope.q")
        design.add_instance("p", parity(2), {"x0": "x", "x1": "y"})
        with pytest.raises(NetlistError):
            design.simulate(np.zeros((3, 2), dtype=bool))


class TestSemantics:
    def test_accumulator_adds_inputs_mod_4(self, accumulator):
        # Feed the value 1 for five cycles; acc goes 0,1,2,3,0,...
        sequence = np.zeros((6, 2), dtype=bool)
        sequence[:, 0] = True  # in0 = 1
        signals = accumulator.simulate(sequence)
        acc = (
            signals["acc0"].astype(int) + 2 * signals["acc1"].astype(int)
        )
        assert acc.tolist() == [0, 1, 2, 3, 0, 1]

    def test_register_initial_value(self):
        design = SequentialDesign("d", ["x"])
        design.add_register("r", "p.p", initial_value=1)
        design.add_instance("p", parity(2), {"x0": "x", "x1": "r"})
        signals = design.simulate(np.zeros((3, 1), dtype=bool))
        assert bool(signals["r"][0]) is True

    def test_instance_inputs_use_previous_state(self, accumulator):
        sequence = np.zeros((4, 2), dtype=bool)
        sequence[:, 0] = True
        per_instance = accumulator.instance_input_sequences(sequence)
        # Adder's b operand lags its own sum by one cycle.
        adder_inputs = per_instance["sum"]
        b_values = (
            adder_inputs[:, 2].astype(int) + 2 * adder_inputs[:, 3].astype(int)
        )
        assert b_values.tolist() == [0, 1, 2, 3]


class TestPower:
    def test_exact_models_match_golden(self, accumulator):
        accumulator.attach_model(
            "sum", build_add_model(accumulator.instances[0].netlist)
        )
        sequence = markov_sequence(2, 60, seed=91)
        golden = accumulator.golden_capacitances(sequence)
        estimate = accumulator.estimated_capacitances(sequence)
        assert np.allclose(golden, estimate)

    def test_register_load_counted(self, accumulator):
        sequence = np.zeros((5, 2), dtype=bool)
        sequence[:, 0] = True  # accumulate 1 per cycle
        register_caps = accumulator.register_capacitances(sequence)
        # acc goes 0->1->2->3->0: acc0 rises at t0->1 and t2->3 etc.
        assert register_caps.sum() > 0.0

    def test_bound_composition_conservative(self, accumulator):
        accumulator.attach_model(
            "sum",
            build_upper_bound_model(
                accumulator.instances[0].netlist, max_nodes=50
            ),
        )
        sequence = markov_sequence(2, 80, seed=92)
        golden = accumulator.golden_capacitances(sequence)
        bound = accumulator.estimated_capacitances(sequence)
        assert np.all(bound >= golden - 1e-9)

    def test_missing_model_rejected(self, accumulator):
        with pytest.raises(ModelError):
            accumulator.estimated_capacitances(
                markov_sequence(2, 10, seed=93)
            )

    def test_model_width_checked(self, accumulator):
        from repro.models import ConstantModel

        with pytest.raises(ModelError):
            accumulator.attach_model("sum", ConstantModel("c", ["a"], 1.0))

    def test_pipeline_of_two_macros(self):
        """Registered pipeline: parity stage -> register -> parity stage."""
        design = SequentialDesign("pipe", ["a", "b", "c"])
        design.add_register("r", "front.p")
        design.add_instance("front", parity(2), {"x0": "a", "x1": "b"})
        design.add_instance("back", parity(2), {"x0": "r", "x1": "c"})
        for instance in design.instances:
            design.attach_model(instance.name, build_add_model(instance.netlist))
        sequence = markov_sequence(3, 50, seed=94)
        golden = design.golden_capacitances(sequence)
        estimate = design.estimated_capacitances(sequence)
        assert np.allclose(golden, estimate)
