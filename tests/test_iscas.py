"""Tests for the ISCAS-85 netlist reader (using the classic c17 circuit)."""

from __future__ import annotations

import itertools

import pytest

from repro.errors import ParseError
from repro.netlist import NetlistBuilder
from repro.netlist.iscas import parse_iscas

# The six-NAND c17 benchmark in ISCAS-85 netlist format, with the usual
# fanout branch entries for the multiply-loaded signals.
C17 = """
*  c17 — smallest ISCAS-85 benchmark
1  1gat inpt 1 0 >sa1
2  2gat inpt 1 0 >sa1
3  3gat inpt 2 0 >sa0 >sa1
8  8gat from 3gat >sa1
9  9gat from 3gat >sa1
6  6gat inpt 1 0 >sa1
7  7gat inpt 1 0 >sa1
10 10gat nand 1 2 >sa1
 1 8
11 11gat nand 2 2 >sa0 >sa1
 9 6
14 14gat from 11gat >sa1
15 15gat from 11gat >sa1
16 16gat nand 2 2 >sa0 >sa1
 2 14
20 20gat from 16gat >sa1
21 21gat from 16gat >sa1
19 19gat nand 1 2 >sa1
 15 7
22 22gat nand 0 2 >sa0 >sa1
 10 20
23 23gat nand 0 2 >sa1
 21 19
"""


def reference_c17():
    """c17 rebuilt directly: two NAND trees over five inputs."""
    builder = NetlistBuilder("c17_ref", share_structure=False)
    i1, i2, i3 = builder.input("1gat"), builder.input("2gat"), builder.input("3gat")
    i6, i7 = builder.input("6gat"), builder.input("7gat")
    g10 = builder.nand2(i1, i3)
    g11 = builder.nand2(i3, i6)
    g16 = builder.nand2(i2, g11)
    g19 = builder.nand2(g11, i7)
    builder.netlist.add_output(builder.nand2(g10, g16))
    builder.netlist.add_output(builder.nand2(g16, g19))
    return builder.build()


class TestC17:
    def test_structure(self):
        netlist = parse_iscas(C17, name="c17")
        assert netlist.name == "c17"
        assert netlist.num_inputs == 5
        assert netlist.num_gates == 6
        assert len(netlist.outputs) == 2
        assert set(netlist.outputs) == {"22gat", "23gat"}
        assert all(g.cell.op.value == "nand" for g in netlist.gates)

    def test_functionality_matches_reference(self):
        netlist = parse_iscas(C17)
        reference = reference_c17()
        for bits in itertools.product((0, 1), repeat=5):
            pattern = dict(zip(netlist.inputs, bits))
            ref_pattern = dict(zip(reference.inputs, bits))
            got = sorted(netlist.evaluate_outputs(pattern).values())
            want = sorted(reference.evaluate_outputs(ref_pattern).values())
            # sorted() because output name order may differ; c17's two
            # outputs are distinguishable over the full truth table sweep.
            assert got == want, bits

    def test_branch_loads_accumulate_on_stem(self):
        netlist = parse_iscas(C17)
        # 11gat drives two NAND pins (via branches 14/15): 2 * 7 fF.
        loads = netlist.load_capacitances()
        driver = netlist.driver("11gat")
        assert loads[driver.name] == pytest.approx(14.0)

    def test_power_model_builds(self):
        from repro.models import build_add_model
        from repro.sim import exhaustive_pairs, switching_capacitance

        netlist = parse_iscas(C17)
        model = build_add_model(netlist)
        count = 0
        for initial, final in exhaustive_pairs(5):
            truth = switching_capacitance(
                netlist, initial.tolist(), final.tolist()
            )
            assert model.switching_capacitance(initial, final) == \
                pytest.approx(truth)
            count += 1
        assert count == 1024


class TestParseErrors:
    def test_unknown_gate_type(self):
        with pytest.raises(ParseError, match="unknown gate type"):
            parse_iscas("1 a inpt 1 0\n2 b frob 0 1\n 1\n")

    def test_fanin_count_mismatch(self):
        with pytest.raises(ParseError, match="declares 2 fanins"):
            parse_iscas("1 a inpt 1 0\n2 b nand 0 2\n 1\n")

    def test_missing_fanin_list(self):
        with pytest.raises(ParseError, match="missing fanin list"):
            parse_iscas("1 a inpt 1 0\n2 b not 0 1\n")

    def test_unknown_stem(self):
        text = "1 a inpt 1 0\n5 br from ghost\n2 b not 0 1\n 5\n"
        with pytest.raises(ParseError, match="unknown stem"):
            parse_iscas(text)

    def test_empty_input(self):
        with pytest.raises(ParseError, match="empty"):
            parse_iscas("* only a comment\n")

    def test_no_outputs(self):
        text = "1 a inpt 1 0\n2 b not 1 1\n 1\n"
        with pytest.raises(ParseError, match="zero-fanout"):
            parse_iscas(text)
