"""Cross-domain consistency of gate semantics (python / numpy / symbolic)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.dd import DDManager
from repro.errors import NetlistError
from repro.netlist import GateOp, check_arity, eval_numpy, eval_python, eval_symbolic

BINARY_OPS = [GateOp.AND, GateOp.OR, GateOp.NAND, GateOp.NOR, GateOp.XOR, GateOp.XNOR]


def reference(op: GateOp, bits):
    """Independent truth reference for each operator."""
    if op is GateOp.CONST0:
        return 0
    if op is GateOp.CONST1:
        return 1
    if op is GateOp.BUF:
        return bits[0]
    if op is GateOp.INV:
        return 1 - bits[0]
    if op is GateOp.AND:
        return int(all(bits))
    if op is GateOp.NAND:
        return 1 - int(all(bits))
    if op is GateOp.OR:
        return int(any(bits))
    if op is GateOp.NOR:
        return 1 - int(any(bits))
    if op is GateOp.XOR:
        return sum(bits) % 2
    if op is GateOp.XNOR:
        return 1 - (sum(bits) % 2)
    if op is GateOp.MUX:
        s, d0, d1 = bits
        return d1 if s else d0
    raise AssertionError(op)


def arities(op: GateOp):
    if op in (GateOp.CONST0, GateOp.CONST1):
        return [0]
    if op in (GateOp.BUF, GateOp.INV):
        return [1]
    if op is GateOp.MUX:
        return [3]
    return [2, 3, 4]


@pytest.mark.parametrize("op", list(GateOp))
def test_python_matches_reference(op):
    for k in arities(op):
        for bits in itertools.product((0, 1), repeat=k):
            assert eval_python(op, list(bits)) == reference(op, bits)


@pytest.mark.parametrize("op", list(GateOp))
def test_numpy_matches_python(op):
    for k in arities(op):
        rows = list(itertools.product((0, 1), repeat=k))
        columns = [
            np.array([row[i] for row in rows], dtype=bool) for i in range(k)
        ]
        batch = eval_numpy(op, columns, len(rows))
        for index, row in enumerate(rows):
            assert int(batch[index]) == eval_python(op, list(row))


@pytest.mark.parametrize("op", list(GateOp))
def test_symbolic_matches_python(op):
    for k in arities(op):
        manager = DDManager(max(k, 1))
        operands = [manager.var(i) for i in range(k)]
        node = eval_symbolic(op, manager, operands)
        for bits in itertools.product((0, 1), repeat=max(k, 1)):
            expected = eval_python(op, list(bits[:k]))
            assert manager.evaluate(node, list(bits)) == float(expected)


class TestArityChecks:
    def test_fixed_arity_enforced(self):
        with pytest.raises(NetlistError):
            check_arity(GateOp.INV, 2)
        with pytest.raises(NetlistError):
            check_arity(GateOp.MUX, 2)
        with pytest.raises(NetlistError):
            check_arity(GateOp.CONST0, 1)

    def test_associative_minimum_two(self):
        with pytest.raises(NetlistError):
            check_arity(GateOp.AND, 1)
        check_arity(GateOp.AND, 2)  # no raise

    def test_eval_checks_arity_too(self):
        with pytest.raises(NetlistError):
            eval_python(GateOp.XOR, [1])
