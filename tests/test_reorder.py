"""Tests for DD variable reordering (transfer + order searches)."""

from __future__ import annotations

import itertools

import pytest

from repro.dd import DDManager
from repro.dd.reorder import (
    random_order_search,
    sift_order_search,
    size_under_order,
    transfer,
)
from repro.errors import DDError, VariableOrderError


def interleaved_equality(manager, pairs):
    """f = AND over pairs (a_i == b_i); order-sensitivity workhorse."""
    result = manager.one
    for a, b in pairs:
        result = manager.bdd_and(
            result,
            manager.bdd_not(manager.bdd_xor(manager.var(a), manager.var(b))),
        )
    return result


class TestTransfer:
    def test_semantics_preserved(self):
        m = DDManager(4)
        f = m.add_plus(
            m.add_const_times(m.bdd_and(m.var(0), m.var(3)), 5.0),
            m.add_const_times(m.bdd_xor(m.var(1), m.var(2)), 2.0),
        )
        order = [3, 1, 0, 2]
        target, g = transfer(m, f, order)
        for bits in itertools.product((0, 1), repeat=4):
            new_bits = [bits[order[k]] for k in range(4)]
            assert target.evaluate(g, new_bits) == m.evaluate(f, list(bits))

    def test_identity_order_keeps_size(self):
        m = DDManager(4)
        f = interleaved_equality(m, [(0, 1), (2, 3)])
        assert size_under_order(m, f, [0, 1, 2, 3]) == m.size(f)

    def test_blocked_equality_blows_up(self):
        """Equality of two 3-bit words: interleaved O(n), blocked O(2^n)."""
        m = DDManager(6)
        f = interleaved_equality(m, [(0, 1), (2, 3), (4, 5)])
        good = size_under_order(m, f, [0, 1, 2, 3, 4, 5])
        bad = size_under_order(m, f, [0, 2, 4, 1, 3, 5])
        assert bad > good

    def test_order_must_cover_support(self):
        m = DDManager(3)
        f = m.bdd_and(m.var(0), m.var(2))
        with pytest.raises(VariableOrderError):
            transfer(m, f, [0, 1])

    def test_duplicate_order_rejected(self):
        m = DDManager(3)
        f = m.var(0)
        with pytest.raises(DDError):
            transfer(m, f, [0, 0])

    def test_terminal_transfer(self):
        m = DDManager(2)
        target, g = transfer(m, m.terminal(4.5), [])
        assert target.value(g) == 4.5

    def test_names_carried_over(self):
        m = DDManager(3, ["a", "b", "c"])
        f = m.bdd_and(m.var(0), m.var(2))
        target, _ = transfer(m, f, [2, 0])
        assert target.var_names == ["c", "a"]


class TestSearches:
    def build_bad_order_function(self):
        """Equality over 3 word pairs declared in blocked order, so the
        identity order is bad and the searches have room to improve."""
        m = DDManager(6, [f"v{i}" for i in range(6)])
        f = interleaved_equality(m, [(0, 3), (1, 4), (2, 5)])
        return m, f

    def test_random_search_never_regresses(self):
        m, f = self.build_bad_order_function()
        baseline = size_under_order(m, f, sorted(m.support(f)))
        _, best = random_order_search(m, f, iterations=30, seed=4)
        assert best <= baseline

    def test_sift_search_improves_blocked_equality(self):
        m, f = self.build_bad_order_function()
        baseline = size_under_order(m, f, sorted(m.support(f)))
        order, best = sift_order_search(m, f, passes=6)
        assert best < baseline
        # The found order must actually deliver the claimed size.
        assert size_under_order(m, f, order) == best

    def test_search_on_constant(self):
        m = DDManager(2)
        order, size = random_order_search(m, m.terminal(1.5), iterations=3)
        assert order == [] and size == 1

    def test_single_variable(self):
        m = DDManager(2)
        order, size = sift_order_search(m, m.var(1))
        assert order == [1]
        assert size == 3
