"""Replay the fuzz corpus through ModelStore + PowerQueryServer.

Every shrunk corpus netlist goes through the full serving path — built
via the content-addressed store, served over TCP, queried pair by pair —
and the answers must match a direct :func:`build_add_model` evaluation
bit for bit.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.models import build_add_model
from repro.serve import ModelStore, PowerQueryClient, ServerConfig, start_in_thread
from repro.testing import iter_corpus

CORPUS_DIR = Path(__file__).parent / "corpus"

CASES = sorted(iter_corpus(CORPUS_DIR), key=lambda pair: pair[0].name)
assert CASES, "fuzz corpus is empty — serving replay has nothing to cover"


@pytest.fixture(scope="module")
def corpus_service(tmp_path_factory):
    """All corpus models, store-built once, served under their file stems."""
    store = ModelStore(tmp_path_factory.mktemp("corpus-store"))
    models = {
        path.stem: store.get_or_build(case.netlist, max_nodes=case.max_nodes)
        for path, case in CASES
    }
    handle = start_in_thread(models, ServerConfig(max_batch=32, max_wait_ms=0.5))
    yield store, handle
    handle.stop()


@pytest.mark.parametrize(
    "path,case", CASES, ids=[path.stem for path, _ in CASES]
)
def test_served_matches_direct_model(path, case, corpus_service):
    store, handle = corpus_service
    direct = build_add_model(case.netlist, max_nodes=case.max_nodes)
    expected = direct.pair_capacitances(case.initial, case.final)
    with PowerQueryClient(handle.host, handle.port) as client:
        served = client.evaluate_pairs(
            path.stem, list(zip(case.initial, case.final))
        )
    np.testing.assert_allclose(served, expected)


@pytest.mark.parametrize(
    "path,case", CASES, ids=[path.stem for path, _ in CASES]
)
def test_store_round_trip_preserves_case_model(path, case, corpus_service):
    """Reloading from disk (fresh store on the same dir) keeps the answers."""
    store, _ = corpus_service
    reloaded = ModelStore(store.root).get_or_build(
        case.netlist, max_nodes=case.max_nodes
    )
    direct = build_add_model(case.netlist, max_nodes=case.max_nodes)
    np.testing.assert_allclose(
        reloaded.pair_capacitances(case.initial, case.final),
        direct.pair_capacitances(case.initial, case.final),
    )


def test_corpus_store_holds_one_entry_per_distinct_netlist(corpus_service):
    store, _ = corpus_service
    distinct = {case.netlist.content_hash() for _, case in CASES}
    # Keys also involve max_nodes, so the store may hold more entries
    # than distinct netlists but never fewer.
    assert len(store.ls()) >= len(distinct)
