"""PowerQueryServer: protocol, micro-batching, timeouts, shutdown."""

from __future__ import annotations

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.models import build_add_model
from repro.netlist import NetlistBuilder
from repro.obs import get_metrics
from repro.serve import (
    PowerQueryClient,
    ProtocolError,
    ResponseError,
    ServerConfig,
    generate_load,
    start_in_thread,
)
from repro.serve import protocol
from repro.sim import uniform_pairs


def make_model(name: str = "quad"):
    builder = NetlistBuilder(name)
    a, b, c, d = (builder.input(ch) for ch in "abcd")
    builder.netlist.add_output(builder.or2(builder.and2(a, b), builder.xor2(c, d)))
    netlist = builder.build()
    return netlist, build_add_model(netlist, max_nodes=200)


@pytest.fixture(scope="module")
def served():
    """One shared server + model for the read-only protocol tests."""
    netlist, model = make_model()
    handle = start_in_thread(
        {"quad": model}, ServerConfig(max_batch=64, max_wait_ms=1.0)
    )
    yield handle, netlist, model
    handle.stop()


def bits(row) -> str:
    return "".join("1" if b else "0" for b in row)


class TestProtocolUnit:
    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.decode_request(b"[1, 2]")

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="unparseable"):
            protocol.decode_request(b"{nope")

    def test_decode_requires_op(self):
        with pytest.raises(ProtocolError, match="'op'"):
            protocol.decode_request(b'{"id": 1}')

    def test_parse_transitions_single(self):
        initial, final = protocol.parse_transitions(
            {"initial": "0101", "final": "1010"}, 4
        )
        assert initial.shape == (1, 4)
        assert list(initial[0]) == [False, True, False, True]
        assert list(final[0]) == [True, False, True, False]

    def test_parse_transitions_wrong_width(self):
        with pytest.raises(ProtocolError, match="4-character"):
            protocol.parse_transitions({"initial": "01", "final": "1010"}, 4)

    def test_parse_transitions_both_spellings_rejected(self):
        with pytest.raises(ProtocolError, match="not both"):
            protocol.parse_transitions(
                {"initial": "0101", "final": "1010", "pairs": []}, 4
            )

    def test_parse_transitions_empty_pairs_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            protocol.parse_transitions({"pairs": []}, 4)

    def test_read_frames(self):
        frames, rest = protocol.read_frames(b"one\ntwo\nthr")
        assert frames == [b"one", b"two"]
        assert rest == b"thr"

    def test_unwrap_response_raises_typed_error(self):
        with pytest.raises(ResponseError, match="unknown_model"):
            protocol.unwrap_response(
                protocol.error_response(1, "unknown_model", "nope")
            )


class TestEvaluate:
    def test_single_matches_direct_model(self, served):
        handle, netlist, model = served
        initial, final = uniform_pairs(netlist.num_inputs, 20, seed=11)
        with PowerQueryClient(handle.host, handle.port) as client:
            for k in range(20):
                served_value = client.evaluate("quad", initial[k], final[k])
                direct = model.switching_capacitance(
                    initial[k].astype(int), final[k].astype(int)
                )
                assert served_value == pytest.approx(direct)

    def test_pairs_batch_matches_direct_model(self, served):
        handle, netlist, model = served
        initial, final = uniform_pairs(netlist.num_inputs, 50, seed=12)
        with PowerQueryClient(handle.host, handle.port) as client:
            values = client.evaluate_pairs(
                "quad", list(zip(initial, final))
            )
        np.testing.assert_allclose(
            values, model.pair_capacitances(initial, final)
        )

    def test_models_and_ping(self, served):
        handle, netlist, model = served
        with PowerQueryClient(handle.host, handle.port) as client:
            assert client.ping()
            (summary,) = client.models()
        assert summary["name"] == "quad"
        assert summary["inputs"] == netlist.num_inputs
        assert summary["source_netlist_sha256"] == netlist.content_hash()

    def test_micro_batching_merges_concurrent_requests(self, served):
        handle, netlist, model = served
        registry = get_metrics()
        before = registry.snapshot()
        initial, final = uniform_pairs(netlist.num_inputs, 8, seed=13)
        report = generate_load(
            handle.host,
            handle.port,
            "quad",
            list(zip(initial, final)),
            clients=16,
            requests_per_client=25,
        )
        assert report.errors == 0
        assert report.requests == 400
        delta = registry.diff(before, registry.snapshot())
        requests = delta["serve.eval.requests"]["value"]
        batches = delta["serve.eval.batches"]["value"]
        assert requests == 400
        # Micro-batching must have merged concurrent requests: far fewer
        # kernel calls than requests.
        assert batches < requests / 2

    def test_stats_op_reports_serving_metrics(self, served):
        handle, _, _ = served
        with PowerQueryClient(handle.host, handle.port) as client:
            client.evaluate("quad", "0000", "1111")
            stats = client.stats()
        assert "quad" in stats["models"]
        assert stats["config"]["batching"] is True
        assert stats["metrics"]["serve.eval.requests"]["value"] >= 1
        assert stats["metrics"]["serve.eval.batches"]["value"] >= 1


class TestErrors:
    def test_unknown_model(self, served):
        handle, _, _ = served
        with PowerQueryClient(handle.host, handle.port) as client:
            with pytest.raises(ResponseError, match="unknown_model"):
                client.evaluate("nonesuch", "0000", "1111")

    def test_bad_bits(self, served):
        handle, _, _ = served
        with PowerQueryClient(handle.host, handle.port) as client:
            with pytest.raises(ResponseError, match="bad_request"):
                client.evaluate("quad", "00", "11")

    def test_unknown_op(self, served):
        handle, _, _ = served
        with PowerQueryClient(handle.host, handle.port) as client:
            with pytest.raises(ResponseError, match="bad_request"):
                client.call({"op": "frobnicate"})

    def test_malformed_line_answered_not_fatal(self, served):
        handle, _, _ = served
        with socket.create_connection((handle.host, handle.port), timeout=10) as raw:
            stream = raw.makefile("rwb")
            stream.write(b"this is not json\n")
            stream.flush()
            response = json.loads(stream.readline())
            assert response["ok"] is False
            assert response["id"] is None
            assert response["error"]["type"] == "protocol"
            # The connection survived the bad line.
            stream.write(protocol.encode({"id": 7, "op": "ping"}))
            stream.flush()
            assert json.loads(stream.readline())["result"] == "pong"

    def test_error_counter_increments(self, served):
        handle, _, _ = served
        registry = get_metrics()
        before = registry.snapshot()
        with PowerQueryClient(handle.host, handle.port) as client:
            with pytest.raises(ResponseError):
                client.evaluate("nonesuch", "0000", "1111")
        delta = registry.diff(before, registry.snapshot())
        assert delta["serve.errors"]["value"] >= 1


class TestTimeout:
    def test_parked_request_expires_with_timeout_error(self):
        _, model = make_model("slowmac")
        # A queue that effectively never fills, a flush timer far past
        # the request deadline: the flush must answer with a timeout.
        handle = start_in_thread(
            {"slowmac": model},
            ServerConfig(
                max_batch=10_000,
                max_wait_ms=150.0,
                request_timeout_s=0.01,
            ),
        )
        try:
            with PowerQueryClient(handle.host, handle.port) as client:
                with pytest.raises(ResponseError, match="timeout"):
                    client.evaluate("slowmac", "0000", "1111")
        finally:
            handle.stop()


class TestLifecycle:
    def test_unbatched_mode_still_correct(self):
        netlist, model = make_model("inline")
        handle = start_in_thread(
            {"inline": model}, ServerConfig(batching=False)
        )
        try:
            initial, final = uniform_pairs(netlist.num_inputs, 10, seed=14)
            with PowerQueryClient(handle.host, handle.port) as client:
                values = [
                    client.evaluate("inline", initial[k], final[k])
                    for k in range(10)
                ]
            np.testing.assert_allclose(
                values, model.pair_capacitances(initial, final)
            )
        finally:
            handle.stop()

    def test_shutdown_op_stops_server(self):
        _, model = make_model("stopme")
        handle = start_in_thread({"stopme": model}, ServerConfig())
        with PowerQueryClient(handle.host, handle.port) as client:
            client.shutdown()
        handle.thread.join(10.0)
        assert not handle.thread.is_alive()
        with pytest.raises(OSError):
            socket.create_connection((handle.host, handle.port), timeout=0.5)

    def test_ephemeral_ports_are_distinct(self):
        _, model = make_model("porty")
        first = start_in_thread({"porty": model}, ServerConfig())
        second = start_in_thread({"porty": model}, ServerConfig())
        try:
            assert first.port != second.port
        finally:
            first.stop()
            second.stop()


class TestStopFlushesInFlight:
    def test_stop_racing_pending_flush_answers_everything(self):
        """Replies parked behind a micro-batch must survive ``stop()``.

        Regression test: ``stop()`` used to close writers immediately
        after flushing the batchers, so replies written by that flush
        could still be sitting in transport buffers when the event loop
        exited — in-flight batched requests were silently dropped.  The
        fix drains every writer between flush and close.
        """
        _, model = make_model("flushme")
        # A batch window that never fills and never times out on its
        # own: everything sent below stays parked until stop() flushes.
        handle = start_in_thread(
            {"flushme": model},
            ServerConfig(max_batch=1000, max_wait_ms=60_000.0),
        )
        pipelined = 8
        raw = socket.create_connection((handle.host, handle.port), timeout=10.0)
        try:
            stream = raw.makefile("rwb")
            for k in range(pipelined):
                stream.write(
                    protocol.encode(
                        {
                            "id": k,
                            "op": "evaluate",
                            "model": "flushme",
                            "initial": "0000",
                            "final": "1111",
                        }
                    )
                )
            stream.flush()
            with PowerQueryClient(handle.host, handle.port) as probe:
                deadline = time.time() + 10.0
                while time.time() < deadline:
                    if probe.healthz()["parked_requests"] >= pipelined:
                        break
                    time.sleep(0.01)
                else:
                    pytest.fail("requests never parked")
                probe.shutdown()
            replies = [
                json.loads(stream.readline().decode("utf-8"))
                for _ in range(pipelined)
            ]
        finally:
            raw.close()
        handle.thread.join(10.0)
        assert sorted(reply["id"] for reply in replies) == list(range(pipelined))
        assert all(reply["ok"] for reply in replies)
        assert all(
            reply["result"]["capacitance_fF"] > 0.0 for reply in replies
        )


class TestReload:
    def test_reload_models_swaps_set_without_restart(self):
        _, model = make_model("gen1")
        handle = start_in_thread(
            {"gen1": model}, ServerConfig(max_batch=8, max_wait_ms=0.5)
        )
        try:
            with PowerQueryClient(handle.host, handle.port) as client:
                assert client.evaluate("gen1", "0000", "1111") > 0.0
                _, replacement = make_model("gen2")
                done = threading.Event()
                handle.loop.call_soon_threadsafe(
                    lambda: (
                        handle.server.reload_models({"gen2": replacement}),
                        done.set(),
                    )
                )
                assert done.wait(10.0)
                # Same connection: the new model serves, the old is gone.
                assert client.evaluate("gen2", "0000", "1111") > 0.0
                with pytest.raises(ResponseError, match="unknown_model"):
                    client.evaluate("gen1", "0000", "1111")
        finally:
            handle.stop()

    def test_reload_rejects_empty_set(self):
        _, model = make_model("lonely")
        handle = start_in_thread({"lonely": model}, ServerConfig())
        try:
            with pytest.raises(ValueError, match="at least one model"):
                handle.server.reload_models({})
        finally:
            handle.stop()
