"""End-to-end integration tests: the paper's experimental shapes, in miniature.

These run the full pipeline (circuit -> characterize baselines -> build ADD
models -> (sp, st) sweep) on the small benchmark circuits and assert the
*qualitative* results the paper reports: ADD beats Lin beats Con on
average-power accuracy, the ADD error curve is flat in st where the
baselines blow up, and pattern-dependent bounds beat constant bounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import load_circuit
from repro.eval import SweepConfig, run_sweep
from repro.models import (
    ConstantModel,
    LinearModel,
    build_add_model,
    constant_bound_from_model,
    generate_training_data,
)

CONFIG = SweepConfig(
    sp_values=(0.5,),
    st_values=(0.1, 0.3, 0.5, 0.7, 0.9),
    sequence_length=800,
    seed=99,
)


@pytest.fixture(scope="module", params=["cm85", "decod"])
def pipeline(request):
    from repro.circuits.mcnc import SUGGESTED_MAX_NODES

    name = request.param
    netlist = load_circuit(name)
    avg_max, ub_max = SUGGESTED_MAX_NODES[name]
    training = generate_training_data(netlist, length=800, seed=1)
    models = {
        "Con": ConstantModel.characterize(netlist, training),
        "Lin": LinearModel.characterize(netlist, training),
        "ADD": build_add_model(netlist, max_nodes=avg_max),
    }
    bound = build_add_model(netlist, max_nodes=ub_max, strategy="max")
    models["ADDmax"] = bound
    models["Conmax"] = constant_bound_from_model(bound)
    result = run_sweep(netlist, models, CONFIG)
    return name, netlist, models, result


class TestAverageAccuracyOrdering:
    def test_add_beats_lin_beats_con(self, pipeline):
        _, _, _, result = pipeline
        add = result.are_average("ADD")
        lin = result.are_average("Lin")
        con = result.are_average("Con")
        assert add < lin < con
        # The paper reports roughly one order of magnitude per step; allow
        # slack but require a clear separation.
        assert add < 0.7 * lin
        assert lin < 0.9 * con

    def test_add_error_is_flat_in_st(self, pipeline):
        _, _, _, result = pipeline
        add_curve = [re for _, re in result.re_curve("ADD", sp=0.5)]
        con_curve = [re for _, re in result.re_curve("Con", sp=0.5)]
        # Fig. 7a: the ADD curve stays far below Con's worst-case blowup
        # and its spread across st is a fraction of Con's.
        assert max(add_curve) < 0.3 * max(con_curve)
        assert max(add_curve) - min(add_curve) < 0.3 * (
            max(con_curve) - min(con_curve)
        )

    def test_con_explodes_at_low_activity(self, pipeline):
        _, _, _, result = pipeline
        errors = dict(result.re_curve("Con", sp=0.5))
        assert errors[0.1] > 1.0  # >100% off-sample error, as in Fig. 7a


class TestBounds:
    def test_pattern_bound_never_violated(self, pipeline):
        _, _, _, result = pipeline
        assert result.bound_violations("ADDmax") == 0
        assert result.bound_violations("Conmax") == 0

    def test_pattern_bound_tighter_than_constant_bound(self, pipeline):
        _, _, _, result = pipeline
        assert result.are_maximum("ADDmax") <= result.are_maximum("Conmax")

    def test_constant_bound_never_below_pattern_bound_pointwise(self, pipeline):
        _, _, _, result = pipeline
        for row in result.rows:
            assert (
                row.model_maximum_fF["Conmax"]
                >= row.model_maximum_fF["ADDmax"] - 1e-9
            )


class TestModelAgreement:
    def test_exact_model_tracks_golden_everywhere(self, pipeline):
        _, netlist, _, _ = pipeline
        exact = build_add_model(netlist)
        from repro.sim import markov_sequence, sequence_switching_capacitances

        sequence = markov_sequence(netlist.num_inputs, 300, seed=123)
        golden = sequence_switching_capacitances(netlist, sequence)
        estimates = exact.sequence_capacitances(sequence)
        assert np.allclose(golden, estimates)
