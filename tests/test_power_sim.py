"""Tests for golden-model power computation (Eq. 1-4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.netlist import NetlistBuilder
from repro.sim import (
    SequencePowerReport,
    energy_fJ,
    exhaustive_max_capacitance,
    gate_load_vector,
    pair_switching_capacitances,
    sequence_switching_capacitances,
    simulate_sequence_power,
    switching_capacitance,
)


class TestFig2Example:
    """The paper's running example: rising g1 and g2 on 11 -> 00."""

    def test_transition_11_to_00(self, fig2_netlist):
        # Both inverters rise: 15 + 15 fF with the test library loads.
        assert switching_capacitance(fig2_netlist, [1, 1], [0, 0]) == 30.0

    def test_transition_00_to_11(self, fig2_netlist):
        # Only g3 (the OR) rises... it is already 0 -> 1? x1+x2: 0 -> 1 yes.
        assert switching_capacitance(fig2_netlist, [0, 0], [1, 1]) == 15.0

    def test_no_transition_no_power(self, fig2_netlist):
        assert switching_capacitance(fig2_netlist, [1, 0], [1, 0]) == 0.0

    def test_falling_edges_cost_nothing(self, fig2_netlist):
        # 00 -> 10: g1 falls (1->0), g3 rises (0->1), g2 stays.
        assert switching_capacitance(fig2_netlist, [0, 0], [1, 0]) == 15.0


class TestBatchConsistency:
    def test_pairs_match_single_calls(self, fig2_netlist, rng):
        initial = rng.random((40, 2)) < 0.5
        final = rng.random((40, 2)) < 0.5
        batch = pair_switching_capacitances(fig2_netlist, initial, final)
        for k in range(40):
            single = switching_capacitance(
                fig2_netlist, initial[k].tolist(), final[k].tolist()
            )
            assert batch[k] == pytest.approx(single)

    def test_sequence_matches_pairwise(self, xor_chain_netlist, rng):
        sequence = rng.random((30, 4)) < 0.5
        via_sequence = sequence_switching_capacitances(
            xor_chain_netlist, sequence
        )
        via_pairs = pair_switching_capacitances(
            xor_chain_netlist, sequence[:-1], sequence[1:]
        )
        assert np.allclose(via_sequence, via_pairs)

    def test_shape_validation(self, fig2_netlist):
        with pytest.raises(SimulationError):
            pair_switching_capacitances(
                fig2_netlist,
                np.zeros((3, 2), dtype=bool),
                np.zeros((4, 2), dtype=bool),
            )
        with pytest.raises(SimulationError):
            sequence_switching_capacitances(
                fig2_netlist, np.zeros((1, 2), dtype=bool)
            )


class TestEnergyAndReports:
    def test_energy_units(self):
        # 10 fF at 2 V -> 40 fJ.
        assert energy_fJ(10.0, vdd=2.0) == 40.0

    def test_report_fields(self, fig2_netlist):
        sequence = np.array([[0, 0], [1, 1], [0, 0], [1, 0]], dtype=bool)
        report = simulate_sequence_power(
            fig2_netlist, sequence, vdd=1.0, cycle_time_ns=1.0
        )
        capacitances = sequence_switching_capacitances(fig2_netlist, sequence)
        assert report.num_transitions == 3
        assert report.average_capacitance_fF == pytest.approx(capacitances.mean())
        assert report.peak_capacitance_fF == pytest.approx(capacitances.max())
        assert report.total_energy_fJ == pytest.approx(capacitances.sum())
        assert report.average_power_uW == pytest.approx(capacitances.mean())

    def test_empty_report_rejected(self):
        with pytest.raises(SimulationError):
            SequencePowerReport.from_capacitances(np.array([]))


class TestExhaustiveWorstCase:
    def test_fig2_worst_case(self, fig2_netlist):
        best, initial, final = exhaustive_max_capacitance(fig2_netlist)
        assert best == 30.0
        assert switching_capacitance(
            fig2_netlist, initial.tolist(), final.tolist()
        ) == pytest.approx(best)

    def test_width_guard(self):
        builder = NetlistBuilder("wide")
        bits = builder.bus("x", 9)
        builder.output("y", builder.and_tree(bits))
        with pytest.raises(SimulationError):
            exhaustive_max_capacitance(builder.build())


class TestLoadVector:
    def test_matches_load_dict(self, fig2_netlist):
        loads = fig2_netlist.load_capacitances()
        vector = gate_load_vector(fig2_netlist)
        order = fig2_netlist.topological_order()
        for k, gate in enumerate(order):
            assert vector[k] == loads[gate.name]
