"""Sharded serving tier: hash ring properties, cluster ops, chaos failover."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import build_add_model
from repro.netlist import NetlistBuilder
from repro.obs import get_metrics
from repro.serve import (
    Cluster,
    ClusterClient,
    ClusterConfig,
    HashRing,
    ServerConfig,
    generate_cluster_load,
    placement_key,
)
from repro.testing import faults
from repro.testing.faults import FaultSpec


def make_model(name: str = "quad"):
    builder = NetlistBuilder(name)
    a, b, c, d = (builder.input(ch) for ch in "abcd")
    builder.netlist.add_output(
        builder.or2(builder.and2(a, b), builder.xor2(c, d))
    )
    return build_add_model(builder.build(), max_nodes=200)


# ---------------------------------------------------------------------------
# HashRing properties
# ---------------------------------------------------------------------------
shard_names = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=8
    ),
    min_size=1,
    max_size=8,
    unique=True,
)
keys = st.lists(
    st.text(min_size=0, max_size=32), min_size=1, max_size=32, unique=True
)


class TestHashRingProperties:
    @given(shards=shard_names, key=st.text(max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_insertion_order_is_irrelevant(self, shards, key):
        forward = HashRing(shards, vnodes=16)
        backward = HashRing(list(reversed(shards)), vnodes=16)
        assert forward.lookup(key, 3) == backward.lookup(key, 3)

    @given(shards=shard_names, ks=keys)
    @settings(max_examples=50, deadline=None)
    def test_adding_a_shard_only_steals_keys_for_itself(self, shards, ks):
        ring = HashRing(shards, vnodes=16)
        before = {key: ring.lookup(key)[0] for key in ks}
        newcomer = "zz-new-shard"
        ring.add(newcomer)
        for key in ks:
            after = ring.lookup(key)[0]
            # The only allowed movement is onto the new shard; every key
            # that does not land there keeps its previous owner.
            assert after == before[key] or after == newcomer

    @given(shards=shard_names, ks=keys)
    @settings(max_examples=50, deadline=None)
    def test_removing_a_shard_only_moves_its_own_keys(self, shards, ks):
        ring = HashRing(shards, vnodes=16)
        before = {key: ring.lookup(key)[0] for key in ks}
        victim = ring.shards[0]
        ring.remove(victim)
        if not len(ring):
            return  # single-shard ring: nothing left to check
        for key in ks:
            if before[key] != victim:
                assert ring.lookup(key)[0] == before[key]

    @given(shards=shard_names, key=st.text(max_size=32), count=st.integers(1, 10))
    @settings(max_examples=50, deadline=None)
    def test_replication_factor_honoured(self, shards, key, count):
        ring = HashRing(shards, vnodes=16)
        owners = ring.lookup(key, count)
        assert len(owners) == min(count, len(shards))
        assert len(set(owners)) == len(owners)
        assert all(owner in shards for owner in owners)

    @given(shards=shard_names, key=st.text(max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_replica_sets_not_touching_removed_shard_are_stable(
        self, shards, key
    ):
        ring = HashRing(shards, vnodes=16)
        before = ring.lookup(key, 2)
        victim = ring.shards[-1]
        if victim in before:
            return
        ring.remove(victim)
        assert ring.lookup(key, 2) == before

    def test_movement_fraction_is_about_one_over_n(self):
        """Adding the 9th shard to 8 should move roughly 1/9 of the keys."""
        shards = [f"s{i}" for i in range(8)]
        ring = HashRing(shards, vnodes=64)
        ks = [f"model-{i}" for i in range(2000)]
        before = {key: ring.lookup(key)[0] for key in ks}
        ring.add("s8")
        moved = sum(1 for key in ks if ring.lookup(key)[0] != before[key])
        fraction = moved / len(ks)
        # Expected 1/9 ≈ 0.111; generous envelope for vnode variance.
        assert 0.03 < fraction < 0.30

    def test_deterministic_across_processes(self):
        """The ring must not depend on the interpreter's hash seed."""
        program = textwrap.dedent(
            """
            import json, sys
            from repro.serve import HashRing
            ring = HashRing([f"s{i}" for i in range(5)], vnodes=32)
            keys = [f"model-{i}" for i in range(50)]
            print(json.dumps({k: ring.lookup(k, 2) for k in keys}))
            """
        )
        import os
        from pathlib import Path

        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        outputs = []
        for seed in ("0", "1", "random"):
            result = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True,
                text=True,
                check=True,
                env={**os.environ, "PYTHONPATH": src, "PYTHONHASHSEED": seed},
            )
            outputs.append(json.loads(result.stdout))
        assert outputs[0] == outputs[1] == outputs[2]

    def test_duplicate_and_missing_shards_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(Exception, match="already"):
            ring.add("a")
        with pytest.raises(Exception, match="not on the ring"):
            ring.remove("b")

    def test_empty_ring_lookup(self):
        assert HashRing().lookup("anything", 3) == []


# ---------------------------------------------------------------------------
# Cluster integration (shared 2-shard deployment)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def cluster():
    deployment = Cluster(
        {"quad": make_model()},
        ClusterConfig(
            workers=2,
            replication=2,
            monitor_interval_s=0.02,
            server=ServerConfig(max_batch=16, max_wait_ms=0.5),
        ),
    ).start()
    yield deployment
    deployment.stop()


class TestClusterIntegration:
    def test_ring_payload_covers_all_models_and_shards(self, cluster):
        with ClusterClient(cluster.host, cluster.router_port) as client:
            ring = client.ring()
        assert sorted(ring["shards"]) == ["s0", "s1"]
        assert sorted(ring["placement"]["quad"]) == ["s0", "s1"]
        assert ring["version"] >= 1

    def test_evaluate_round_trip(self, cluster):
        with ClusterClient(cluster.host, cluster.router_port) as client:
            assert client.evaluate("quad", "0000", "1111") > 0.0
            values = client.evaluate_pairs(
                "quad", [("0000", "1111"), ("0000", "0000")]
            )
        assert values[0] > 0.0 and values[1] == 0.0

    def test_cluster_stats_aggregates_shards(self, cluster):
        with ClusterClient(cluster.host, cluster.router_port) as client:
            before = (
                client.cluster_stats()["metrics"]
                .get("serve.requests", {})
                .get("value", 0)
            )
            for _ in range(4):
                client.evaluate("quad", "0000", "1111")
            stats = client.cluster_stats()
        merged = stats["metrics"]["serve.requests"]["value"]
        assert merged >= before + 4
        per_shard = sum(
            info.get("requests", 0) for info in stats["shards"].values()
        )
        assert merged == per_shard
        assert stats["shards"]["s0"]["reachable"]
        assert stats["shards"]["s1"]["reachable"]

    def test_healthz_reports_membership(self, cluster):
        with ClusterClient(cluster.host, cluster.router_port) as client:
            health = client.healthz()
        assert health["status"] == "ok"
        assert all(info["alive"] for info in health["shards"].values())

    def test_reload_swaps_models_without_restart(self, cluster):
        version = cluster.ring_version
        cluster.reload_models(
            {"quad": make_model(), "quad2": make_model("quad2")}
        )
        with ClusterClient(cluster.host, cluster.router_port) as client:
            assert client.evaluate("quad2", "0000", "1111") > 0.0
            ring = client.ring()
        assert "quad2" in ring["placement"]
        assert ring["version"] > version

    def test_generate_cluster_load_clean(self, cluster):
        report = generate_cluster_load(
            cluster.host,
            cluster.router_port,
            "quad",
            [("0000", "1111"), ("0011", "1100")],
            clients=4,
            requests_per_client=10,
        )
        assert report.errors == 0
        assert report.requests == 40
        assert report.requests_per_sec > 0

    def test_unknown_model_is_not_retried_forever(self, cluster):
        from repro.serve import ResponseError
        from repro.errors import ServeConnectionError

        with ClusterClient(cluster.host, cluster.router_port) as client:
            with pytest.raises((ResponseError, ServeConnectionError)):
                client.evaluate("no-such-model", "0000", "1111")


class TestRouterSlowlog:
    def test_router_merges_shard_slowlogs(self):
        # threshold 0 → every answered request lands in its shard's log,
        # so the router's merged view must carry entries from the data
        # plane, tagged with the shard that recorded them.
        deployment = Cluster(
            {"quad": make_model()},
            ClusterConfig(
                workers=2,
                replication=2,
                monitor_interval_s=0.05,
                server=ServerConfig(
                    max_batch=16,
                    max_wait_ms=0.5,
                    slowlog_threshold_ms=0.0,
                ),
            ),
        ).start()
        try:
            with ClusterClient(
                deployment.host, deployment.router_port
            ) as client:
                for _ in range(6):
                    assert client.evaluate("quad", "0000", "1111") > 0.0
                report = client.slowlog()
        finally:
            deployment.stop()
        assert report["threshold_ms"] == 0.0
        shards = report["shards"]
        assert sorted(shards) == ["s0", "s1"]
        assert all(info["reachable"] for info in shards.values())
        entries = report["entries"]
        assert len(entries) >= 6
        assert {entry["shard"] for entry in entries} <= {"s0", "s1"}
        assert sum(info["entries"] for info in shards.values()) == len(
            entries
        )
        stamps = [entry["ts"] for entry in entries]
        assert stamps == sorted(stamps)


class TestClusterLifecycle:
    def test_placement_key_prefers_content_hash(self):
        model = make_model()
        assert model.source_hash
        assert placement_key("any-name", model) == model.source_hash
        model.source_hash = None
        assert placement_key("any-name", model) == "any-name"

    def test_config_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ClusterConfig(workers=0)
        with pytest.raises(ValueError, match="replication"):
            ClusterConfig(replication=0)
        with pytest.raises(ValueError, match="monitor_interval"):
            ClusterConfig(monitor_interval_s=0.0)

    def test_empty_model_set_rejected(self):
        with pytest.raises(ValueError, match="at least one model"):
            Cluster({})

    def test_drain_then_shutdown_is_clean(self):
        deployment = Cluster(
            {"quad": make_model()},
            ClusterConfig(
                workers=2,
                replication=2,
                monitor_interval_s=0.02,
                server=ServerConfig(max_batch=8, max_wait_ms=0.5),
            ),
        ).start()
        try:
            with ClusterClient(
                deployment.host, deployment.router_port
            ) as client:
                deployment.drain_shard("s0")
                # The drained shard left the ring; service continues.
                assert client.evaluate("quad", "0000", "1111") > 0.0
                health = client.healthz()
            assert not health["shards"]["s0"]["routed"]
            assert not health["shards"]["s0"]["alive"]
            assert health["shards"]["s1"]["alive"]
        finally:
            deployment.stop()
        assert all(
            not handle.alive() for handle in deployment._shards.values()
        )


# ---------------------------------------------------------------------------
# Chaos: kill a shard mid-load, demand zero client-visible errors
# ---------------------------------------------------------------------------
@pytest.mark.chaos
class TestClusterChaos:
    def test_shard_killed_mid_load_is_invisible_to_clients(self):
        model = make_model()
        config = ClusterConfig(
            workers=3,
            replication=2,
            monitor_interval_s=0.02,
            server=ServerConfig(max_batch=16, max_wait_ms=0.5),
        )
        # Placement is deterministic, so the fault can be aimed exactly:
        # max_token=0 lets only shard 0 die, and naming the model so that
        # shard 0 is one of its replicas guarantees it sees enough traffic
        # to trip the trigger.  (max_token is a <= bound; targeting any
        # higher index could also fell lower-indexed shards that pick up
        # fallback traffic after the first death.)
        ring = HashRing(
            [f"s{i}" for i in range(config.workers)], vnodes=config.vnodes
        )
        model.source_hash = None  # place by serving name
        name = next(
            candidate
            for candidate in (f"quad-{i}" for i in range(100))
            if "s0" in ring.lookup(candidate, config.replication)
        )
        victim = 0
        metrics = get_metrics()
        deaths_before = metrics.counter("serve.cluster.shard_deaths").value
        failovers_before = metrics.counter("serve.cluster.failovers").value
        with faults.inject(
            [
                FaultSpec(
                    site="serve.shard.down",
                    after=5,
                    times=1,
                    max_token=victim,
                )
            ]
        ):
            with Cluster({name: model}, config).start() as deployment:
                report = generate_cluster_load(
                    deployment.host,
                    deployment.router_port,
                    name,
                    [("0000", "1111"), ("0011", "1100")],
                    clients=12,
                    requests_per_client=30,
                )
                with ClusterClient(
                    deployment.host, deployment.router_port
                ) as client:
                    health = client.healthz()
                    stats = client.cluster_stats()

        assert report.errors == 0
        assert report.requests == 360
        # The kill must be visible in the recovery counters...
        assert report.failovers + report.reconnects > 0
        assert report.ring_refreshes >= 2  # initial fetch + post-kill refresh
        # ...and in the router's own accounting.
        router = {
            name: state["value"]
            for name, state in stats["router_metrics"].items()
        }
        assert router["serve.cluster.shard_deaths"] == deaths_before + 1
        assert router["serve.cluster.failovers"] >= failovers_before + 1
        assert not health["shards"][f"s{victim}"]["alive"]
        assert health["status"] == "ok"  # survivors keep the ring serving

    def test_stale_ring_fault_cannot_strand_clients(self):
        model = make_model()
        config = ClusterConfig(
            workers=3,
            replication=2,
            monitor_interval_s=0.02,
            server=ServerConfig(max_batch=16, max_wait_ms=0.5),
        )
        with Cluster({"quad": model}, config).start() as deployment:
            deployment.kill_shard("s1")
            deadline_passed = False
            import time as _time

            for _ in range(100):
                if deployment.ring_version >= 2:
                    deadline_passed = True
                    break
                _time.sleep(0.05)
            assert deadline_passed
            # Every ring request now serves the pre-kill snapshot (which
            # still lists the dead shard); clients must still get answers
            # by falling over to survivors.
            with faults.inject(
                [FaultSpec(site="serve.router.stale_ring", probability=1.0)]
            ):
                report = generate_cluster_load(
                    deployment.host,
                    deployment.router_port,
                    "quad",
                    [("0000", "1111")],
                    clients=4,
                    requests_per_client=5,
                )
            assert report.errors == 0


# ---------------------------------------------------------------------------
# Trace propagation under fault injection
# ---------------------------------------------------------------------------
class TestTracePropagationUnderFaults:
    def test_connection_reset_retry_keeps_trace_id_with_fresh_span(self):
        """A retried attempt is a new span on the *same* trace.

        ``serve.connection.reset`` aborts the first connection each shard
        accepts; the load generator reconnects and retries.  Every
        attempt span — first try and retry alike — must carry the load
        run's trace id, and no two attempts may reuse a span id, or the
        merged timeline would draw the retry on top of the failure it
        recovered from.
        """
        from repro.obs import disable_tracing, enable_tracing

        config = ClusterConfig(
            workers=2,
            replication=2,
            monitor_interval_s=0.02,
            server=ServerConfig(max_batch=16, max_wait_ms=0.5),
        )
        tracer = enable_tracing()
        try:
            with faults.inject(
                [FaultSpec(site="serve.connection.reset", times=1)]
            ):
                with Cluster(
                    {"quad": make_model()}, config
                ).start() as deployment:
                    report = generate_cluster_load(
                        deployment.host,
                        deployment.router_port,
                        "quad",
                        [("0000", "1111"), ("0011", "1100")],
                        clients=4,
                        requests_per_client=5,
                    )
        finally:
            disable_tracing()

        assert report.errors == 0
        assert report.reconnects + report.failovers > 0
        assert report.trace_id is not None

        attempts = [
            span
            for span in tracer.spans()
            if span.name == "serve.client.request"
        ]
        assert attempts
        # Every attempt belongs to the one trace of this load run.
        assert {span.trace_id for span in attempts} == {report.trace_id}
        # Retried attempts were traced: one attempt>=2 span per reconnect.
        retries = [
            span for span in attempts if span.attrs["attempt"] >= 2
        ]
        assert retries, "fault injected but no request was retried"
        # Fresh span and parent (wire hop) ids per attempt — a retry is
        # a new hop, never a re-send of the failed one.
        span_ids = [span.span_id for span in attempts]
        assert len(set(span_ids)) == len(span_ids)
        parent_ids = [span.parent_id for span in attempts]
        assert len(set(parent_ids)) == len(parent_ids)
        assert None not in parent_ids

    @pytest.mark.chaos
    def test_shard_killed_mid_trace_leaves_well_formed_partial_trace(
        self, tmp_path
    ):
        """SIGKILLed shards export nothing; the merge must still stand.

        The dead worker never reaches its graceful-stop trace dump, so
        the merge covers the parent (client + router spans) and the
        surviving shards only — a *partial* trace.  It must still be
        well-formed: one trace id, rebased non-negative timestamps, and
        the client -> router -> shard chain present from survivors.
        """
        from repro.obs import disable_tracing, enable_tracing, merge_chrome_traces

        model = make_model()
        config = ClusterConfig(
            workers=3,
            replication=2,
            monitor_interval_s=0.02,
            server=ServerConfig(
                max_batch=16, max_wait_ms=0.5, trace_dir=str(tmp_path)
            ),
        )
        # Aim the kill at shard 0 and pick a serving name placed there,
        # exactly as in test_shard_killed_mid_load_is_invisible_to_clients.
        ring = HashRing(
            [f"s{i}" for i in range(config.workers)], vnodes=config.vnodes
        )
        model.source_hash = None
        name = next(
            candidate
            for candidate in (f"quad-{i}" for i in range(100))
            if "s0" in ring.lookup(candidate, config.replication)
        )
        enable_tracing()
        try:
            with faults.inject(
                [
                    FaultSpec(
                        site="serve.shard.down", after=5, times=1, max_token=0
                    )
                ]
            ):
                with Cluster({name: model}, config).start() as deployment:
                    report = generate_cluster_load(
                        deployment.host,
                        deployment.router_port,
                        name,
                        [("0000", "1111"), ("0011", "1100")],
                        clients=8,
                        requests_per_client=20,
                    )
        finally:
            disable_tracing()

        assert report.errors == 0
        assert report.trace_id is not None

        # The killed worker wrote no file: router + two survivors only.
        files = sorted(tmp_path.glob("trace-*.json"))
        assert len(files) == config.workers  # 1 router + (workers - 1)
        payloads = [json.loads(path.read_text()) for path in files]
        merged = merge_chrome_traces(payloads, trace_id=report.trace_id)

        events = merged["traceEvents"]
        assert events
        timestamps = [event["ts"] for event in events]
        assert min(timestamps) >= 0.0
        assert timestamps == sorted(timestamps)
        names = {event["name"] for event in events}
        assert {
            "serve.client.request",
            "router.request",
            "serve.request",
        } <= names
        # Parent (client + router) and at least one surviving shard.
        assert len({event["pid"] for event in events}) >= 2
        assert merged["metadata"]["trace_id"] == report.trace_id
