"""Tests for collapse-score weighting: uniform and Markov node masses."""

from __future__ import annotations

import itertools

import pytest

from repro.dd import DDManager, TransitionSpace
from repro.dd.approx import node_weights
from repro.errors import ModelError
from repro.models.addmodel import markov_node_weights, mixture_weight_fn


class TestUniformNodeWeights:
    def test_root_has_full_mass(self):
        m = DDManager(3)
        f = m.bdd_and(m.var(0), m.var(1))
        weights = node_weights(m, f)
        assert weights[f] == 1.0

    def test_chain_halves_mass(self):
        m = DDManager(3)
        f = m.bdd_and(m.bdd_and(m.var(0), m.var(1)), m.var(2))
        weights = node_weights(m, f)
        # AND chain: each level reached only through the 1-branch.
        by_level = sorted(weights.items(), key=lambda kv: m.top_var(kv[0]))
        masses = [w for _, w in by_level]
        assert masses == [1.0, 0.5, 0.25]

    def test_shared_node_accumulates(self):
        m = DDManager(3)
        # f = x0 XOR x1: the two var-1 nodes each get 1/2... but XOR's two
        # children are distinct nodes.  Use f = x1 (shared under both
        # branches of a redundant test is impossible in a reduced DD), so
        # instead check a diamond: ite(x0, g, h) where g and h share a
        # var-2 node.
        g = m.bdd_and(m.var(1), m.var(2))
        h = m.bdd_or(m.var(1), m.var(2))
        f = m.ite(m.var(0), g, h)
        weights = node_weights(m, f)
        shared = [
            n for n in weights if m.top_var(n) == 2
        ]
        # Each var-2 node is reached through one branch of g and one of h.
        assert all(w == pytest.approx(0.5) for n, w in weights.items() if n in shared)

    def test_masses_are_probabilities(self):
        m = DDManager(4)
        f = m.add_plus(
            m.add_const_times(m.bdd_and(m.var(0), m.var(2)), 3.0),
            m.add_const_times(m.bdd_or(m.var(1), m.var(3)), 2.0),
        )
        weights = node_weights(m, f)
        assert all(0.0 < w <= 1.0 for w in weights.values())


class TestMarkovNodeWeights:
    def build_space_model(self):
        space = TransitionSpace(["a", "b"])
        m = space.manager
        # C = 10 if (a toggles 0->1) else 0 — tests xi_a then xf_a.
        rising = m.bdd_and(m.nvar(space.xi(0)), m.var(space.xf(0)))
        return space, m, m.add_const_times(rising, 10.0)

    def test_uniform_statistics_match_node_weights(self):
        space, m, f = self.build_space_model()
        uniform = node_weights(m, f)
        markov = markov_node_weights(m, f, space, sp=0.5, st=0.5)
        for node, weight in uniform.items():
            assert markov[node] == pytest.approx(weight)

    def test_low_activity_shifts_mass_to_no_toggle_branch(self):
        space, m, f = self.build_space_model()
        weights = markov_node_weights(m, f, space, sp=0.5, st=0.1)
        # The xf node under xi=0 is reached with probability P(xi=0) = 0.5
        # regardless of st; its 1-branch (a rising toggle) carries p01 =
        # st / (2(1-sp)) = 0.1, so the node mass stays 0.5 while the
        # toggle outcome becomes rare.  Sanity: root mass 1, child 0.5.
        root_var = m.top_var(f)
        assert root_var == space.xi(0)
        assert weights[f] == 1.0
        child = [n for n in weights if m.top_var(n) == space.xf(0)]
        assert len(child) == 1
        assert weights[child[0]] == pytest.approx(0.5)

    def test_requires_interleaved(self):
        space = TransitionSpace(["a", "b"], scheme="blocked")
        m = space.manager
        f = m.var(space.xi(0))
        with pytest.raises(ModelError):
            markov_node_weights(m, f, space, 0.5, 0.5)

    def test_mixture_weight_fn_averages(self):
        space, m, f = self.build_space_model()
        fn = mixture_weight_fn(space, components=((0.5, 0.5), (0.5, 0.1)))
        mixed = fn(m, f)
        a = markov_node_weights(m, f, space, 0.5, 0.5)
        b = markov_node_weights(m, f, space, 0.5, 0.1)
        for node in mixed:
            assert mixed[node] == pytest.approx(0.5 * (a[node] + b[node]))

    def test_weights_reflect_expected_visit_fraction(self):
        """Cross-check: the terminal-weighted leaf mass equals E[C]/leaf."""
        space, m, f = self.build_space_model()
        sp, st = 0.5, 0.2
        from repro.models.addmodel import AddPowerModel

        model = AddPowerModel("t", space, f, "avg")
        expected = model.expected_capacitance(sp, st)
        # P(a rises) = P(xi=0) * p01 = 0.5 * (0.2 / (2 * 0.5)) = 0.1
        assert expected == pytest.approx(0.1 * 10.0)
