"""Property tests for node collapsing (satellite of the fuzz harness).

Two paper-level invariants, checked against the independent oracle:

- the ``max`` strategy is *conservative*: a collapsed model never
  under-predicts the true Eq.-4 capacitance, verified exhaustively
  (all ``4**n`` transitions) on macros up to 10 inputs;
- the ``avg`` strategy preserves the exact uniform average no matter how
  hard the model is collapsed.
"""

from __future__ import annotations

import pytest

from repro.models import build_add_model
from repro.sim.sequences import all_transition_pairs
from repro.testing.generate import GenParams, build_fuzz_netlist
from repro.testing.oracle import (
    oracle_average_uniform,
    oracle_capacitance_matrix,
)


def exhaustive_pairs(n: int):
    """Every ``(x_i, x_f)`` pair, row-major in the oracle-matrix layout."""
    return all_transition_pairs(n)


def _tolerance(netlist) -> float:
    return 1e-6 + 1e-9 * netlist.total_load_capacitance()


SMALL_MACROS = [
    ("fuzz4", GenParams(num_inputs=4, num_gates=12), 21),
    ("fuzz5", GenParams(num_inputs=5, num_gates=16), 22),
    ("fuzz6-zerocaps", GenParams(num_inputs=6, num_gates=18,
                                 zero_pin_cap_probability=0.3), 23),
]


class TestMaxStrategyConservative:
    @pytest.mark.parametrize(
        "params,seed", [(p, s) for _, p, s in SMALL_MACROS],
        ids=[name for name, _, _ in SMALL_MACROS],
    )
    @pytest.mark.parametrize("max_nodes", [4, 10, 24])
    def test_small_macros_exhaustive(self, params, seed, max_nodes):
        netlist = build_fuzz_netlist(params, seed)
        truths = oracle_capacitance_matrix(netlist).reshape(-1)
        model = build_add_model(netlist, max_nodes=max_nodes, strategy="max")
        initial, final = exhaustive_pairs(netlist.num_inputs)
        estimates = model.pair_capacitances(initial, final)
        slack = estimates - truths
        assert float(slack.min()) >= -_tolerance(netlist), (
            f"max-collapsed model under-predicts by {-slack.min():.6f} fF "
            f"at MAX={max_nodes}"
        )
        assert model.global_maximum() >= float(truths.max()) - _tolerance(netlist)

    def test_ten_input_macro_exhaustive(self):
        """The ISSUE's headline case: a 10-input macro, all 4**10 pairs."""
        netlist = build_fuzz_netlist(
            GenParams(num_inputs=10, num_gates=24, window=14), 31
        )
        truths = oracle_capacitance_matrix(netlist).reshape(-1)
        model = build_add_model(netlist, max_nodes=40, strategy="max")
        initial, final = exhaustive_pairs(10)
        estimates = model.pair_capacitances(initial, final)
        slack = estimates - truths
        assert float(slack.min()) >= -_tolerance(netlist)

    @pytest.mark.parametrize("max_nodes", [4, 16])
    def test_min_strategy_lower_bounds(self, max_nodes):
        netlist = build_fuzz_netlist(GenParams(num_inputs=5, num_gates=14), 37)
        truths = oracle_capacitance_matrix(netlist).reshape(-1)
        model = build_add_model(netlist, max_nodes=max_nodes, strategy="min")
        initial, final = exhaustive_pairs(5)
        estimates = model.pair_capacitances(initial, final)
        assert float((truths - estimates).min()) >= -_tolerance(netlist)


class TestAvgStrategyPreservesMean:
    @pytest.mark.parametrize(
        "params,seed", [(p, s) for _, p, s in SMALL_MACROS],
        ids=[name for name, _, _ in SMALL_MACROS],
    )
    @pytest.mark.parametrize("max_nodes", [2, 6, 20, None])
    def test_uniform_average_exact(self, params, seed, max_nodes):
        netlist = build_fuzz_netlist(params, seed)
        expected = oracle_average_uniform(netlist)
        model = build_add_model(netlist, max_nodes=max_nodes, strategy="avg")
        tolerance = _tolerance(netlist) + 1e-9 * max(
            1.0, netlist.total_load_capacitance()
        )
        assert model.average_capacitance_uniform() == pytest.approx(
            expected, abs=tolerance
        )

    def test_average_preserved_on_ten_inputs(self):
        netlist = build_fuzz_netlist(
            GenParams(num_inputs=10, num_gates=22), 41
        )
        expected = oracle_average_uniform(netlist)
        for max_nodes in (8, 64):
            model = build_add_model(netlist, max_nodes=max_nodes, strategy="avg")
            assert model.average_capacitance_uniform() == pytest.approx(
                expected, rel=1e-9, abs=1e-6
            )

    def test_collapsed_models_really_shrink(self):
        """The property tests must not pass vacuously on uncollapsed models."""
        netlist = build_fuzz_netlist(GenParams(num_inputs=6, num_gates=18), 23)
        exact = build_add_model(netlist, max_nodes=None)
        tight = build_add_model(netlist, max_nodes=6, strategy="avg")
        assert tight.size <= 6 < exact.size
