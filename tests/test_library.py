"""Tests for cells and the technology library."""

from __future__ import annotations

import pytest

from repro.errors import NetlistError
from repro.netlist import TEST_LIBRARY, Cell, GateOp, Library


class TestCell:
    def test_scalar_pin_capacitance(self):
        cell = Cell("X", GateOp.AND, 2, input_capacitance_fF=9.0)
        assert cell.pin_capacitance(0) == 9.0
        assert cell.pin_capacitance(1) == 9.0
        assert cell.total_input_capacitance == 18.0

    def test_per_pin_capacitances(self):
        cell = Cell("M", GateOp.MUX, 3, input_capacitance_fF=(8.0, 10.0, 10.0))
        assert cell.pin_capacitance(0) == 8.0
        assert cell.total_input_capacitance == 28.0

    def test_pin_count_mismatch_rejected(self):
        with pytest.raises(NetlistError):
            Cell("B", GateOp.AND, 2, input_capacitance_fF=(1.0,))

    def test_negative_capacitance_rejected(self):
        with pytest.raises(NetlistError):
            Cell("B", GateOp.AND, 2, input_capacitance_fF=-1.0)
        with pytest.raises(NetlistError):
            Cell("B", GateOp.AND, 2, input_capacitance_fF=(1.0, -2.0))

    def test_arity_validated_against_op(self):
        with pytest.raises(NetlistError):
            Cell("I", GateOp.INV, 2)

    def test_pin_index_bounds(self):
        cell = Cell("I", GateOp.INV, 1, input_capacitance_fF=5.0)
        with pytest.raises(NetlistError):
            cell.pin_capacitance(1)


class TestLibrary:
    def test_lookup_by_name(self):
        assert TEST_LIBRARY["NAND2"].op is GateOp.NAND

    def test_missing_cell_raises(self):
        with pytest.raises(NetlistError):
            TEST_LIBRARY["NAND9"]

    def test_contains_and_len(self):
        assert "INV1" in TEST_LIBRARY
        assert "NOPE" not in TEST_LIBRARY
        assert len(TEST_LIBRARY) >= 9

    def test_cell_for_op(self):
        cell = TEST_LIBRARY.cell_for_op(GateOp.XOR, 2)
        assert cell.name == "XOR2"
        with pytest.raises(NetlistError):
            TEST_LIBRARY.cell_for_op(GateOp.XOR, 5)

    def test_duplicate_cell_names_rejected(self):
        inv = Cell("I", GateOp.INV, 1)
        with pytest.raises(NetlistError):
            Library("dup", [inv, inv])

    def test_iteration_yields_cells(self):
        names = {cell.name for cell in TEST_LIBRARY}
        assert {"INV1", "NAND2", "MUX2", "TIE0", "TIE1"} <= names

    def test_tie_cells_have_no_pins(self):
        assert TEST_LIBRARY["TIE0"].total_input_capacitance == 0.0
