"""Tests for exact / sampled accuracy certification."""

from __future__ import annotations

import pytest

from repro.circuits import comparator, parity
from repro.errors import ModelError
from repro.models import build_add_model, shrink_model
from repro.models.accuracy import exact_error_report, sampled_error_report


class TestExactErrorReport:
    def test_model_against_itself_is_zero(self, fig2_netlist):
        model = build_add_model(fig2_netlist)
        report = exact_error_report(model, model)
        assert report.rms_error_fF == 0.0
        assert report.mean_shift_fF == 0.0
        assert report.max_overestimate_fF == 0.0
        assert report.max_underestimate_fF == 0.0

    def test_avg_shrink_has_zero_mean_shift(self):
        netlist = comparator(4)
        exact = build_add_model(netlist)
        small = shrink_model(exact, 40)
        report = exact_error_report(exact, small)
        assert report.mean_shift_fF == pytest.approx(0.0, abs=1e-6)
        assert report.rms_error_fF > 0.0

    def test_max_shrink_is_certified_upper_bound(self):
        netlist = comparator(4)
        exact = build_add_model(netlist, strategy="max")
        small = shrink_model(exact, 40)
        report = exact_error_report(exact, small)
        assert report.is_upper_bound
        assert not report.is_lower_bound
        assert report.max_overestimate_fF > 0.0

    def test_min_shrink_is_certified_lower_bound(self):
        netlist = comparator(4)
        exact = build_add_model(netlist, strategy="min")
        small = shrink_model(exact, 40)
        report = exact_error_report(exact, small)
        assert report.is_lower_bound

    def test_rms_matches_brute_force(self, fig2_netlist):
        import numpy as np

        from repro.sim import exhaustive_pairs

        exact = build_add_model(fig2_netlist)
        small = shrink_model(exact, 5)
        report = exact_error_report(exact, small)
        gaps = [
            small.switching_capacitance(i, f) - exact.switching_capacitance(i, f)
            for i, f in exhaustive_pairs(2)
        ]
        assert report.rms_error_fF == pytest.approx(
            float(np.sqrt(np.mean(np.square(gaps))))
        )
        assert report.max_overestimate_fF == pytest.approx(max(max(gaps), 0))

    def test_cross_manager_rejected(self, fig2_netlist):
        one = build_add_model(fig2_netlist)
        two = build_add_model(fig2_netlist)
        with pytest.raises(ModelError):
            exact_error_report(one, two)


class TestSampledErrorReport:
    def test_exact_model_certifies_clean(self):
        netlist = parity(6)
        model = build_add_model(netlist)
        report = sampled_error_report(model, netlist, num_samples=500)
        assert report.rms_error_fF == pytest.approx(0.0, abs=1e-9)

    def test_bound_model_certifies_conservative(self):
        netlist = parity(6)
        model = build_add_model(netlist, max_nodes=30, strategy="max")
        report = sampled_error_report(model, netlist, num_samples=500)
        assert report.is_upper_bound
        assert report.mean_shift_fF > 0.0  # bounds sit above the truth

    def test_width_mismatch_rejected(self, fig2_netlist):
        model = build_add_model(parity(3))
        with pytest.raises(ModelError):
            sampled_error_report(model, fig2_netlist)
