"""Tests for the controlled-statistics sequence generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SequenceError
from repro.sim import (
    all_patterns,
    all_transition_pairs,
    exhaustive_pairs,
    feasible_st_range,
    gray_sequence,
    markov_sequence,
    measure,
    uniform_pairs,
)


class TestMarkov:
    @pytest.mark.parametrize(
        "sp,st",
        [(0.5, 0.5), (0.5, 0.1), (0.3, 0.2), (0.7, 0.4), (0.2, 0.35)],
    )
    def test_empirical_statistics_match_spec(self, sp, st):
        sequence = markov_sequence(24, 4000, sp=sp, st=st, seed=5)
        stats = measure(sequence)
        assert stats.signal_probability == pytest.approx(sp, abs=0.03)
        assert stats.transition_probability == pytest.approx(st, abs=0.03)

    def test_deterministic_with_seed(self):
        one = markov_sequence(8, 100, seed=9)
        two = markov_sequence(8, 100, seed=9)
        assert np.array_equal(one, two)

    def test_different_seeds_differ(self):
        one = markov_sequence(8, 100, seed=9)
        two = markov_sequence(8, 100, seed=10)
        assert not np.array_equal(one, two)

    def test_zero_transition_probability_freezes(self):
        sequence = markov_sequence(6, 50, sp=0.5, st=0.0, seed=1)
        assert np.array_equal(sequence[0], sequence[-1])

    def test_infeasible_combination_rejected(self):
        with pytest.raises(SequenceError, match="infeasible"):
            markov_sequence(4, 10, sp=0.1, st=0.5)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(SequenceError):
            markov_sequence(0, 10)
        with pytest.raises(SequenceError):
            markov_sequence(4, 0)

    def test_shape_and_dtype(self):
        sequence = markov_sequence(5, 17, seed=0)
        assert sequence.shape == (17, 5)
        assert sequence.dtype == bool


class TestFeasibility:
    def test_range_formula(self):
        assert feasible_st_range(0.5) == (0.0, 1.0)
        assert feasible_st_range(0.25) == (0.0, 0.5)
        lo, hi = feasible_st_range(0.9)
        assert hi == pytest.approx(0.2)

    def test_out_of_range_sp(self):
        with pytest.raises(SequenceError):
            feasible_st_range(1.5)


class TestOtherGenerators:
    def test_uniform_pairs_shapes(self):
        initial, final = uniform_pairs(7, 100, seed=3)
        assert initial.shape == final.shape == (100, 7)
        # Roughly half the bits toggle on average.
        assert abs(float((initial ^ final).mean()) - 0.5) < 0.05

    def test_uniform_pairs_validation(self):
        with pytest.raises(SequenceError):
            uniform_pairs(0, 5)

    def test_exhaustive_pairs_count_and_coverage(self):
        pairs = list(exhaustive_pairs(2))
        assert len(pairs) == 16
        seen = {
            (tuple(int(b) for b in i), tuple(int(b) for b in f))
            for i, f in pairs
        }
        assert len(seen) == 16

    def test_exhaustive_pairs_width_limit(self):
        with pytest.raises(SequenceError):
            next(exhaustive_pairs(11))

    def test_all_transition_pairs_layout(self):
        """Row ``i * 2**n + f`` holds LSB-first patterns ``i`` and ``f``."""
        n = 3
        span = 1 << n
        initial, final = all_transition_pairs(n)
        assert initial.shape == final.shape == (span * span, n)
        assert initial.dtype == final.dtype == bool
        for row in range(span * span):
            i, f = divmod(row, span)
            assert initial[row].tolist() == [bool((i >> k) & 1) for k in range(n)]
            assert final[row].tolist() == [bool((f >> k) & 1) for k in range(n)]

    def test_all_transition_pairs_agrees_with_iterator(self):
        """Same pair stream as exhaustive_pairs, modulo bit order.

        The iterator yields MSB-first patterns; the vectorised form is
        LSB-first (matching the oracle-matrix layout), so corresponding
        rows are column-reversed.
        """
        initial, final = all_transition_pairs(2)
        for row, (bits_i, bits_f) in enumerate(exhaustive_pairs(2)):
            assert initial[row].tolist() == bits_i[::-1].tolist()
            assert final[row].tolist() == bits_f[::-1].tolist()

    def test_all_transition_pairs_width_limit(self):
        with pytest.raises(SequenceError):
            all_transition_pairs(13)

    def test_all_patterns_msb_first(self):
        patterns = all_patterns(3)
        assert patterns.shape == (8, 3)
        assert patterns[1].tolist() == [False, False, True]
        assert patterns[4].tolist() == [True, False, False]

    def test_all_patterns_width_limit(self):
        with pytest.raises(SequenceError):
            all_patterns(21)

    def test_gray_sequence_single_toggle_per_step(self):
        sequence = gray_sequence(6, 40)
        toggles = (sequence[1:] ^ sequence[:-1]).sum(axis=1)
        assert set(toggles.tolist()) == {1}

    def test_measure_rejects_bad_shape(self):
        with pytest.raises(SequenceError):
            measure(np.zeros(10, dtype=bool))


class TestWorkloadGenerators:
    def test_counter_sequence_counts(self):
        from repro.sim import counter_sequence

        sequence = counter_sequence(4, 6)
        values = [
            sum(int(sequence[t, 3 - k]) << k for k in range(4))
            for t in range(6)
        ]
        assert values == [0, 1, 2, 3, 4, 5]

    def test_counter_wraps_and_strides(self):
        from repro.sim import counter_sequence

        sequence = counter_sequence(3, 4, start=6, stride=2)
        values = [
            sum(int(sequence[t, 2 - k]) << k for k in range(3))
            for t in range(4)
        ]
        assert values == [6, 0, 2, 4]

    def test_counter_validation(self):
        from repro.sim import counter_sequence

        with pytest.raises(SequenceError):
            counter_sequence(0, 5)

    def test_address_burst_locality(self):
        from repro.sim import address_burst_sequence

        sequence = address_burst_sequence(8, 32, burst_length=8, seed=1)
        toggles = (sequence[1:] ^ sequence[:-1]).sum(axis=1)
        # Within a burst the LSB-increment changes few bits on average.
        in_burst = [toggles[t] for t in range(31) if (t + 1) % 8 != 0]
        assert np.mean(in_burst) < 3.0

    def test_address_burst_reproducible(self):
        from repro.sim import address_burst_sequence

        one = address_burst_sequence(6, 20, seed=3)
        two = address_burst_sequence(6, 20, seed=3)
        assert np.array_equal(one, two)

    def test_address_burst_validation(self):
        from repro.sim import address_burst_sequence

        with pytest.raises(SequenceError):
            address_burst_sequence(4, 10, burst_length=0)

    def test_onehot_rotation(self):
        from repro.sim import onehot_rotation_sequence

        sequence = onehot_rotation_sequence(5, 12)
        assert np.all(sequence.sum(axis=1) == 1)
        assert bool(sequence[0, 0]) and bool(sequence[6, 1])
