"""Shared fixtures: small reference circuits used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netlist import Netlist, NetlistBuilder


@pytest.fixture
def fig2_netlist() -> Netlist:
    """The paper's Figure 2 unit: g1 = x1', g2 = x2', g3 = x1 + x2.

    With the test library, loads come out as 15 fF per gate (primary
    outputs only), so C(11 -> 00) = 30 fF (both inverters rise).
    """
    builder = NetlistBuilder("fig2")
    x1, x2 = builder.input("x1"), builder.input("x2")
    g1 = builder.inv(x1)
    g2 = builder.inv(x2)
    g3 = builder.or2(x1, x2)
    for net in (g1, g2, g3):
        builder.netlist.add_output(net)
    return builder.build()


@pytest.fixture
def xor_chain_netlist() -> Netlist:
    """A 4-input XOR chain — deep, fully activity-sensitive logic."""
    builder = NetlistBuilder("xorchain")
    bits = builder.bus("x", 4)
    net = bits[0]
    for bit in bits[1:]:
        net = builder.xor2(net, bit)
    builder.output("p", net)
    return builder.build()


@pytest.fixture
def reconvergent_netlist() -> Netlist:
    """Reconvergent fanout with unequal path depths (glitch-prone)."""
    builder = NetlistBuilder("reconv")
    a, b, c = builder.input("a"), builder.input("b"), builder.input("c")
    slow = builder.and2(builder.and2(a, b), c)   # depth 2 path
    fast = builder.inv(a)                        # depth 1 path
    builder.output("y", builder.or2(slow, fast))
    return builder.build()


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests that sample patterns."""
    return np.random.default_rng(20260706)


def brute_force_table(netlist: Netlist):
    """All (x_i, x_f, C) triples of a small netlist, via the golden model."""
    from repro.sim import all_patterns, pair_switching_capacitances

    patterns = all_patterns(netlist.num_inputs)
    rows = []
    for i in range(patterns.shape[0]):
        initial = np.repeat(patterns[i][None, :], patterns.shape[0], axis=0)
        caps = pair_switching_capacitances(netlist, initial, patterns)
        for f in range(patterns.shape[0]):
            rows.append((patterns[i], patterns[f], float(caps[f])))
    return rows
