"""Tests for node-collapsing approximation (paper Section 3)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.dd import (
    DDManager,
    approximate,
    average,
    collapse_by_threshold,
    collapse_nodes,
    function_stats,
    quantize_leaves,
)
from repro.errors import DDError


def random_add(manager, rng, num_vars=5, terms=6):
    node = manager.terminal(0.0)
    for _ in range(terms):
        chosen = rng.sample(range(num_vars), rng.randint(1, 3))
        cube = manager.cube({v: rng.random() < 0.5 for v in chosen})
        node = manager.add_plus(
            node, manager.add_const_times(cube, rng.randint(1, 20))
        )
    return node


def everywhere(manager, node, num_vars):
    return [
        manager.evaluate(node, list(x))
        for x in itertools.product((0, 1), repeat=num_vars)
    ]


@pytest.fixture
def m():
    return DDManager(5)


class TestApproximate:
    def test_no_op_when_already_small(self, m):
        f = m.var(0)
        assert approximate(m, f, 100) == f

    def test_size_target_respected(self, m):
        rng = random.Random(3)
        for seed in range(5):
            rng.seed(seed)
            f = random_add(m, rng)
            for target in (20, 10, 5, 2, 1):
                g = approximate(m, f, target, "avg")
                assert m.size(g) <= target

    def test_avg_strategy_preserves_global_average(self, m):
        rng = random.Random(11)
        f = random_add(m, rng)
        original = average(m, f)
        for target in (15, 8, 4, 1):
            g = approximate(m, f, target, "avg")
            assert average(m, g) == pytest.approx(original)

    def test_max_strategy_is_conservative_upper_bound(self, m):
        rng = random.Random(13)
        f = random_add(m, rng)
        truth = everywhere(m, f, 5)
        for target in (15, 8, 4, 1):
            g = approximate(m, f, target, "max")
            estimates = everywhere(m, g, 5)
            assert all(e >= t - 1e-9 for e, t in zip(estimates, truth))

    def test_min_strategy_is_conservative_lower_bound(self, m):
        rng = random.Random(17)
        f = random_add(m, rng)
        truth = everywhere(m, f, 5)
        g = approximate(m, f, 5, "min")
        estimates = everywhere(m, g, 5)
        assert all(e <= t + 1e-9 for e, t in zip(estimates, truth))

    def test_full_collapse_with_max_gives_global_maximum(self, m):
        rng = random.Random(19)
        f = random_add(m, rng)
        g = approximate(m, f, 1, "max")
        assert m.is_terminal(g)
        assert m.value(g) == pytest.approx(function_stats(m, f).max)

    def test_random_strategy_is_reproducible(self, m):
        rng = random.Random(23)
        f = random_add(m, rng)
        a = approximate(m, f, 6, "random", seed=42)
        b = approximate(m, f, 6, "random", seed=42)
        assert a == b

    def test_random_strategy_differs_across_seeds_sometimes(self, m):
        rng = random.Random(29)
        f = random_add(m, rng, terms=8)
        results = {approximate(m, f, 6, "random", seed=s) for s in range(6)}
        assert len(results) >= 1  # at minimum it runs; usually > 1

    def test_invalid_target_rejected(self, m):
        with pytest.raises(DDError):
            approximate(m, m.var(0), 0)

    def test_invalid_strategy_rejected(self, m):
        with pytest.raises(DDError):
            approximate(m, m.var(0), 1, "bogus")

    def test_smaller_budget_never_increases_accuracy_class(self, m):
        """Shrinking monotonically loses leaves (pattern dependence)."""
        rng = random.Random(31)
        f = random_add(m, rng, terms=8)
        sizes = [m.size(approximate(m, f, t, "avg")) for t in (30, 12, 6, 1)]
        assert sizes == sorted(sizes, reverse=True)


class TestCollapseHelpers:
    def test_collapse_nodes_explicit(self, m):
        f = m.ite(m.var(0), m.terminal(10.0), m.var(1))
        # Collapse the var-1 subtree to its average (0.5).
        target = [n for n in m.iter_nodes(f) if m.top_var(n) == 1][0]
        g = collapse_nodes(m, f, [target], "avg")
        assert m.evaluate(g, [0, 0, 0, 0, 0]) == pytest.approx(0.5)
        assert m.evaluate(g, [1, 0, 0, 0, 0]) == 10.0

    def test_collapse_root_yields_constant(self, m):
        f = m.ite(m.var(0), m.terminal(4.0), m.terminal(2.0))
        g = collapse_nodes(m, f, [f], "avg")
        assert m.is_terminal(g)
        assert m.value(g) == pytest.approx(3.0)

    def test_collapse_by_threshold_zero_keeps_function_when_varied(self, m):
        f = m.ite(m.var(0), m.terminal(4.0), m.terminal(2.0))
        assert collapse_by_threshold(m, f, -1.0, "avg") == f

    def test_collapse_by_threshold_huge_collapses_everything(self, m):
        rng = random.Random(37)
        f = random_add(m, rng)
        g = collapse_by_threshold(m, f, 1e12, "avg")
        assert m.is_terminal(g)

    def test_collapse_by_threshold_rejects_random(self, m):
        with pytest.raises(DDError):
            collapse_by_threshold(m, m.var(0), 1.0, "random")


class TestQuantizeLeaves:
    def test_nearest_rounds_to_grid(self, m):
        f = m.ite(m.var(0), m.terminal(7.4), m.terminal(2.6))
        g = quantize_leaves(m, f, 1.0)
        assert m.leaves(g) == {7.0, 3.0}

    def test_up_mode_is_conservative(self, m):
        f = m.ite(m.var(0), m.terminal(7.4), m.terminal(2.6))
        g = quantize_leaves(m, f, 5.0, mode="up")
        truth = everywhere(m, f, 5)
        bound = everywhere(m, g, 5)
        assert all(b >= t for b, t in zip(bound, truth))

    def test_down_mode_is_conservative(self, m):
        f = m.ite(m.var(0), m.terminal(7.4), m.terminal(2.6))
        g = quantize_leaves(m, f, 5.0, mode="down")
        truth = everywhere(m, f, 5)
        bound = everywhere(m, g, 5)
        assert all(b <= t for b, t in zip(bound, truth))

    def test_quantize_merges_nodes(self, m):
        f = m.ite(m.var(0), m.terminal(5.01), m.terminal(4.99))
        g = quantize_leaves(m, f, 1.0)
        assert m.is_terminal(g)

    def test_bad_step_rejected(self, m):
        with pytest.raises(DDError):
            quantize_leaves(m, m.var(0), 0.0)
