"""Tests for the telemetry subsystem (repro.obs) and its integrations."""

from __future__ import annotations

import json
import time

import pytest

from repro.circuits import load_circuit
from repro.dd import DDManager
from repro.errors import ObsError
from repro.models import BuildReport, build_add_model, build_add_models_parallel
from repro.obs import (
    BuildTelemetry,
    Histogram,
    MetricsRegistry,
    NULL_TRACER,
    Tracer,
    disable_tracing,
    enable_tracing,
    format_metrics,
    format_report,
    format_spans,
    get_metrics,
    get_tracer,
    merge_snapshots,
)


@pytest.fixture
def tracer() -> Tracer:
    return Tracer()


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


@pytest.fixture
def global_tracing():
    """Enable global tracing for one test, always restoring the null tracer."""
    tracer = enable_tracing()
    try:
        yield tracer
    finally:
        disable_tracing()


class TestSpans:
    def test_span_records_name_duration_attrs(self, tracer):
        with tracer.span("work", macro="decod") as span:
            time.sleep(0.001)
            span.set("nodes", 42)
        (recorded,) = tracer.spans()
        assert recorded.name == "work"
        assert recorded.duration >= 0.001
        assert recorded.attrs == {"macro": "decod", "nodes": 42}

    def test_nesting_depth(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1

    def test_children_finish_before_parents(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]

    def test_exception_recorded_but_not_swallowed(self, tracer):
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("failing"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.error == "ValueError: boom"
        assert span.end is not None

    def test_exception_unwinds_abandoned_children(self, tracer):
        # An exception that escapes an inner span must not corrupt the
        # depth bookkeeping of subsequent spans.
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError
        with tracer.span("after"):
            pass
        assert {s.name: s.depth for s in tracer.spans()}["after"] == 0

    def test_event_is_zero_duration(self, tracer):
        tracer.event("tick", k=1)
        (span,) = tracer.spans()
        assert span.duration == 0.0
        assert span.attrs == {"k": 1}

    def test_traced_decorator(self, tracer):
        @tracer.traced("wrapped")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        assert tracer.spans()[0].name == "wrapped"

    def test_aggregate_rolls_up_by_name(self, tracer):
        for _ in range(3):
            with tracer.span("repeated"):
                pass
        rollup = tracer.aggregate()
        assert rollup["repeated"]["count"] == 3
        assert rollup["repeated"]["total_s"] >= rollup["repeated"]["max_s"]

    def test_clear_resets_spans_and_origin(self, tracer):
        with tracer.span("gone"):
            pass
        tracer.clear()
        assert tracer.spans() == []

    def test_null_tracer_span_is_shared_noop(self):
        first = NULL_TRACER.span("a", big_attr=1)
        second = NULL_TRACER.span("b")
        assert first is second
        with first as span:
            span.set("ignored", 1)
            span.update(also="ignored")
        assert not NULL_TRACER.enabled

    def test_enable_disable_swap_global(self):
        assert not get_tracer().enabled
        tracer = enable_tracing()
        try:
            assert get_tracer() is tracer and tracer.enabled
        finally:
            disable_tracing()
        assert not get_tracer().enabled


class TestChromeExport:
    def test_chrome_schema(self, tracer, tmp_path):
        with tracer.span("outer", macro="decod"):
            with tracer.span("inner"):
                pass
        tracer.event("mark")
        path = tmp_path / "trace.json"
        tracer.write_chrome(str(path))
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert {e["name"] for e in events} == {"outer", "inner", "mark"}
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert event["cat"] == event["name"].split(".", 1)[0]
        outer = next(e for e in events if e["name"] == "outer")
        assert outer["args"]["macro"] == "decod"

    def test_error_rides_in_args(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("nope")
        (event,) = tracer.to_chrome()["traceEvents"]
        assert event["args"]["error"] == "ValueError: nope"

    def test_structured_json_schema(self, tracer, tmp_path):
        with tracer.span("s", k=1):
            pass
        path = tmp_path / "spans.json"
        tracer.write_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-trace"
        assert payload["version"] == 2
        assert payload["origin_epoch_s"] > 0
        (span,) = payload["spans"]
        assert span["name"] == "s" and span["attrs"] == {"k": 1}


class TestCountersAndGauges:
    def test_counter_inc(self, registry):
        counter = registry.counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_gauge_set_and_update_max(self, registry):
        gauge = registry.gauge("g")
        gauge.set(3.0)
        gauge.update_max(2.0)
        assert gauge.value == 3.0
        gauge.update_max(7.0)
        assert gauge.value == 7.0

    def test_handles_are_stable_across_reset(self, registry):
        counter = registry.counter("stable")
        counter.inc(9)
        registry.reset()
        assert counter.value == 0
        assert registry.counter("stable") is counter

    def test_type_clash_raises(self, registry):
        registry.counter("x")
        with pytest.raises(ObsError, match="already registered"):
            registry.gauge("x")


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 4.1):
            h.observe(value)
        # counts: <=1: {0.5, 1.0}; <=2: {1.5, 2.0}; <=4: {4.0}; over: {4.1}
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.min == 0.5 and h.max == 4.1
        assert h.mean == pytest.approx((0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.1) / 6)

    def test_non_increasing_buckets_rejected(self):
        with pytest.raises(ObsError, match="strictly increasing"):
            Histogram("bad", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ObsError):
            Histogram("bad", buckets=())

    def test_empty_histogram_mean_and_dict(self):
        h = Histogram("empty", buckets=(1.0,))
        assert h.mean == 0.0
        state = h.to_dict()
        assert state["min"] is None and state["max"] is None


class TestSnapshotDiffMerge:
    def test_snapshot_is_json_serialisable(self, registry):
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", (1.0, 2.0)).observe(0.5)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_diff_subtracts_counters_and_histograms(self, registry):
        counter = registry.counter("c")
        hist = registry.histogram("h", (1.0, 2.0))
        counter.inc(2)
        hist.observe(0.5)
        before = registry.snapshot()
        counter.inc(3)
        hist.observe(1.5)
        delta = MetricsRegistry.diff(before, registry.snapshot())
        assert delta["c"]["value"] == 3
        assert delta["h"]["count"] == 1
        assert delta["h"]["counts"] == [0, 1, 0]

    def test_merge_across_registries(self, registry):
        other = MetricsRegistry()
        for reg, amount in ((registry, 2), (other, 5)):
            reg.counter("c").inc(amount)
            reg.gauge("g").update_max(amount)
            reg.histogram("h", (1.0, 10.0)).observe(amount)
        registry.merge(other.snapshot())
        assert registry.counter("c").value == 7
        assert registry.gauge("g").value == 5.0
        merged = registry.histogram("h")
        assert merged.count == 2
        assert merged.counts == [0, 2, 0]
        assert merged.min == 2.0 and merged.max == 5.0

    def test_merge_creates_missing_instruments(self, registry):
        other = MetricsRegistry()
        other.counter("only.there").inc(4)
        registry.merge(other.snapshot())
        assert registry.counter("only.there").value == 4

    def test_merge_bucket_mismatch_raises(self, registry):
        registry.histogram("h", (1.0, 2.0))
        bad = {
            "h": {
                "type": "histogram",
                "buckets": [5.0, 6.0],
                "counts": [0, 0, 0],
                "sum": 0.0,
                "count": 0,
                "min": None,
                "max": None,
            }
        }
        with pytest.raises(ObsError, match="bucket mismatch"):
            registry.merge(bad)

    def test_merge_unknown_type_raises(self, registry):
        with pytest.raises(ObsError, match="unknown instrument type"):
            registry.merge({"x": {"type": "timer", "value": 1}})


class TestPipelineIntegration:
    def test_build_populates_instruments(self):
        met = get_metrics()
        before = met.snapshot()
        build_add_model(load_circuit("decod"), max_nodes=200)
        delta = MetricsRegistry.diff(before, met.snapshot())
        assert delta["add.build.count"]["value"] == 1
        assert delta["add.build.gates"]["value"] == 48
        assert delta["dd.apply.cache_misses"]["value"] > 0
        assert delta["symbolic.sweeps"]["value"] == 2
        assert delta["add.build.seconds"]["count"] == 1

    def test_build_spans_cover_the_phases(self, global_tracing):
        build_add_model(load_circuit("decod"), max_nodes=200)
        names = {s.name for s in global_tracing.spans()}
        assert {
            "add.build",
            "add.build.functions",
            "add.build.deltas",
            "add.build.accumulate",
            "symbolic.build",
        } <= names
        build = next(
            s for s in global_tracing.spans() if s.name == "add.build"
        )
        assert build.attrs["macro"] == "decod"
        assert build.attrs["final_nodes"] > 0

    def test_parallel_build_ships_worker_metrics(self):
        met = get_metrics()
        netlist = load_circuit("decod")
        before = met.snapshot()
        models = build_add_models_parallel(
            [netlist, netlist], processes=2, max_nodes=200
        )
        assert len(models) == 2
        delta = MetricsRegistry.diff(before, met.snapshot())
        # Both workers' build counters must have been merged back in
        # (or built in-process on platforms without a pool — same totals).
        assert delta["add.build.count"]["value"] == 2
        assert delta["add.build.gates"]["value"] == 2 * netlist.num_gates

    def test_detailed_flag_gates_collapse_error(self):
        met = get_metrics()
        met.detailed = False
        before = met.snapshot()
        build_add_model(load_circuit("decod"), max_nodes=50)
        mid = met.snapshot()
        assert (
            MetricsRegistry.diff(before, mid)["collapse.leaf_error"]["count"]
            == 0
        )
        met.detailed = True
        try:
            build_add_model(load_circuit("decod"), max_nodes=50)
            delta = MetricsRegistry.diff(mid, met.snapshot())
            assert delta["collapse.leaf_error"]["count"] > 0
        finally:
            met.detailed = False

    def test_fuzz_run_counts_iterations(self):
        from repro.testing import FuzzConfig, run_fuzz

        met = get_metrics()
        before = met.snapshot()
        report = run_fuzz(FuzzConfig(seed=3, iterations=3))
        delta = MetricsRegistry.diff(before, met.snapshot())
        assert delta["fuzz.iterations"]["value"] == report.iterations_run == 3
        assert delta["fuzz.failures"]["value"] == len(report.failures) == 0

    def test_null_tracer_overhead_bound(self):
        # With tracing disabled, an instrumented call site costs one
        # shared no-op context manager: must stay within ~microseconds.
        tracer = get_tracer()
        assert not tracer.enabled
        n = 20_000
        start = time.perf_counter()
        for _ in range(n):
            with tracer.span("noop"):
                pass
        per_call = (time.perf_counter() - start) / n
        assert per_call < 20e-6  # generous bound: healthy path is ~0.2 µs


class TestManagerTelemetry:
    def test_clear_caches_resets_cache_stats(self):
        manager = DDManager(2, ["a", "b"])
        f = manager.var(0)
        g = manager.var(1)
        manager.bdd_and(f, g)
        manager.bdd_and(f, g)
        stats = manager.cache_stats()
        assert stats.hits + stats.misses > 0
        manager.clear_caches()
        stats = manager.cache_stats()
        assert stats.hits == 0
        assert stats.misses == 0
        assert stats.evictions == 0

    def test_clear_caches_counts_gc_clears(self):
        met = get_metrics()
        before = met.snapshot()
        DDManager(1, ["a"]).clear_caches()
        delta = MetricsRegistry.diff(before, met.snapshot())
        assert delta["dd.gc.clears"]["value"] == 1

    def test_cache_stats_summary(self):
        manager = DDManager(2, ["a", "b"])
        manager.bdd_and(manager.var(0), manager.var(1))
        text = manager.cache_stats().summary()
        assert "hit" in text

    def test_node_stats_summary(self):
        from repro.dd.stats import function_stats

        manager = DDManager(1, ["a"])
        text = function_stats(manager, manager.var(0)).summary()
        assert "avg=0.5" in text and "max=1" in text

    def test_memory_estimate_positive_and_grows(self):
        manager = DDManager(4, ["a", "b", "c", "d"])
        empty = manager.memory_estimate_bytes()
        assert empty > 0
        f = manager.var(0)
        for k in range(1, 4):
            f = manager.bdd_and(f, manager.var(k))
        assert manager.memory_estimate_bytes() > empty


class TestReporting:
    def test_build_report_alias_and_summary(self):
        assert BuildReport is BuildTelemetry
        model = build_add_model(load_circuit("decod"), max_nodes=200)
        assert isinstance(model.report, BuildTelemetry)
        summary = model.report.summary()
        assert "decod" in summary and "MAX=200" in summary

    def test_format_metrics_groups_by_prefix(self, registry):
        registry.counter("dd.apply.calls").inc(3)
        registry.counter("sim.patterns").inc(7)
        text = format_metrics(registry.snapshot())
        assert "[dd]" in text and "[sim]" in text
        assert text.index("[dd]") < text.index("[sim]")

    def test_format_spans_sorted_by_total(self, tracer):
        with tracer.span("slow"):
            time.sleep(0.002)
        with tracer.span("fast"):
            pass
        text = format_spans(tracer.aggregate())
        assert text.index("slow") < text.index("fast")

    def test_format_report_combines_sections(self, registry, tracer):
        registry.counter("dd.apply.calls").inc()
        with tracer.span("s"):
            pass
        text = format_report(
            registry.snapshot(), tracer.aggregate(), title="unit"
        )
        assert "=== unit ===" in text
        assert "span profile" in text

    def test_format_spans_empty_hint(self):
        assert "--trace" in format_spans({})


class TestMergeSnapshots:
    """merge_snapshots: the cluster's cross-process aggregation primitive."""

    def test_merged_report_equals_sum_of_per_shard_counters(self):
        shards = []
        for amount in (3, 7, 11):
            shard = MetricsRegistry()
            shard.counter("serve.requests").inc(amount)
            shard.counter("serve.eval.rows").inc(amount * 10)
            shards.append(shard.snapshot())
        merged = merge_snapshots(shards)
        assert merged["serve.requests"]["value"] == 3 + 7 + 11
        assert merged["serve.eval.rows"]["value"] == (3 + 7 + 11) * 10

    def test_histogram_buckets_merge_bucketwise(self):
        shards = []
        for values in ((0.5, 1.5), (0.7,), (5.0, 0.1, 1.2)):
            shard = MetricsRegistry()
            hist = shard.histogram("serve.eval.batch_wait", (1.0, 2.0, 10.0))
            for value in values:
                hist.observe(value)
            shards.append(shard.snapshot())
        merged = merge_snapshots(shards)["serve.eval.batch_wait"]
        # <=1.0: 0.5, 0.7, 0.1 | <=2.0: 1.5, 1.2 | <=10.0: 5.0
        assert merged["counts"] == [3, 2, 1, 0]
        assert merged["count"] == 6
        assert merged["sum"] == pytest.approx(0.5 + 1.5 + 0.7 + 5.0 + 0.1 + 1.2)
        assert merged["min"] == 0.1 and merged["max"] == 5.0

    def test_gauges_keep_the_maximum(self):
        shards = []
        for level in (4.0, 9.0, 2.0):
            shard = MetricsRegistry()
            shard.gauge("serve.parked_rows.peak").set(level)
            shards.append(shard.snapshot())
        merged = merge_snapshots(shards)
        assert merged["serve.parked_rows.peak"]["value"] == 9.0

    def test_disjoint_instruments_union(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("only.left").inc(1)
        right.counter("only.right").inc(2)
        merged = merge_snapshots([left.snapshot(), right.snapshot()])
        assert merged["only.left"]["value"] == 1
        assert merged["only.right"]["value"] == 2

    def test_empty_input_is_empty_report(self):
        assert merge_snapshots([]) == {}

    def test_merge_is_pure_and_does_not_touch_global_registry(self):
        met = get_metrics()
        before = met.snapshot().get("cluster.test.pollution")
        shard = MetricsRegistry()
        shard.counter("cluster.test.pollution").inc(99)
        merge_snapshots([shard.snapshot()])
        after = get_metrics().snapshot().get("cluster.test.pollution")
        assert after == before  # both None, or unchanged

    def test_merge_across_real_processes(self):
        """Snapshots shipped home from genuine worker processes add up."""
        import multiprocessing

        def worker(amount: int, queue) -> None:
            registry = MetricsRegistry()
            registry.counter("serve.requests").inc(amount)
            registry.histogram("serve.latency", (0.1, 1.0)).observe(
                amount / 10.0
            )
            queue.put(registry.snapshot())

        ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        queue = ctx.Queue()
        amounts = (2, 3, 4)
        procs = [
            ctx.Process(target=worker, args=(amount, queue))
            for amount in amounts
        ]
        for proc in procs:
            proc.start()
        snapshots = [queue.get(timeout=30.0) for _ in amounts]
        for proc in procs:
            proc.join(10.0)
        merged = merge_snapshots(snapshots)
        assert merged["serve.requests"]["value"] == sum(amounts)
        assert merged["serve.latency"]["count"] == 3
        # 0.2, 0.3, 0.4 all land in the (0.1, 1.0] bucket.
        assert merged["serve.latency"]["counts"] == [0, 3, 0]


# ---------------------------------------------------------------------------
# Distributed trace context + cross-process merge
# ---------------------------------------------------------------------------
class TestTraceContext:
    def test_root_child_retry_identity(self):
        from repro.obs import TraceContext, new_trace_context

        root = new_trace_context()
        assert len(root.trace_id) == 32 and len(root.span_id) == 16
        assert root.parent_id is None
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.span_id != root.span_id
        assert child.parent_id == root.span_id
        retry = child.retry()
        # A retry is the *same* hop tried again: same trace and parent,
        # fresh span id.
        assert retry.trace_id == child.trace_id
        assert retry.parent_id == child.parent_id
        assert retry.span_id != child.span_id

    def test_traceparent_round_trip(self):
        from repro.obs import TraceContext, new_trace_context

        context = new_trace_context()
        parsed = TraceContext.from_traceparent(context.to_traceparent())
        assert parsed is not None
        assert parsed.trace_id == context.trace_id
        assert parsed.span_id == context.span_id

    @pytest.mark.parametrize(
        "header",
        [
            None,
            17,
            "",
            "nonsense",
            "00-short-span-01",
            "00-" + "g" * 32 + "-" + "0" * 16 + "-01",  # non-hex
            "00-" + "0" * 32 + "-" + "0" * 15 + "-01",  # short span
            "00-" + "0" * 32 + "-" + "0" * 16,  # missing flags
        ],
    )
    def test_malformed_traceparent_is_none_never_raises(self, header):
        from repro.obs import TraceContext

        assert TraceContext.from_traceparent(header) is None

    def test_spans_stamped_under_active_context(self, tracer):
        from repro.obs import new_trace_context, use_trace_context

        context = new_trace_context()
        with use_trace_context(context):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        inner, outer = tracer.spans()
        assert outer.trace_id == context.trace_id
        # The outermost span's parent is the remote caller's hop; the
        # nested span's parent is the enclosing local span.
        assert outer.parent_id == context.span_id
        assert inner.parent_id == outer.span_id
        assert len({outer.span_id, inner.span_id}) == 2

    def test_spans_untouched_without_context(self, tracer):
        with tracer.span("bare"):
            pass
        (span,) = tracer.spans()
        assert span.trace_id is None and span.span_id is None

    def test_concurrent_tasks_do_not_cross_parent(self, tracer):
        """The nesting stack is context-local, not thread-local.

        Concurrent asyncio tasks share one thread and (under a load
        generator) one trace_id; a task's span must parent on *its own*
        context hop, never on another task's currently-open span.
        """
        import asyncio

        from repro.obs import new_trace_context, use_trace_context

        root = new_trace_context()

        async def attempt(hold_s):
            hop = root.child()
            with use_trace_context(hop):
                with tracer.span("attempt"):
                    await asyncio.sleep(hold_s)
            return hop.span_id

        async def run():
            # One long-held span overlapping several short ones that
            # open *and close* while it is live — on a shared stack the
            # short spans would all parent on the long one.
            return await asyncio.gather(
                attempt(0.2), *(attempt(0.01) for _ in range(6))
            )

        hop_ids = asyncio.run(run())
        spans = [s for s in tracer.spans() if s.name == "attempt"]
        assert len(spans) == 7
        assert sorted(s.parent_id for s in spans) == sorted(hop_ids)
        parent_ids = [s.parent_id for s in spans]
        assert len(set(parent_ids)) == len(parent_ids)


class TestMergeChromeTraces:
    def _payload(self, pid, origin_us, events):
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "metadata": {"origin_epoch_us": origin_us, "pid": pid},
        }

    def test_rebases_to_earliest_origin(self):
        from repro.obs import merge_chrome_traces

        merged = merge_chrome_traces(
            [
                self._payload(1, 1000.0, [{"name": "a", "ts": 5.0, "pid": 1}]),
                self._payload(2, 1300.0, [{"name": "b", "ts": 5.0, "pid": 2}]),
            ]
        )
        by_name = {e["name"]: e["ts"] for e in merged["traceEvents"]}
        assert by_name == {"a": 5.0, "b": 305.0}
        assert merged["metadata"]["pids"] == [1, 2]
        assert merged["metadata"]["merged_from"] == 2

    def test_trace_id_filter_keeps_batch_spans(self):
        from repro.obs import merge_chrome_traces

        events = [
            {"name": "mine", "ts": 0.0, "pid": 1, "args": {"trace_id": "t"}},
            {"name": "other", "ts": 1.0, "pid": 1, "args": {"trace_id": "x"}},
            {
                "name": "batch",
                "ts": 2.0,
                "pid": 1,
                "args": {"trace_ids": ["x", "t"]},
            },
            {"name": "untraced", "ts": 3.0, "pid": 1, "args": {}},
        ]
        merged = merge_chrome_traces(
            [self._payload(1, 0.0, events)], trace_id="t"
        )
        assert [e["name"] for e in merged["traceEvents"]] == ["mine", "batch"]
        assert merged["metadata"]["trace_id"] == "t"

    def test_foreign_payload_without_anchor_kept_unshifted(self):
        from repro.obs import merge_chrome_traces

        merged = merge_chrome_traces(
            [
                self._payload(1, 500.0, [{"name": "a", "ts": 1.0, "pid": 1}]),
                {"traceEvents": [{"name": "f", "ts": 9.0, "pid": 7}]},
            ]
        )
        by_name = {e["name"]: e["ts"] for e in merged["traceEvents"]}
        assert by_name["f"] == 9.0


# ---------------------------------------------------------------------------
# Quantiles, log buckets, gauge kinds
# ---------------------------------------------------------------------------
class TestHistogramQuantiles:
    def test_log_buckets_geometric(self):
        from repro.obs import log_buckets

        buckets = log_buckets(0.001, 1.0, factor=10.0)
        assert buckets == (0.001, 0.01, 0.1, 1.0)
        with pytest.raises(ObsError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ObsError):
            log_buckets(1.0, 0.5)
        with pytest.raises(ObsError):
            log_buckets(0.1, 1.0, factor=1.0)

    def test_quantile_exact_within_bucket_on_uniform_data(self):
        import numpy as np

        registry = MetricsRegistry()
        histogram = registry.histogram("h", (0.25, 0.5, 0.75, 1.0))
        values = [(k + 0.5) / 1000.0 * 1.0 for k in range(1000)]
        for value in values:
            histogram.observe(value)
        for q in (0.25, 0.5, 0.9, 0.99):
            exact = float(np.quantile(values, q))
            estimate = histogram.quantile(q)
            # Linear interpolation within a bucket is exact for data
            # uniform inside each bucket, up to edge effects.
            assert estimate == pytest.approx(exact, abs=0.25 / 100)

    def test_quantile_edges_and_empty(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", (1.0, 2.0))
        assert histogram.quantile(0.5) is None
        histogram.observe(0.5)
        histogram.observe(1.5)
        histogram.observe(3.0)
        assert histogram.quantile(0.0) == 0.5  # the recorded minimum
        assert histogram.quantile(1.0) == 3.0  # the recorded maximum
        with pytest.raises(ObsError):
            histogram.quantile(1.5)

    def test_to_dict_carries_percentiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", (1.0, 2.0))
        histogram.observe(0.5)
        state = histogram.to_dict()
        assert {"p50", "p95", "p99"} <= set(state)


class TestGaugeKinds:
    def test_default_kind_is_max_merge(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.gauge("peak").set(10.0)
        right.gauge("peak").set(3.0)
        left.merge(right.snapshot())
        assert left.gauge("peak").value == 10.0

    def test_last_kind_takes_incoming_value(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.gauge("level", kind="last").set(10.0)
        right.gauge("level", kind="last").set(3.0)
        left.merge(right.snapshot())
        # A level (rate, ring version...) is not a peak: last write wins
        # even when it is lower.
        assert left.gauge("level").value == 3.0
        assert right.snapshot()["level"]["kind"] == "last"

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.gauge("g", kind="last")
        with pytest.raises(ObsError):
            registry.gauge("g", kind="max")

    def test_snapshot_without_kind_defaults_to_max(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(5.0)
        old_style = {"g": {"type": "gauge", "value": 9.0}}  # pre-kind writer
        registry.merge(old_style)
        assert registry.gauge("g").value == 9.0


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------
class TestPrometheusExport:
    def test_render_counter_gauge_histogram(self):
        from repro.obs.promexport import render_metrics

        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(5)
        registry.gauge("serve.depth", kind="last").set(2.0)
        histogram = registry.histogram("serve.lat", (0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(5.0)
        page = render_metrics({"s0": registry.snapshot()})
        lines = page.splitlines()
        assert "# TYPE serve_requests_total counter" in lines
        assert 'serve_requests_total{shard="s0"} 5' in lines
        assert 'serve_depth{shard="s0"} 2' in lines
        # Cumulative buckets plus the +Inf catch-all.
        assert 'serve_lat_bucket{shard="s0",le="0.1"} 1' in lines
        assert 'serve_lat_bucket{shard="s0",le="1"} 1' in lines
        assert 'serve_lat_bucket{shard="s0",le="+Inf"} 2' in lines
        assert 'serve_lat_count{shard="s0"} 2' in lines

    def test_type_header_precedes_all_family_series(self):
        from repro.obs.promexport import render_metrics

        left = MetricsRegistry()
        right = MetricsRegistry()
        left.counter("serve.requests").inc(1)
        right.counter("serve.requests").inc(2)
        page = render_metrics(
            {"s0": left.snapshot(), "s1": right.snapshot()}
        )
        lines = page.splitlines()
        header = lines.index("# TYPE serve_requests_total counter")
        assert lines[header + 1 : header + 3] == [
            'serve_requests_total{shard="s0"} 1',
            'serve_requests_total{shard="s1"} 2',
        ]

    def test_unlabeled_block_and_name_sanitisation(self):
        from repro.obs.promexport import prometheus_name, render_metrics

        assert prometheus_name("serve.cluster.ring_version") == (
            "serve_cluster_ring_version"
        )
        page = render_metrics(
            {},
            unlabeled={
                "serve.cluster.shards": {
                    "type": "gauge",
                    "kind": "last",
                    "value": 2,
                }
            },
        )
        assert "serve_cluster_shards 2" in page.splitlines()

    def test_http_exporter_serves_and_stops(self):
        import urllib.request

        from repro.obs.promexport import MetricsExporter

        exporter = MetricsExporter(lambda: "up 1\n", port=0).start()
        try:
            url = f"http://127.0.0.1:{exporter.port}/metrics"
            with urllib.request.urlopen(url) as response:
                assert response.read() == b"up 1\n"
                assert response.headers["Content-Type"].startswith(
                    "text/plain"
                )
            with pytest.raises(Exception):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{exporter.port}/nope"
                )
        finally:
            exporter.stop()
