"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.netlist import save_blif
from repro.circuits import load_circuit


class TestSubcommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cm85" in out and "k2" in out

    def test_info_benchmark(self, capsys):
        assert main(["info", "decod"]) == 0
        out = capsys.readouterr().out
        assert "inputs:      5" in out
        assert "gates:" in out

    def test_info_blif_file(self, tmp_path, capsys):
        path = tmp_path / "decod.blif"
        save_blif(load_circuit("decod"), str(path))
        assert main(["info", str(path)]) == 0
        assert "inputs:      5" in capsys.readouterr().out

    def test_build(self, capsys):
        assert main(["build", "decod", "--max-nodes", "100"]) == 0
        out = capsys.readouterr().out
        assert "final nodes:" in out
        assert "max C:" in out

    def test_build_max_strategy(self, capsys):
        assert main(["build", "decod", "--strategy", "max"]) == 0
        assert "strategy:     max" in capsys.readouterr().out

    def test_evaluate(self, capsys):
        code = main(
            [
                "evaluate",
                "decod",
                "--sequence-length",
                "200",
                "--train-length",
                "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ADD" in out and "Con" in out and "Lin" in out

    def test_bound_conservative_exit_code(self, capsys):
        code = main(["bound", "decod", "--samples", "100"])
        assert code == 0
        out = capsys.readouterr().out
        assert "violations:      0" in out

    def test_unknown_circuit_reports_error(self, capsys):
        assert main(["info", "nonesuch"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestNewSubcommands:
    def test_worst_case(self, capsys):
        assert main(["worst-case", "decod"]) == 0
        out = capsys.readouterr().out
        assert "x_i:" in out and "gate-level:" in out

    def test_activity(self, capsys):
        assert main(["activity", "decod", "--sp", "0.5", "--st", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "average switching capacitance" in out
        assert "P(rising)" in out

    def test_save_and_eval_model(self, tmp_path, capsys):
        path = tmp_path / "decod.json"
        assert main(["save-model", "decod", str(path)]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["eval-model", str(path)]) == 0
        out = capsys.readouterr().out
        assert "macro:    decod" in out

    def test_eval_model_with_transition(self, tmp_path, capsys):
        path = tmp_path / "decod.json"
        main(["save-model", "decod", str(path)])
        capsys.readouterr()
        assert main(["eval-model", str(path), "--transition", "0000011111"]) == 0
        assert "C(x_i, x_f)" in capsys.readouterr().out

    def test_eval_model_bad_transition_width(self, tmp_path, capsys):
        path = tmp_path / "decod.json"
        main(["save-model", "decod", str(path)])
        capsys.readouterr()
        assert main(["eval-model", str(path), "--transition", "01"]) == 2

    def test_iscas_path(self, tmp_path, capsys):
        from tests.test_iscas import C17

        path = tmp_path / "c17.isc"
        path.write_text(C17)
        assert main(["info", str(path)]) == 0
        assert "inputs:      5" in capsys.readouterr().out


class TestTelemetry:
    def test_stats_prints_report(self, capsys):
        assert main(["stats", "decod", "--pairs", "64"]) == 0
        out = capsys.readouterr().out
        assert "=== telemetry: decod ===" in out
        for prefix in ("add.build.count", "dd.apply.cache_hits",
                       "compiled.eval.rows", "sim.patterns"):
            assert prefix in out
        assert "span profile" in out
        assert "max |ADD - gate-level| = 0" in out

    def test_stats_writes_trace_and_metrics(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "stats",
                "decod",
                "--pairs",
                "64",
                "--trace",
                str(trace),
                "--metrics",
                str(metrics),
            ]
        )
        assert code == 0
        events = json.loads(trace.read_text())["traceEvents"]
        assert {e["name"] for e in events} >= {"add.build", "sim.pairs"}
        payload = json.loads(metrics.read_text())
        assert payload["format"] == "repro-metrics"
        names = payload["metrics"]
        for prefix in ("dd.apply.", "add.build.", "compiled.eval.", "sim."):
            assert any(n.startswith(prefix) for n in names), prefix

    def test_trace_flag_on_other_subcommands(self, tmp_path, capsys):
        import json

        trace = tmp_path / "build-trace.json"
        assert main(["build", "decod", "--trace", str(trace)]) == 0
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(e["name"] == "add.build" for e in events)
        # The global tracer must be restored to the no-op afterwards.
        from repro.obs import get_tracer

        assert not get_tracer().enabled

    def test_fuzz_metrics_flag(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "fuzz-metrics.json"
        code = main(
            ["fuzz", "--iterations", "2", "--metrics", str(metrics)]
        )
        assert code == 0
        payload = json.loads(metrics.read_text())
        assert payload["metrics"]["fuzz.iterations"]["value"] == 2
        assert "fuzz.failures" in payload["metrics"]
