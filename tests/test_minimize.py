"""Tests for the two-level SOP minimiser."""

from __future__ import annotations

import itertools

import pytest

from repro.errors import NetlistError
from repro.netlist import Cover, minterm_cover
from repro.netlist.minimize import (
    cube_contains,
    cubes_intersect,
    expand_cubes,
    irredundant,
    literal_count,
    merge_distance_one,
    minimize_cover,
    remove_contained,
)


class TestCubeOps:
    def test_containment(self):
        assert cube_contains("1--", "10-")
        assert cube_contains("---", "010")
        assert not cube_contains("10-", "1--")
        assert not cube_contains("0--", "1--")

    def test_intersection(self):
        assert cubes_intersect("1-0", "-00")
        assert not cubes_intersect("1-0", "0--")

    def test_merge_distance_one(self):
        assert merge_distance_one("100", "110") == "1-0"
        assert merge_distance_one("10-", "11-") == "1--"
        assert merge_distance_one("100", "111") is None  # distance 2
        assert merge_distance_one("1-0", "110") is None  # dc mismatch
        assert merge_distance_one("100", "100") is None  # identical

    def test_merge_width_checked(self):
        with pytest.raises(NetlistError):
            merge_distance_one("10", "100")

    def test_remove_contained(self):
        kept = remove_contained(["1--", "10-", "111", "0-0"])
        assert "1--" in kept
        assert "10-" not in kept and "111" not in kept
        assert "0-0" in kept

    def test_literal_count(self):
        assert literal_count(["1-0", "---", "111"]) == 5


class TestExpansion:
    def test_full_cube_from_all_minterms(self):
        cubes = ["".join(bits) for bits in itertools.product("01", repeat=3)]
        assert expand_cubes(cubes) == ["---"]

    def test_xor_does_not_collapse(self):
        # XOR's minterms are pairwise distance >= 2: nothing merges.
        assert sorted(expand_cubes(["01", "10"])) == ["01", "10"]

    def test_adjacent_pair_merges(self):
        assert expand_cubes(["00", "01"]) == ["0-"]


class TestIrredundant:
    def test_redundant_middle_cube_dropped(self):
        # classic: ab + a'c + bc — the consensus term bc is redundant?
        # No: bc is the redundant one only when both others kept; check
        # cover stays functionally identical and not larger.
        cubes = ["11-", "0-1", "-11"]
        reduced = irredundant(cubes, 3)
        cover = Cover(3, tuple(cubes))
        reduced_cover = Cover(3, tuple(reduced))
        for bits in itertools.product((0, 1), repeat=3):
            assert cover.evaluate(list(bits)) == reduced_cover.evaluate(list(bits))
        assert len(reduced) <= len(cubes)
        assert "-11" not in reduced

    def test_wide_covers_passed_through(self):
        cubes = ["1" + "-" * 17]
        assert irredundant(cubes, 18) == cubes


class TestMinimizeCover:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_function_preserved_on_random_covers(self, width):
        import random

        rng = random.Random(width)
        for _ in range(25):
            cubes = []
            for _ in range(rng.randint(1, 6)):
                cubes.append(
                    "".join(rng.choice("01-") for _ in range(width))
                )
            cover = Cover(width, tuple(cubes))
            reduced = minimize_cover(cover)
            for bits in itertools.product((0, 1), repeat=width):
                assert cover.evaluate(list(bits)) == reduced.evaluate(
                    list(bits)
                ), (cubes, reduced.cubes, bits)

    def test_literals_never_increase(self):
        import random

        rng = random.Random(99)
        for _ in range(25):
            width = rng.randint(2, 5)
            cubes = [
                "".join(rng.choice("01-") for _ in range(width))
                for _ in range(rng.randint(1, 8))
            ]
            cover = Cover(width, tuple(cubes))
            reduced = minimize_cover(cover)
            assert literal_count(reduced.cubes) <= literal_count(cover.cubes)

    def test_minterm_cover_of_and(self):
        cover = minterm_cover(2, [3])
        assert minimize_cover(cover).cubes == ("11",)

    def test_full_function_collapses_to_tautology_cube(self):
        cover = minterm_cover(2, [0, 1, 2, 3])
        assert minimize_cover(cover).cubes == ("--",)

    def test_polarity_preserved(self):
        cover = Cover(2, ("00", "01"), covers_onset=False)
        reduced = minimize_cover(cover)
        assert not reduced.covers_onset
        for bits in itertools.product((0, 1), repeat=2):
            assert cover.evaluate(list(bits)) == reduced.evaluate(list(bits))

    def test_empty_cover_unchanged(self):
        cover = Cover(3, ())
        assert minimize_cover(cover) is cover
