"""Property-based tests for serialization, reordering, activity and workloads."""

from __future__ import annotations

import io
import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dd import DDManager
from repro.dd.reorder import transfer
from repro.models import build_add_model
from repro.models.serialize import dump_model, load_model
from repro.netlist.gates import GateOp
from repro.netlist.synth import NetlistBuilder

NUM_VARS = 4


# Reuse the expression strategy shape from test_properties.
def expression(depth=2):
    base = st.tuples(st.just("var"), st.integers(0, NUM_VARS - 1))
    if depth == 0:
        return base
    sub = expression(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.just("not"), sub),
        st.tuples(st.just("and"), sub, sub),
        st.tuples(st.just("or"), sub, sub),
        st.tuples(st.just("xor"), sub, sub),
    )


def build_bdd(manager, expr):
    kind = expr[0]
    if kind == "var":
        return manager.var(expr[1])
    if kind == "not":
        return manager.bdd_not(build_bdd(manager, expr[1]))
    left = build_bdd(manager, expr[1])
    right = build_bdd(manager, expr[2])
    if kind == "and":
        return manager.bdd_and(left, right)
    if kind == "or":
        return manager.bdd_or(left, right)
    return manager.bdd_xor(left, right)


@st.composite
def small_netlist(draw):
    num_inputs = draw(st.integers(min_value=2, max_value=3))
    builder = NetlistBuilder("prop2", share_structure=False)
    nets = builder.bus("x", num_inputs)
    ops = [GateOp.AND, GateOp.OR, GateOp.XOR, GateOp.INV, GateOp.NAND]
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        op = draw(st.sampled_from(ops))
        if op is GateOp.INV:
            operands = [nets[draw(st.integers(0, len(nets) - 1))]]
        else:
            a = draw(st.integers(0, len(nets) - 1))
            b = draw(st.integers(0, len(nets) - 1))
            if a == b:
                b = (b + 1) % len(nets)
            operands = [nets[a], nets[b]]
        nets.append(builder.gate(op, operands))
    used = set()
    for gate in builder.netlist.gates:
        used.update(gate.inputs)
    for net in nets:
        if net not in used and not builder.netlist.is_primary_input(net):
            builder.netlist.add_output(net)
    if not builder.netlist.outputs:
        builder.netlist.add_output(nets[-1])
    return builder.build()


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(small_netlist(), st.integers(min_value=2, max_value=40))
def test_serialization_roundtrip_preserves_all_values(netlist, max_nodes):
    model = build_add_model(netlist, max_nodes=max_nodes)
    stream = io.StringIO()
    dump_model(model, stream)
    stream.seek(0)
    again = load_model(stream)
    n = netlist.num_inputs
    for initial in itertools.product((0, 1), repeat=n):
        for final in itertools.product((0, 1), repeat=n):
            assert again.switching_capacitance(initial, final) == \
                model.switching_capacitance(initial, final)


@settings(max_examples=30, deadline=None)
@given(expression(), st.randoms(use_true_random=False))
def test_transfer_preserves_semantics_under_random_orders(expr, rnd):
    manager = DDManager(NUM_VARS)
    node = build_bdd(manager, expr)
    order = sorted(manager.support(node))
    rnd.shuffle(order)
    target, new_node = transfer(manager, node, order)
    for bits in itertools.product((0, 1), repeat=NUM_VARS):
        projected = [bits[v] for v in order]
        assert target.evaluate(new_node, projected) == manager.evaluate(
            node, list(bits)
        )


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(small_netlist())
def test_exact_activity_matches_model_expectation(netlist):
    from repro.sim.activity import exact_activity

    model = build_add_model(netlist)
    for sp, st_value in ((0.5, 0.5), (0.4, 0.3)):
        analytic = exact_activity(netlist, sp, st_value)
        assert analytic.average_capacitance_fF == pytest.approx(
            model.expected_capacitance(sp, st_value), rel=1e-9, abs=1e-9
        )


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(small_netlist())
def test_worst_case_extraction_attains_global_maximum(netlist):
    model = build_add_model(netlist)
    initial, final, value = model.worst_case_transition()
    from repro.sim import switching_capacitance

    assert switching_capacitance(netlist, initial, final) == pytest.approx(value)
    assert value == pytest.approx(model.global_maximum())


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=2, max_value=30),
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=1, max_value=5),
)
def test_counter_sequence_is_deterministic_arithmetic(num_bits, length, start, stride):
    from repro.sim import counter_sequence

    sequence = counter_sequence(num_bits, length, start=start, stride=stride)
    mask = (1 << num_bits) - 1
    for t in range(length):
        value = sum(
            int(sequence[t, num_bits - 1 - k]) << k for k in range(num_bits)
        )
        assert value == (start + t * stride) & mask


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(small_netlist())
def test_minimized_blif_roundtrip_equivalent(netlist):
    from repro.netlist import check_equivalent, parse_blif, write_blif

    again = parse_blif(write_blif(netlist), minimize=True)
    assert check_equivalent(netlist, again)
