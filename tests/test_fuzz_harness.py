"""The fuzzing harness: generator, checks, shrinker, corpus, driver, CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.errors import FuzzError
from repro.testing import (
    CHECKS,
    FuzzCase,
    FuzzConfig,
    Mismatch,
    case_from_dict,
    case_to_dict,
    load_case,
    make_case,
    resolve_checks,
    run_case,
    run_fuzz,
    save_case,
    shrink_case,
)
from repro.testing.generate import (
    GenParams,
    build_fuzz_netlist,
    case_features,
    random_params,
)


def _structure(netlist):
    return (
        tuple(netlist.inputs),
        tuple(netlist.outputs),
        netlist.output_load_fF,
        tuple(
            (g.name, g.cell.op, g.cell.input_capacitance_fF, g.inputs, g.output)
            for g in netlist.gates
        ),
    )


class TestGenerator:
    def test_deterministic(self):
        params = GenParams(num_inputs=5, num_gates=15)
        first = build_fuzz_netlist(params, 123)
        second = build_fuzz_netlist(params, 123)
        assert _structure(first) == _structure(second)

    def test_different_seeds_differ(self):
        params = GenParams(num_inputs=5, num_gates=15)
        assert _structure(build_fuzz_netlist(params, 1)) != _structure(
            build_fuzz_netlist(params, 2)
        )

    def test_netlists_are_well_formed(self):
        import random

        rng = random.Random(9)
        for seed in range(30):
            netlist = build_fuzz_netlist(random_params(rng), seed)
            assert netlist.num_gates >= 1
            assert netlist.outputs
            netlist.topological_order()  # raises on malformed structure

    def test_make_case_deterministic(self):
        params = GenParams(num_inputs=3, num_gates=6)
        a = make_case(params, 77)
        b = make_case(params, 77)
        assert np.array_equal(a.initial, b.initial)
        assert np.array_equal(a.final, b.final)
        assert np.array_equal(a.sequence, b.sequence)
        assert a.max_nodes == b.max_nodes

    def test_case_features_flags_corners(self):
        netlist = build_fuzz_netlist(
            GenParams(num_inputs=2, num_gates=3, output_load_fF=0.0), 5
        )
        features = case_features(netlist)
        assert features[4] is True  # zero output load flagged


class TestChecks:
    def test_clean_case_passes_all_checks(self):
        case = make_case(GenParams(num_inputs=3, num_gates=7), 42)
        mismatches, ctx = run_case(case)
        assert mismatches == []
        assert "model_nodes" in ctx.observed

    def test_resolve_rejects_unknown(self):
        with pytest.raises(FuzzError, match="unknown checks"):
            resolve_checks(["logic_sim", "nope"])

    def test_check_subset_runs_only_selected(self):
        case = make_case(GenParams(num_inputs=2, num_gates=4), 8)
        mismatches, ctx = run_case(case, ["logic_sim", "power_sim"])
        assert mismatches == []
        assert "model_nodes" not in ctx.observed  # model checks skipped

    def test_crash_becomes_error_typed_mismatch(self, monkeypatch):
        case = make_case(GenParams(num_inputs=2, num_gates=4), 8)

        def boom(ctx):
            raise ValueError("injected")

        monkeypatch.setitem(CHECKS, "logic_sim", boom)
        mismatches, _ = run_case(case, ["logic_sim"])
        assert len(mismatches) == 1
        assert mismatches[0].error_type == "ValueError"

    def test_same_failure_distinguishes_error_types(self):
        a = Mismatch("power_sim", "x", error_type=None)
        b = Mismatch("power_sim", "y", error_type=None)
        c = Mismatch("power_sim", "z", error_type="ValueError")
        d = Mismatch("exact_model", "w", error_type=None)
        assert a.same_failure(b)
        assert not a.same_failure(c)
        assert not a.same_failure(d)


class TestShrinker:
    def test_shrinks_synthetic_failure(self):
        """A fake bug (any XOR gate present) shrinks to a tiny netlist."""
        case = make_case(GenParams(num_inputs=5, num_gates=20), 31)
        from repro.netlist.gates import GateOp

        def runner(candidate):
            if any(g.cell.op is GateOp.XOR for g in candidate.netlist.gates):
                return Mismatch("fake", "has xor")
            return None

        original = runner(case)
        if original is None:
            pytest.skip("seed produced no XOR gate")
        shrunk = shrink_case(case, runner, original)
        assert runner(shrunk) is not None
        assert shrunk.netlist.num_gates <= 2
        assert shrunk.num_pairs == 1
        assert shrunk.sequence.shape[0] <= 2

    def test_rejects_different_failure_mode(self):
        """Shrinking never trades the original bug for a different one."""
        case = make_case(GenParams(num_inputs=4, num_gates=10), 13)
        full = case.netlist.num_gates

        def runner(candidate):
            if candidate.netlist.num_gates == full:
                return Mismatch("fake", "original", error_type=None)
            # Every smaller netlist "fails" differently (like a crash).
            return Mismatch("fake", "crash", error_type="ValueError")

        original = Mismatch("fake", "original", error_type=None)
        shrunk = shrink_case(case, runner, original)
        assert shrunk.netlist.num_gates == full  # nothing accepted

    def test_drops_unused_inputs(self):
        netlist = build_fuzz_netlist(GenParams(num_inputs=6, num_gates=3), 2)
        rng = np.random.default_rng(0)
        case = FuzzCase(
            netlist=netlist,
            seed=2,
            initial=rng.integers(0, 2, (4, 6)).astype(bool),
            final=rng.integers(0, 2, (4, 6)).astype(bool),
            sequence=rng.integers(0, 2, (3, 6)).astype(bool),
        )

        def runner(candidate):
            return Mismatch("fake", "always")

        shrunk = shrink_case(case, runner, Mismatch("fake", "always"))
        assert shrunk.netlist.num_inputs <= netlist.num_inputs
        assert shrunk.initial.shape[1] == shrunk.netlist.num_inputs


class TestCorpus:
    def test_round_trip_preserves_case(self, tmp_path):
        case = make_case(GenParams(num_inputs=3, num_gates=8), 55)
        clone = case_from_dict(case_to_dict(case, note="round trip"))
        assert _structure(clone.netlist) == _structure(case.netlist)
        assert np.array_equal(clone.initial, case.initial)
        assert np.array_equal(clone.final, case.final)
        assert np.array_equal(clone.sequence, case.sequence)
        assert clone.max_nodes == case.max_nodes
        assert clone.checks == case.checks

    def test_save_and_load_file(self, tmp_path):
        case = make_case(GenParams(num_inputs=2, num_gates=5), 66)
        path = save_case(case, tmp_path / "entry.json", note="file round trip")
        data = json.loads(path.read_text())
        assert data["format"] == "repro-fuzz-case"
        assert data["note"] == "file round trip"
        clone = load_case(path)
        assert _structure(clone.netlist) == _structure(case.netlist)

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{\"format\": \"something-else\"}")
        with pytest.raises(FuzzError, match="not a repro-fuzz-case"):
            load_case(path)
        path.write_text("not json at all")
        with pytest.raises(FuzzError, match="invalid JSON"):
            load_case(path)

    def test_undriven_output_rejected_at_load(self):
        """Hand-edited corpus files with broken netlists fail loudly."""
        case = make_case(GenParams(num_inputs=2, num_gates=4), 77)
        data = case_to_dict(case)
        data["outputs"] = ["no_such_net"]
        with pytest.raises(FuzzError, match="invalid netlist"):
            case_from_dict(data)

    def test_replayed_case_runs_same_checks(self):
        case = make_case(
            GenParams(num_inputs=2, num_gates=4), 9, checks=("logic_sim",)
        )
        clone = case_from_dict(case_to_dict(case))
        assert clone.checks == ("logic_sim",)
        mismatches, ctx = run_case(clone)
        assert mismatches == []
        assert "model_nodes" not in ctx.observed


class TestDriver:
    def test_smoke_run_is_clean_and_deterministic(self):
        config = FuzzConfig(seed=5, iterations=12)
        first = run_fuzz(config)
        second = run_fuzz(config)
        assert first.ok and second.ok
        assert first.iterations_run == second.iterations_run == 12
        assert first.features_seen == second.features_seen

    def test_time_budget_truncates(self):
        report = run_fuzz(
            FuzzConfig(seed=5, iterations=10_000, time_budget_seconds=0.5)
        )
        assert report.iterations_run < 10_000
        assert report.ok

    def test_negative_iterations_rejected(self):
        with pytest.raises(FuzzError):
            run_fuzz(FuzzConfig(iterations=-1))


class TestCli:
    def test_fuzz_subcommand(self, capsys):
        assert main(["fuzz", "--seed", "3", "--iterations", "5"]) == 0
        out = capsys.readouterr().out
        assert "5 iterations" in out
        assert "no mismatches" in out

    def test_fuzz_check_selection(self, capsys):
        assert (
            main(
                [
                    "fuzz",
                    "--seed",
                    "3",
                    "--iterations",
                    "4",
                    "--checks",
                    "logic_sim,power_sim",
                ]
            )
            == 0
        )

    def test_fuzz_unknown_check_errors(self, capsys):
        assert main(["fuzz", "--checks", "bogus"]) == 2
        assert "unknown checks" in capsys.readouterr().err

    def test_fuzz_corpus_replay(self, capsys, tmp_path):
        case = make_case(GenParams(num_inputs=2, num_gates=4), 17)
        save_case(case, tmp_path / "one.json")
        assert main(["fuzz", "--corpus", str(tmp_path)]) == 0
        assert "1 case(s) replayed" in capsys.readouterr().out
