"""Tests for NetlistBuilder trees and SOP decomposition."""

from __future__ import annotations

import itertools

import pytest

from repro.errors import NetlistError
from repro.netlist import Cover, NetlistBuilder


class TestTrees:
    @pytest.mark.parametrize("width", [1, 2, 3, 5, 8])
    def test_and_tree_semantics(self, width):
        builder = NetlistBuilder("andtree")
        bits = builder.bus("x", width)
        builder.output("y", builder.and_tree(bits))
        netlist = builder.build()
        for pattern in itertools.product((0, 1), repeat=width):
            expected = int(all(pattern))
            assert netlist.evaluate_outputs(list(pattern))["y"] == expected

    @pytest.mark.parametrize("width", [2, 3, 6])
    def test_or_tree_semantics(self, width):
        builder = NetlistBuilder("ortree")
        bits = builder.bus("x", width)
        builder.output("y", builder.or_tree(bits))
        netlist = builder.build()
        for pattern in itertools.product((0, 1), repeat=width):
            assert netlist.evaluate_outputs(list(pattern))["y"] == int(any(pattern))

    @pytest.mark.parametrize("width", [2, 4, 7])
    def test_xor_tree_semantics(self, width):
        builder = NetlistBuilder("xortree")
        bits = builder.bus("x", width)
        builder.output("y", builder.xor_tree(bits))
        netlist = builder.build()
        for pattern in itertools.product((0, 1), repeat=width):
            assert (
                netlist.evaluate_outputs(list(pattern))["y"] == sum(pattern) % 2
            )

    def test_tree_is_balanced(self):
        builder = NetlistBuilder("bal")
        bits = builder.bus("x", 8)
        builder.output("y", builder.and_tree(bits))
        assert builder.build().depth() <= 4  # log2(8) + output buffer

    def test_empty_tree_rejected(self):
        builder = NetlistBuilder("empty")
        with pytest.raises(NetlistError):
            builder.and_tree([])


class TestSOP:
    def evaluate_sop(self, cubes, width, invert=False):
        builder = NetlistBuilder("sop")
        bits = builder.bus("x", width)
        builder.output("y", builder.sop(bits, cubes, invert=invert))
        netlist = builder.build()
        cover = Cover(width, tuple(cubes), covers_onset=not invert)
        for pattern in itertools.product((0, 1), repeat=width):
            got = netlist.evaluate_outputs(list(pattern))["y"]
            assert got == cover.evaluate(list(pattern)), (cubes, pattern)

    def test_single_cube(self):
        self.evaluate_sop(["1-0"], 3)

    def test_multi_cube(self):
        self.evaluate_sop(["11-", "--1", "0-0"], 3)

    def test_inverted_cover(self):
        self.evaluate_sop(["1-"], 2, invert=True)

    def test_empty_cover_is_constant_zero(self):
        builder = NetlistBuilder("zero")
        bits = builder.bus("x", 2)
        builder.output("y", builder.sop(bits, []))
        netlist = builder.build()
        assert netlist.evaluate_outputs([1, 1])["y"] == 0

    def test_all_dontcare_cube_is_constant_one(self):
        builder = NetlistBuilder("one")
        bits = builder.bus("x", 2)
        builder.output("y", builder.sop(bits, ["--"]))
        netlist = builder.build()
        assert netlist.evaluate_outputs([0, 0])["y"] == 1

    def test_cube_width_validated(self):
        builder = NetlistBuilder("bad")
        bits = builder.bus("x", 2)
        with pytest.raises(NetlistError):
            builder.sop(bits, ["1"])

    def test_bad_cube_character(self):
        builder = NetlistBuilder("badchar")
        bits = builder.bus("x", 2)
        with pytest.raises(NetlistError):
            builder.sop(bits, ["1z"])


class TestOutputs:
    def test_output_renames_via_buffer(self):
        builder = NetlistBuilder("rename")
        a = builder.input("a")
        internal = builder.inv(a)
        builder.output("y", internal)
        netlist = builder.build()
        assert "y" in netlist.outputs
        assert netlist.evaluate_outputs([0])["y"] == 1

    def test_fresh_nets_unique(self):
        builder = NetlistBuilder("fresh")
        assert builder.fresh_net() != builder.fresh_net()
