"""Unit tests for the hash-consed DD manager (BDD and ADD semantics)."""

from __future__ import annotations

import itertools

import pytest

from repro.dd import DDManager
from repro.errors import DDError, NotBooleanError, VariableOrderError


@pytest.fixture
def m() -> DDManager:
    return DDManager(4, ["a", "b", "c", "d"])


def all_assignments(num_vars):
    return list(itertools.product((0, 1), repeat=num_vars))


class TestNodeStore:
    def test_terminals_are_hash_consed(self, m):
        assert m.terminal(2.5) == m.terminal(2.5)
        assert m.terminal(0.0) == m.zero
        assert m.terminal(1.0) == m.one

    def test_terminal_rounding_merges_float_noise(self, m):
        assert m.terminal(0.1 + 0.2) == m.terminal(0.3)

    def test_negative_zero_is_zero(self, m):
        assert m.terminal(-0.0) == m.zero

    def test_redundant_node_collapses_to_child(self, m):
        assert m.node(0, m.one, m.one) == m.one

    def test_structural_sharing(self, m):
        u = m.node(1, m.zero, m.one)
        v = m.node(1, m.zero, m.one)
        assert u == v

    def test_children_must_be_below(self, m):
        upper = m.var(0)
        with pytest.raises(VariableOrderError):
            m.node(2, upper, m.one)

    def test_var_index_range_checked(self, m):
        with pytest.raises(VariableOrderError):
            m.node(7, m.zero, m.one)

    def test_add_var_extends_order(self, m):
        index = m.add_var("e")
        assert index == 4
        assert m.var_names[4] == "e"
        assert m.evaluate(m.var(4), [0, 0, 0, 0, 1]) == 1.0

    def test_negative_num_vars_rejected(self):
        with pytest.raises(DDError):
            DDManager(-1)

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(DDError):
            DDManager(2, ["only_one"])


class TestBooleanOps:
    def test_truth_tables_of_binary_ops(self, m):
        a, b = m.var(0), m.var(1)
        cases = {
            m.bdd_and(a, b): lambda x, y: x and y,
            m.bdd_or(a, b): lambda x, y: x or y,
            m.bdd_xor(a, b): lambda x, y: x != y,
        }
        for node, func in cases.items():
            for x, y in itertools.product((0, 1), repeat=2):
                expected = float(func(x, y))
                assert m.evaluate(node, [x, y, 0, 0]) == expected

    def test_not_involution(self, m):
        f = m.bdd_and(m.var(0), m.bdd_or(m.var(1), m.var(2)))
        assert m.bdd_not(m.bdd_not(f)) == f

    def test_not_of_constants(self, m):
        assert m.bdd_not(m.zero) == m.one
        assert m.bdd_not(m.one) == m.zero

    def test_not_rejects_general_add(self, m):
        with pytest.raises(NotBooleanError):
            m.bdd_not(m.terminal(3.0))

    def test_demorgan(self, m):
        a, b = m.var(0), m.var(1)
        left = m.bdd_not(m.bdd_and(a, b))
        right = m.bdd_or(m.bdd_not(a), m.bdd_not(b))
        assert left == right

    def test_canonicity_across_construction_orders(self, m):
        a, b, c = m.var(0), m.var(1), m.var(2)
        one = m.bdd_or(m.bdd_and(a, b), c)
        two = m.bdd_or(c, m.bdd_and(b, a))
        assert one == two

    def test_ite_matches_mux_semantics(self, m):
        s, g, h = m.var(0), m.var(1), m.var(2)
        node = m.ite(s, g, h)
        for x in all_assignments(3):
            expected = float(x[1] if x[0] else x[2])
            assert m.evaluate(node, list(x) + [0]) == expected

    def test_ite_with_add_branches(self, m):
        node = m.ite(m.var(0), m.terminal(5.0), m.terminal(2.0))
        assert m.evaluate(node, [1, 0, 0, 0]) == 5.0
        assert m.evaluate(node, [0, 0, 0, 0]) == 2.0


class TestArithmeticOps:
    def test_plus_times_max_min_pointwise(self, m):
        f = m.ite(m.var(0), m.terminal(4.0), m.terminal(1.0))
        g = m.ite(m.var(1), m.terminal(10.0), m.terminal(3.0))
        combos = {
            m.add_plus(f, g): lambda x, y: x + y,
            m.add_times(f, g): lambda x, y: x * y,
            m.add_max(f, g): max,
            m.add_min(f, g): min,
            m.add_minus(f, g): lambda x, y: x - y,
        }
        for node, op in combos.items():
            for a, b in itertools.product((0, 1), repeat=2):
                fv = 4.0 if a else 1.0
                gv = 10.0 if b else 3.0
                assert m.evaluate(node, [a, b, 0, 0]) == pytest.approx(op(fv, gv))

    def test_const_times(self, m):
        f = m.var(0)
        node = m.add_const_times(f, 7.5)
        assert m.evaluate(node, [1, 0, 0, 0]) == 7.5
        assert m.evaluate(node, [0, 0, 0, 0]) == 0.0

    def test_plus_identity_and_times_annihilator(self, m):
        f = m.bdd_and(m.var(0), m.var(1))
        assert m.add_plus(f, m.zero) == f
        assert m.add_times(f, m.zero) == m.zero
        assert m.add_times(f, m.one) == f

    def test_to_01_thresholds(self, m):
        f = m.ite(m.var(0), m.terminal(4.0), m.terminal(1.0))
        bdd = m.to_01(f, threshold=2.0)
        assert m.evaluate(bdd, [1, 0, 0, 0]) == 1.0
        assert m.evaluate(bdd, [0, 0, 0, 0]) == 0.0
        assert m.is_boolean(bdd)


class TestStructuralOps:
    def test_restrict_cofactors(self, m):
        f = m.bdd_and(m.var(0), m.var(1))
        assert m.restrict(f, 0, True) == m.var(1)
        assert m.restrict(f, 0, False) == m.zero

    def test_restrict_independent_var_is_identity(self, m):
        f = m.bdd_and(m.var(0), m.var(1))
        assert m.restrict(f, 3, True) == f

    def test_rename_shifts_support(self, m):
        f = m.bdd_and(m.var(0), m.var(1))
        g = m.rename(f, {0: 2, 1: 3})
        assert m.support(g) == {2, 3}
        for x in all_assignments(4):
            assert m.evaluate(g, list(x)) == m.evaluate(f, [x[2], x[3], 0, 0])

    def test_rename_rejects_non_monotone(self, m):
        f = m.bdd_and(m.var(0), m.var(1))
        with pytest.raises(VariableOrderError):
            m.rename(f, {0: 3, 1: 2})

    def test_exists_and_forall(self, m):
        f = m.bdd_and(m.var(0), m.var(1))
        assert m.exists(f, [0]) == m.var(1)
        assert m.forall(f, [0]) == m.zero
        g = m.bdd_or(m.var(0), m.var(1))
        assert m.forall(g, [0]) == m.var(1)

    def test_support_and_size(self, m):
        f = m.bdd_and(m.var(0), m.var(2))
        assert m.support(f) == {0, 2}
        # two internal nodes + two terminals
        assert m.size(f) == 4
        assert m.internal_size(f) == 2

    def test_cofactors_on_skipped_level(self, m):
        f = m.var(2)
        lo, hi = m.cofactors(f, 0)
        assert lo == f and hi == f


class TestEvaluationAndCounting:
    def test_evaluate_constant(self, m):
        assert m.evaluate(m.terminal(9.0), [0, 0, 0, 0]) == 9.0

    def test_evaluate_short_assignment_raises(self, m):
        f = m.var(3)
        with pytest.raises(DDError):
            m.evaluate(f, [0, 0])

    def test_sat_count_simple(self, m):
        a, b = m.var(0), m.var(1)
        assert m.sat_count(m.bdd_and(a, b)) == 4.0    # 1 * 2^2 free vars
        assert m.sat_count(m.bdd_or(a, b)) == 12.0
        assert m.sat_count(m.one) == 16.0
        assert m.sat_count(m.zero) == 0.0

    def test_sat_count_respects_num_vars_argument(self, m):
        f = m.bdd_and(m.var(0), m.var(1))
        assert m.sat_count(f, num_vars=2) == 1.0

    def test_sat_count_rejects_adds(self, m):
        with pytest.raises(NotBooleanError):
            m.sat_count(m.terminal(2.0))

    def test_leaves(self, m):
        f = m.ite(m.var(0), m.terminal(4.0), m.terminal(1.0))
        assert m.leaves(f) == {1.0, 4.0}

    def test_value_of_internal_node_raises(self, m):
        with pytest.raises(DDError):
            m.value(m.var(0))


class TestConstructors:
    def test_from_truth_table(self, m):
        # f(a, b) = a XOR b as an explicit table (a is MSB).
        node = m.from_truth_table([0, 1], [0.0, 1.0, 1.0, 0.0])
        assert node == m.bdd_xor(m.var(0), m.var(1))

    def test_from_truth_table_add_values(self, m):
        node = m.from_truth_table([1], [2.5, 7.0])
        assert m.evaluate(node, [0, 0, 0, 0]) == 2.5
        assert m.evaluate(node, [0, 1, 0, 0]) == 7.0

    def test_from_truth_table_validates_length(self, m):
        with pytest.raises(DDError):
            m.from_truth_table([0, 1], [1.0, 2.0])

    def test_from_truth_table_requires_sorted_vars(self, m):
        with pytest.raises(VariableOrderError):
            m.from_truth_table([1, 0], [0.0, 0.0, 0.0, 1.0])

    def test_cube(self, m):
        node = m.cube({0: True, 2: False})
        for x in all_assignments(4):
            expected = float(x[0] == 1 and x[2] == 0)
            assert m.evaluate(node, list(x)) == expected

    def test_nvar(self, m):
        assert m.nvar(1) == m.bdd_not(m.var(1))


class TestCaches:
    def test_clear_caches_keeps_semantics(self, m):
        f = m.bdd_and(m.var(0), m.var(1))
        m.clear_caches()
        g = m.bdd_and(m.var(0), m.var(1))
        assert f == g  # unique table survives; results stay canonical


class TestEvaluateBatch:
    def test_matches_per_row_evaluation(self, m):
        import numpy as np

        f = m.add_plus(
            m.add_const_times(m.bdd_and(m.var(0), m.var(2)), 7.0),
            m.add_const_times(m.bdd_xor(m.var(1), m.var(3)), 3.0),
        )
        rng = np.random.default_rng(5)
        rows = rng.random((50, 4)) < 0.5
        batch = m.evaluate_batch(f, rows)
        for k in range(50):
            assert batch[k] == m.evaluate(f, rows[k].tolist())

    def test_constant_diagram(self, m):
        import numpy as np

        batch = m.evaluate_batch(m.terminal(4.5), np.zeros((3, 4), dtype=bool))
        assert batch.tolist() == [4.5, 4.5, 4.5]

    def test_empty_batch(self, m):
        import numpy as np

        assert m.evaluate_batch(m.var(0), np.zeros((0, 4), dtype=bool)).size == 0

    def test_shape_validated(self, m):
        import numpy as np
        from repro.errors import DDError

        with pytest.raises(DDError):
            m.evaluate_batch(m.var(0), np.zeros(4, dtype=bool))

    def test_missing_column_rejected(self, m):
        import numpy as np
        from repro.errors import DDError

        with pytest.raises(DDError):
            m.evaluate_batch(m.var(3), np.zeros((2, 2), dtype=bool))
