"""Tests for the experiment-report generator."""

from __future__ import annotations

import os

from repro.eval.report import (
    EXPERIMENTS,
    load_sections,
    main,
    render_report,
    write_report,
)


class TestReport:
    def test_missing_artifacts_flagged(self, tmp_path):
        sections = load_sections(str(tmp_path))
        assert len(sections) == len(EXPERIMENTS)
        assert all(section.missing for section in sections)
        text = render_report(str(tmp_path))
        assert f"Artifacts present: 0/{len(EXPERIMENTS)}" in text

    def test_present_artifact_included_verbatim(self, tmp_path):
        (tmp_path / "fig7a_re_vs_st.txt").write_text("SOME TABLE CONTENT")
        text = render_report(str(tmp_path))
        assert "SOME TABLE CONTENT" in text
        assert f"Artifacts present: 1/{len(EXPERIMENTS)}" in text

    def test_every_experiment_has_section(self, tmp_path):
        text = render_report(str(tmp_path))
        for stem, title, artifact, _ in EXPERIMENTS:
            assert title in text
            assert artifact in text

    def test_write_report(self, tmp_path):
        (tmp_path / "table1_average.txt").write_text("table body")
        output = tmp_path / "EXPERIMENTS.md"
        path = write_report(str(tmp_path), str(output))
        assert os.path.exists(path)
        assert "table body" in output.read_text()

    def test_cli_entry(self, tmp_path, capsys):
        output = tmp_path / "out.md"
        assert main([str(tmp_path), str(output)]) == 0
        assert output.exists()
        assert "wrote" in capsys.readouterr().out
