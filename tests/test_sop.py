"""Tests for SOP cover representation."""

from __future__ import annotations

import itertools

import pytest

from repro.errors import NetlistError
from repro.netlist import Cover, minterm_cover


class TestCover:
    def test_onset_evaluation(self):
        cover = Cover(3, ("1-0", "-11"))
        assert cover.evaluate([1, 0, 0]) == 1
        assert cover.evaluate([0, 1, 1]) == 1
        assert cover.evaluate([0, 0, 0]) == 0

    def test_offset_polarity(self):
        cover = Cover(2, ("1-",), covers_onset=False)
        assert cover.evaluate([1, 0]) == 0
        assert cover.evaluate([0, 1]) == 1

    def test_width_validated(self):
        with pytest.raises(NetlistError):
            Cover(3, ("10",))

    def test_characters_validated(self):
        with pytest.raises(NetlistError):
            Cover(2, ("1x",))

    def test_assignment_width_validated(self):
        cover = Cover(2, ("11",))
        with pytest.raises(NetlistError):
            cover.evaluate([1])

    def test_constant_covers(self):
        one = Cover.constant(True)
        zero = Cover.constant(False)
        assert one.evaluate([]) == 1
        assert zero.evaluate([]) == 0

    def test_num_literals(self):
        cover = Cover(3, ("1-0", "---", "111"))
        assert cover.num_literals == 5

    def test_complement_polarity(self):
        cover = Cover(2, ("10",))
        flipped = cover.complement_polarity()
        for bits in itertools.product((0, 1), repeat=2):
            assert flipped.evaluate(list(bits)) == 1 - cover.evaluate(list(bits))


class TestMintermCover:
    def test_matches_indices(self):
        cover = minterm_cover(3, [0, 5])
        for value in range(8):
            bits = [(value >> (2 - k)) & 1 for k in range(3)]
            assert cover.evaluate(bits) == int(value in (0, 5))

    def test_duplicates_removed(self):
        assert len(minterm_cover(2, [1, 1, 1]).cubes) == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(NetlistError):
            minterm_cover(2, [4])
