"""Tests for ADD power-model serialization."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import build_add_model
from repro.models.serialize import (
    dump_model,
    load_model,
    model_from_dict,
    model_to_dict,
    read_model,
    save_model,
)
from repro.sim import uniform_pairs


def roundtrip(model):
    stream = io.StringIO()
    dump_model(model, stream)
    stream.seek(0)
    return load_model(stream)


class TestRoundTrip:
    def test_exact_model_identical_everywhere(self, fig2_netlist):
        model = build_add_model(fig2_netlist)
        again = roundtrip(model)
        from repro.sim import exhaustive_pairs

        for initial, final in exhaustive_pairs(2):
            assert again.switching_capacitance(initial, final) == \
                model.switching_capacitance(initial, final)

    def test_metadata_preserved(self, fig2_netlist):
        model = build_add_model(fig2_netlist, max_nodes=6, strategy="max")
        again = roundtrip(model)
        assert again.macro_name == model.macro_name
        assert again.strategy == "max"
        assert again.is_upper_bound
        assert again.input_names == model.input_names
        assert again.space.scheme == model.space.scheme
        assert again.report.max_nodes == 6
        assert again.report.num_gates == fig2_netlist.num_gates

    def test_sampled_agreement_on_benchmark(self):
        from repro.circuits import load_circuit

        netlist = load_circuit("cm85")
        model = build_add_model(netlist, max_nodes=300)
        again = roundtrip(model)
        initial, final = uniform_pairs(11, 100, seed=61)
        assert np.array_equal(
            model.pair_capacitances(initial, final),
            again.pair_capacitances(initial, final),
        )

    def test_size_preserved(self, xor_chain_netlist):
        model = build_add_model(xor_chain_netlist)
        assert roundtrip(model).size == model.size

    def test_file_roundtrip(self, fig2_netlist, tmp_path):
        model = build_add_model(fig2_netlist)
        path = tmp_path / "model.json"
        save_model(model, str(path))
        again = read_model(str(path))
        assert again.size == model.size

    def test_input_order_convention_survives(self):
        """A model whose DD order differs from the external order must
        keep evaluating patterns in the external (netlist) convention."""
        from repro.circuits import comparator
        from repro.sim import pair_switching_capacitances

        netlist = comparator(3)
        model = build_add_model(netlist)  # fanin-DFS reorders inputs
        again = roundtrip(model)
        initial, final = uniform_pairs(6, 50, seed=62)
        golden = pair_switching_capacitances(netlist, initial, final)
        assert np.allclose(again.pair_capacitances(initial, final), golden)


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ModelError, match="format"):
            model_from_dict({"format": "something-else", "version": 1})

    def test_wrong_version_rejected(self, fig2_netlist):
        payload = model_to_dict(build_add_model(fig2_netlist))
        payload["version"] = 99
        with pytest.raises(ModelError, match="version"):
            model_from_dict(payload)

    def test_payload_is_json_serialisable(self, fig2_netlist):
        payload = model_to_dict(build_add_model(fig2_netlist))
        json.dumps(payload)  # must not raise

    def test_no_netlist_information_leaks(self, fig2_netlist):
        """The IP check: the payload must not mention gates or nets."""
        payload = model_to_dict(build_add_model(fig2_netlist))
        text = json.dumps(payload)
        for gate in fig2_netlist.gates:
            assert gate.name not in text.replace(payload["macro_name"], "")
        assert "INV" not in text and "OR2" not in text


class TestWorstCaseQueries:
    def test_worst_case_transition_is_attained(self, fig2_netlist):
        from repro.sim import exhaustive_max_capacitance, switching_capacitance

        model = build_add_model(fig2_netlist)
        initial, final, value = model.worst_case_transition()
        assert value == pytest.approx(model.global_maximum())
        # For an exact model the extracted pair truly attains the value.
        assert switching_capacitance(fig2_netlist, initial, final) == \
            pytest.approx(value)
        true_max, _, _ = exhaustive_max_capacitance(fig2_netlist)
        assert value == pytest.approx(true_max)

    def test_quietest_transition(self, fig2_netlist):
        from repro.sim import switching_capacitance

        model = build_add_model(fig2_netlist)
        initial, final, value = model.quietest_transition()
        assert value == pytest.approx(model.global_minimum())
        assert switching_capacitance(fig2_netlist, initial, final) == \
            pytest.approx(value)

    def test_worst_case_on_larger_circuit(self):
        from repro.circuits import parity
        from repro.sim import exhaustive_max_capacitance, switching_capacitance

        netlist = parity(6)
        model = build_add_model(netlist)
        initial, final, value = model.worst_case_transition()
        true_max, _, _ = exhaustive_max_capacitance(netlist)
        assert value == pytest.approx(true_max)
        assert switching_capacitance(netlist, initial, final) == \
            pytest.approx(value)


class TestDotExport:
    def test_model_to_dot(self, fig2_netlist):
        model = build_add_model(fig2_netlist)
        text = model.to_dot()
        assert text.startswith("digraph fig2")
        # Every distinct capacitance level appears as a boxed leaf label.
        for value in model.leaf_values():
            assert f'label="{value:g}"' in text
        assert "style=dashed" in text

    def test_custom_name_sanitised(self, fig2_netlist):
        model = build_add_model(fig2_netlist)
        assert model.to_dot("my-model").startswith("digraph my_model")
