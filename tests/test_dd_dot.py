"""Tests for the DOT export of decision diagrams."""

from __future__ import annotations

import os

from repro.dd import DDManager, to_dot, write_dot


class TestToDot:
    def test_contains_all_nodes_and_edges(self):
        m = DDManager(2, ["a", "b"])
        f = m.add_plus(m.var(0), m.add_const_times(m.var(1), 2.0))
        text = to_dot(m, f, name="test")
        assert text.startswith("digraph test {")
        assert text.rstrip().endswith("}")
        for node in m.iter_nodes(f):
            assert f"n{node}" in text
        # dashed 0-edges and solid 1-edges for every internal node
        assert text.count("style=dashed") == m.internal_size(f)

    def test_variable_names_used_as_labels(self):
        m = DDManager(2, ["alpha", "beta"])
        f = m.bdd_and(m.var(0), m.var(1))
        text = to_dot(m, f)
        assert 'label="alpha"' in text
        assert 'label="beta"' in text

    def test_leaves_are_boxes_with_values(self):
        m = DDManager(1)
        f = m.ite(m.var(0), m.terminal(7.5), m.terminal(0.0))
        text = to_dot(m, f)
        assert 'shape=box, label="7.5"' in text
        assert 'shape=box, label="0"' in text

    def test_rank_same_per_level(self):
        m = DDManager(2)
        f = m.bdd_xor(m.var(0), m.var(1))
        text = to_dot(m, f)
        # XOR has two var-1 nodes on one rank.
        rank_lines = [l for l in text.splitlines() if "rank=same" in l]
        assert len(rank_lines) == 2

    def test_write_dot_roundtrip(self, tmp_path):
        m = DDManager(2)
        f = m.bdd_or(m.var(0), m.var(1))
        path = tmp_path / "f.dot"
        write_dot(m, f, str(path))
        assert path.read_text().startswith("digraph")
