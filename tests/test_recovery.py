"""Control-plane resilience: breakers, deadlines, supervised restarts.

Unit tiers cover the :class:`CircuitBreaker` state machine and the
end-to-end :class:`Deadline` budget (client abandons, server rejects
expired-on-arrival, ``queue.wait`` parking is capped).  The chaos tier
runs the acceptance drill: a supervised WAL-backed queue server is
SIGKILLed mid-build with jobs in flight — the supervisor restarts it,
recovery replays the journal, every job completes with zero duplicate
publishes and zero client-visible errors; a second kill *during replay*
(the ``queue.server.crash`` site keyed by restart generation) still
recovers.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ServeConnectionError,
)
from repro.obs import get_metrics
from repro.serve import (
    BuildQueueClient,
    CircuitBreaker,
    Deadline,
    ModelStore,
    QueueConfig,
    RetryPolicy,
    Supervisor,
    WorkerFarm,
    breaker_for,
    breaker_states,
    open_backend,
    reset_breakers,
    start_queue,
)
from repro.serve import breaker as breaker_mod
from repro.testing import faults

from tests.test_queue import make_netlist


def counter_value(name: str) -> float:
    return get_metrics().counter(name).value


@pytest.fixture(autouse=True)
def _fresh_breakers():
    # Ephemeral ports recycle across tests; a breaker opened by one
    # test must not short-circuit the next one's dial.
    reset_breakers()
    yield
    reset_breakers()


class TestCircuitBreaker:
    def test_trips_open_at_threshold(self):
        breaker = CircuitBreaker("t", failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == breaker_mod.CLOSED
            assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == breaker_mod.OPEN
        shorted_before = counter_value("serve.breaker.short_circuits")
        assert not breaker.allow()
        assert counter_value("serve.breaker.short_circuits") == (
            shorted_before + 1
        )

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker("t", failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == breaker_mod.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker("t", failure_threshold=1,
                                 reset_timeout_s=0.05)
        breaker.record_failure()
        assert breaker.state == breaker_mod.OPEN
        time.sleep(0.06)
        assert breaker.state == breaker_mod.HALF_OPEN
        assert breaker.allow()        # the probe slot
        assert not breaker.allow()    # everyone else waits on the probe
        breaker.record_success()
        assert breaker.state == breaker_mod.CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens_with_fresh_timer(self):
        breaker = CircuitBreaker("t", failure_threshold=1,
                                 reset_timeout_s=0.05)
        breaker.record_failure()
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == breaker_mod.OPEN
        assert not breaker.allow()

    def test_registry_shares_one_breaker_per_endpoint(self):
        first = breaker_for("127.0.0.1", 12345)
        second = breaker_for("127.0.0.1", 12345)
        other = breaker_for("127.0.0.1", 12346)
        assert first is second and first is not other
        first.record_failure()
        assert breaker_states()["127.0.0.1:12345"] == breaker_mod.CLOSED
        reset_breakers()
        assert breaker_for("127.0.0.1", 12345) is not first

    def test_open_count_gauge_tracks_transitions(self):
        breaker = breaker_for("127.0.0.1", 23456, failure_threshold=1)
        breaker.record_failure()
        gauge = get_metrics().gauge("serve.breaker.open_count", kind="last")
        assert gauge.value == 1
        breaker.record_success()
        assert gauge.value == 0

    def test_queue_client_short_circuits_through_shared_breaker(self):
        # Trip the endpoint's breaker by hand: the client must refuse to
        # dial at all (CircuitOpenError, a ServeConnectionError, so every
        # existing degrade path applies).
        breaker = breaker_for("127.0.0.1", 9, failure_threshold=1)
        breaker.record_failure()
        started = time.monotonic()
        with pytest.raises(CircuitOpenError):
            BuildQueueClient("127.0.0.1", 9, timeout=5.0)
        # No connect attempt was paid — with a 5s timeout, a real dial
        # to a blackholed endpoint would be visible here.
        assert time.monotonic() - started < 0.5


class TestDeadline:
    def test_stamp_and_rebase_round_trip(self):
        deadline = Deadline.after(1.0)
        payload = deadline.stamp({"op": "ping"})
        assert 0 < payload["deadline_ms"] <= 1000
        rebased = Deadline.from_request(payload)
        assert rebased is not None
        assert abs(rebased.remaining_s() - deadline.remaining_s()) < 0.05

    def test_malformed_deadline_ignored(self):
        assert Deadline.from_request({"op": "ping"}) is None
        assert Deadline.from_request({"deadline_ms": "soon"}) is None

    def test_expired_deadline_fails_fast_without_sending(self):
        with start_queue(QueueConfig()) as handle:
            with BuildQueueClient(
                handle.host, handle.port, breaker=False
            ) as client:
                started = time.monotonic()
                with pytest.raises(DeadlineExceededError):
                    client.call({"op": "ping"}, deadline=Deadline.after(0.0))
                assert time.monotonic() - started < 0.5

    def test_retry_loop_abandons_at_the_budget(self):
        with start_queue(QueueConfig()) as handle:
            client = BuildQueueClient(
                handle.host, handle.port,
                timeout=5.0,
                breaker=False,
                retry=RetryPolicy(max_attempts=1000, base_delay_s=0.05,
                                  max_delay_s=0.1),
            )
        # The queue is gone now; every attempt fails at the transport.
        abandoned_before = counter_value("serve.client.deadline_abandoned")
        started = time.monotonic()
        with pytest.raises(ServeConnectionError):
            client.call({"op": "ping"}, deadline=Deadline.after(0.4))
        elapsed = time.monotonic() - started
        client.close()
        # 1000 attempts would run for a minute; the budget cut it off.
        assert elapsed < 2.0
        assert counter_value("serve.client.deadline_abandoned") >= (
            abandoned_before
        )

    def test_queue_wait_parking_is_capped_by_deadline(self):
        with start_queue(QueueConfig(sweep_interval_s=0.05)) as handle:
            with BuildQueueClient(handle.host, handle.port) as client:
                key = client.submit(make_netlist(0))["key"]  # never built
                started = time.monotonic()
                # A generous budget: the assertion is about the 30s
                # timeout being capped, not about sub-second precision,
                # and a loaded machine can stall this process long
                # enough to expire a too-tight deadline before the
                # request even leaves.
                state = client.wait(
                    key, timeout_s=30.0, deadline=Deadline.after(1.0)
                )
                elapsed = time.monotonic() - started
        assert state["state"] == "pending"
        assert elapsed < 8.0  # parked ~1s, nowhere near 30


@pytest.mark.chaos
class TestSupervisedRecovery:
    def queue_config(self, tmp_path) -> QueueConfig:
        return QueueConfig(
            lease_s=2.0,
            sweep_interval_s=0.1,
            max_attempts=4,
            wal_dir=str(tmp_path / "qwal"),
        )

    def resilient_client(self, host, port) -> BuildQueueClient:
        """A client that rides through a supervised restart."""
        return BuildQueueClient(
            host, port,
            timeout=10.0,
            breaker=False,  # keep dialing through the restart window
            retry=RetryPolicy(max_attempts=12, base_delay_s=0.1,
                              max_delay_s=0.5),
        )

    def test_sigkill_mid_build_recovers_all_jobs(self, tmp_path):
        """The acceptance drill: SIGKILL the queue server with 8 jobs in
        flight; the supervisor restarts it, the WAL replays, every job
        completes exactly once with zero client-visible errors."""
        netlists = [make_netlist(i) for i in range(8)]
        spec = str(tmp_path / "shared")
        store = ModelStore(open_backend(spec))
        sup = Supervisor(backoff_base_s=0.05)
        sup.add_queue(self.queue_config(tmp_path))
        sup.start()
        try:
            host, port = sup.endpoint("queue")
            with WorkerFarm(host, port, spec, count=4,
                            build_delay_s=0.4):
                with self.resilient_client(host, port) as client:
                    keys = [client.submit(n)["key"] for n in netlists]
                    assert len(set(keys)) == 8
                    time.sleep(0.3)  # let claims land mid-build
                    sup.kill("queue")
                    for key in keys:
                        deadline = time.monotonic() + 90.0
                        state = None
                        while time.monotonic() < deadline:
                            state = client.wait(key, timeout_s=2.0)
                            if state["state"] in ("done", "failed"):
                                break
                        assert state is not None
                        assert state["state"] == "done", state
                    stats = client.stats()
                    assert stats["jobs"].get("done") == 8
                    assert stats["duplicate_publishes"] == 0
            assert sup.restarts("queue") >= 1
        finally:
            sup.stop()
        # Zero client-visible errors: every model resolves.
        for netlist in netlists:
            assert store.get(store.key_for(netlist)) is not None

    def test_double_kill_during_replay_still_recovers(self, tmp_path):
        """Generation 0 dies right after a journal append (before the
        ack); generation 1 dies *mid-replay*; generation 2 recovers.
        The ``queue.server.crash`` site is keyed by restart generation
        (max_token=1), so the drill is deterministic."""
        netlists = [make_netlist(i) for i in range(6)]
        spec = str(tmp_path / "shared")
        store = ModelStore(open_backend(spec))
        plan = [
            # Hits 1..4 pass; the 5th consult fires for generations 0
            # and 1.  Gen 0: dies after journaling the 5th submit, so
            # the submitter's ack never arrives and its retry must
            # dedupe onto the replayed job.  Gen 1: dies replaying the
            # 5th record.  Gen 2 (token 2 > max_token): lives.
            faults.FaultSpec("queue.server.crash", after=4, max_token=1),
        ]
        with faults.inject(plan):
            sup = Supervisor(backoff_base_s=0.05)
            sup.add_queue(self.queue_config(tmp_path))
            sup.start()
            try:
                host, port = sup.endpoint("queue")
                with self.resilient_client(host, port) as client:
                    keys = [client.submit(n)["key"] for n in netlists]
                    assert len(set(keys)) == 6
                    # Wait out both deaths: two restarts minimum.
                    deadline = time.monotonic() + 60.0
                    while (
                        sup.restarts("queue") < 2
                        and time.monotonic() < deadline
                    ):
                        time.sleep(0.05)
                    assert sup.restarts("queue") >= 2
                    assert sup.generation("queue") >= 2
                    # Every submitted job survived both crashes — the
                    # one journaled-but-unacked submit included.
                    stats = client.stats()
                    assert stats["jobs"].get("pending") == 6
                    with WorkerFarm(host, port, spec, count=2):
                        for key in keys:
                            finish = time.monotonic() + 90.0
                            state = None
                            while time.monotonic() < finish:
                                state = client.wait(key, timeout_s=2.0)
                                if state["state"] in ("done", "failed"):
                                    break
                            assert state["state"] == "done", state
                    assert client.stats()["duplicate_publishes"] == 0
            finally:
                sup.stop()
        for netlist in netlists:
            assert store.get(store.key_for(netlist)) is not None

    def test_port_is_pinned_across_restarts(self, tmp_path):
        sup = Supervisor(backoff_base_s=0.05)
        sup.add_queue(self.queue_config(tmp_path))
        sup.start()
        try:
            host, port = sup.endpoint("queue")
            generation = sup.generation("queue")
            sup.kill("queue")
            deadline = time.monotonic() + 30.0
            while (
                sup.generation("queue") == generation
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            # Wait for the relaunched incarnation to come up, then
            # confirm it answers on the *same* address.
            with self.resilient_client(host, port) as client:
                assert client.call({"op": "ping"}) == "pong"
            assert sup.endpoint("queue") == (host, port)
            assert counter_value("serve.supervisor.restarts") >= 1
        finally:
            sup.stop()
