"""Property-based tests (hypothesis) for the core invariants.

These cover the claims the whole system rests on:

- the DD engine is a faithful, canonical function representation;
- the analytical ADD model equals the golden zero-delay simulation;
- node collapsing preserves / bounds what it promises (average kept,
  upper bounds conservative);
- the avg/var recursions (Eq. 5-7) match brute-force enumeration.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dd import DDManager, approximate, function_stats
from repro.models import build_add_model
from repro.netlist.gates import GateOp
from repro.netlist.synth import NetlistBuilder
from repro.sim import pair_switching_capacitances

NUM_VARS = 4

# ---------------------------------------------------------------------------
# Random expression trees over a small variable set, as a hypothesis strategy.
# ---------------------------------------------------------------------------
def expression(depth=3):
    base = st.tuples(st.just("var"), st.integers(0, NUM_VARS - 1))
    if depth == 0:
        return base
    sub = expression(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.just("not"), sub),
        st.tuples(st.just("and"), sub, sub),
        st.tuples(st.just("or"), sub, sub),
        st.tuples(st.just("xor"), sub, sub),
    )


def eval_expr(expr, bits):
    kind = expr[0]
    if kind == "var":
        return bits[expr[1]]
    if kind == "not":
        return 1 - eval_expr(expr[1], bits)
    left = eval_expr(expr[1], bits)
    right = eval_expr(expr[2], bits)
    if kind == "and":
        return left & right
    if kind == "or":
        return left | right
    return left ^ right


def build_bdd(manager, expr):
    kind = expr[0]
    if kind == "var":
        return manager.var(expr[1])
    if kind == "not":
        return manager.bdd_not(build_bdd(manager, expr[1]))
    left = build_bdd(manager, expr[1])
    right = build_bdd(manager, expr[2])
    if kind == "and":
        return manager.bdd_and(left, right)
    if kind == "or":
        return manager.bdd_or(left, right)
    return manager.bdd_xor(left, right)


def all_bits():
    from itertools import product

    return list(product((0, 1), repeat=NUM_VARS))


@settings(max_examples=60, deadline=None)
@given(expression())
def test_bdd_matches_expression_semantics(expr):
    manager = DDManager(NUM_VARS)
    node = build_bdd(manager, expr)
    for bits in all_bits():
        assert manager.evaluate(node, list(bits)) == float(eval_expr(expr, bits))


@settings(max_examples=60, deadline=None)
@given(expression(), expression())
def test_bdd_canonicity(left, right):
    """Two expressions agree everywhere iff their node ids coincide."""
    manager = DDManager(NUM_VARS)
    a = build_bdd(manager, left)
    b = build_bdd(manager, right)
    agree = all(
        eval_expr(left, bits) == eval_expr(right, bits) for bits in all_bits()
    )
    assert (a == b) == agree


# ---------------------------------------------------------------------------
# Random weighted ADDs: stats and approximation invariants.
# ---------------------------------------------------------------------------
weighted_add = st.lists(
    st.tuples(expression(2), st.integers(min_value=1, max_value=30)),
    min_size=1,
    max_size=5,
)


@settings(max_examples=40, deadline=None)
@given(weighted_add)
def test_stats_recursions_match_brute_force(terms):
    manager = DDManager(NUM_VARS)
    node = manager.zero
    for expr, weight in terms:
        node = manager.add_plus(
            node, manager.add_const_times(build_bdd(manager, expr), weight)
        )
    stats = function_stats(manager, node)
    values = [manager.evaluate(node, list(bits)) for bits in all_bits()]
    assert stats.avg == pytest.approx(np.mean(values))
    assert stats.var == pytest.approx(np.var(values))
    assert stats.max == pytest.approx(np.max(values))
    assert stats.min == pytest.approx(np.min(values))


@settings(max_examples=40, deadline=None)
@given(weighted_add, st.integers(min_value=1, max_value=12))
def test_approximate_invariants(terms, max_size):
    manager = DDManager(NUM_VARS)
    node = manager.zero
    for expr, weight in terms:
        node = manager.add_plus(
            node, manager.add_const_times(build_bdd(manager, expr), weight)
        )
    truth = [manager.evaluate(node, list(bits)) for bits in all_bits()]

    shrunk_avg = approximate(manager, node, max_size, "avg")
    assert manager.size(shrunk_avg) <= max_size
    approx_values = [
        manager.evaluate(shrunk_avg, list(bits)) for bits in all_bits()
    ]
    assert np.mean(approx_values) == pytest.approx(np.mean(truth))

    shrunk_max = approximate(manager, node, max_size, "max")
    upper = [manager.evaluate(shrunk_max, list(bits)) for bits in all_bits()]
    assert all(u >= t - 1e-6 for u, t in zip(upper, truth))

    shrunk_min = approximate(manager, node, max_size, "min")
    lower = [manager.evaluate(shrunk_min, list(bits)) for bits in all_bits()]
    assert all(l <= t + 1e-6 for l, t in zip(lower, truth))


# ---------------------------------------------------------------------------
# Random netlists: the exact ADD model equals golden simulation.
# ---------------------------------------------------------------------------
@st.composite
def random_netlist(draw):
    num_inputs = draw(st.integers(min_value=2, max_value=4))
    builder = NetlistBuilder("prop", share_structure=False)
    nets = builder.bus("x", num_inputs)
    ops = [GateOp.AND, GateOp.OR, GateOp.NAND, GateOp.NOR, GateOp.XOR, GateOp.INV]
    num_gates = draw(st.integers(min_value=1, max_value=10))
    for _ in range(num_gates):
        op = draw(st.sampled_from(ops))
        if op is GateOp.INV:
            operands = [nets[draw(st.integers(0, len(nets) - 1))]]
        else:
            first = draw(st.integers(0, len(nets) - 1))
            second = draw(st.integers(0, len(nets) - 1))
            if first == second:
                second = (second + 1) % len(nets)
            operands = [nets[first], nets[second]]
        nets.append(builder.gate(op, operands))
    # Mark dangling nets as outputs so every gate carries load.
    used = set()
    for gate in builder.netlist.gates:
        used.update(gate.inputs)
    for net in nets:
        if net not in used and not builder.netlist.is_primary_input(net):
            builder.netlist.add_output(net)
    if not builder.netlist.outputs:
        builder.netlist.add_output(nets[-1])
    return builder.build()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(random_netlist(), st.randoms(use_true_random=False))
def test_exact_add_model_equals_golden_simulation(netlist, rnd):
    model = build_add_model(netlist)
    n = netlist.num_inputs
    initial = np.array(
        [[rnd.random() < 0.5 for _ in range(n)] for _ in range(16)], dtype=bool
    )
    final = np.array(
        [[rnd.random() < 0.5 for _ in range(n)] for _ in range(16)], dtype=bool
    )
    golden = pair_switching_capacitances(netlist, initial, final)
    estimates = model.pair_capacitances(initial, final)
    assert np.allclose(golden, estimates)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(random_netlist(), st.integers(min_value=2, max_value=30))
def test_budgeted_upper_bound_is_conservative(netlist, max_nodes):
    model = build_add_model(netlist, max_nodes=max_nodes, strategy="max")
    assert model.size <= max_nodes
    n = netlist.num_inputs
    rng = np.random.default_rng(abs(hash((netlist.num_gates, max_nodes))) % 2 ** 31)
    initial = rng.random((24, n)) < 0.5
    final = rng.random((24, n)) < 0.5
    golden = pair_switching_capacitances(netlist, initial, final)
    estimates = model.pair_capacitances(initial, final)
    assert np.all(estimates >= golden - 1e-6)


# ---------------------------------------------------------------------------
# Round-trips.
# ---------------------------------------------------------------------------
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(random_netlist())
def test_blif_roundtrip_preserves_functionality(netlist):
    from repro.netlist import check_equivalent, parse_blif, write_blif

    again = parse_blif(write_blif(netlist))
    assert check_equivalent(netlist, again)
