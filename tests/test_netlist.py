"""Tests for the Netlist data structure: construction, ordering, loads."""

from __future__ import annotations

import pytest

from repro.errors import NetlistError
from repro.netlist import (
    DEFAULT_OUTPUT_LOAD_FF,
    TEST_LIBRARY,
    Netlist,
    NetlistBuilder,
)


@pytest.fixture
def tiny() -> Netlist:
    netlist = Netlist("tiny")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_gate("AND2", ["a", "b"], "ab")
    netlist.add_gate("INV1", ["ab"], "nab")
    netlist.add_output("nab")
    return netlist


class TestConstruction:
    def test_duplicate_input_rejected(self, tiny):
        with pytest.raises(NetlistError):
            tiny.add_input("a")

    def test_double_driver_rejected(self, tiny):
        with pytest.raises(NetlistError):
            tiny.add_gate("AND2", ["a", "b"], "ab")

    def test_driving_an_input_rejected(self, tiny):
        with pytest.raises(NetlistError):
            tiny.add_gate("INV1", ["b"], "a")

    def test_arity_mismatch_rejected(self, tiny):
        with pytest.raises(NetlistError):
            tiny.add_gate("AND2", ["a"], "bad")

    def test_duplicate_gate_name_rejected(self, tiny):
        with pytest.raises(NetlistError):
            tiny.add_gate("INV1", ["a"], "x1", name="g0")

    def test_duplicate_output_rejected(self, tiny):
        with pytest.raises(NetlistError):
            tiny.add_output("nab")

    def test_cell_object_accepted_directly(self, tiny):
        cell = TEST_LIBRARY["NOR2"]
        tiny.add_gate(cell, ["a", "b"], "n2")
        assert tiny.driver("n2").cell.name == "NOR2"


class TestTopology:
    def test_topological_order_respects_dependencies(self, tiny):
        order = [g.output for g in tiny.topological_order()]
        assert order.index("ab") < order.index("nab")

    def test_forward_references_allowed(self):
        netlist = Netlist("fwd")
        netlist.add_input("a")
        netlist.add_gate("INV1", ["later"], "out")  # 'later' defined below
        netlist.add_gate("BUF1", ["a"], "later")
        netlist.add_output("out")
        order = [g.output for g in netlist.topological_order()]
        assert order == ["later", "out"]

    def test_cycle_detected(self):
        netlist = Netlist("cyc")
        netlist.add_input("a")
        netlist.add_gate("AND2", ["a", "y"], "x")
        netlist.add_gate("BUF1", ["x"], "y")
        with pytest.raises(NetlistError, match="cycle"):
            netlist.topological_order()

    def test_undriven_internal_net_detected(self):
        netlist = Netlist("undrv")
        netlist.add_input("a")
        netlist.add_gate("AND2", ["a", "ghost"], "x")
        with pytest.raises(NetlistError, match="no driver"):
            netlist.topological_order()

    def test_depth(self, tiny):
        assert tiny.depth() == 2

    def test_topo_cache_invalidated_on_mutation(self, tiny):
        tiny.topological_order()
        tiny.add_gate("INV1", ["a"], "na")
        assert any(g.output == "na" for g in tiny.topological_order())

    def test_is_primary_input(self, tiny):
        assert tiny.is_primary_input("a")
        assert not tiny.is_primary_input("ab")


class TestLoads:
    def test_load_is_sum_of_fanout_pin_caps(self, tiny):
        loads = tiny.load_capacitances()
        and_gate = tiny.driver("ab")
        # 'ab' feeds the INV1 pin (5 fF); 'nab' is a primary output.
        assert loads[and_gate.name] == 5.0
        inv_gate = tiny.driver("nab")
        assert loads[inv_gate.name] == DEFAULT_OUTPUT_LOAD_FF

    def test_multi_fanout_accumulates(self):
        netlist = Netlist("fan")
        netlist.add_input("a")
        netlist.add_gate("BUF1", ["a"], "x")
        netlist.add_gate("INV1", ["x"], "y1")
        netlist.add_gate("INV1", ["x"], "y2")
        netlist.add_output("y1")
        netlist.add_output("y2")
        loads = netlist.load_capacitances()
        assert loads[netlist.driver("x").name] == 10.0  # two INV pins

    def test_same_net_on_two_pins_counts_twice(self):
        netlist = Netlist("twopin")
        netlist.add_input("a")
        netlist.add_gate("BUF1", ["a"], "x")
        netlist.add_gate("AND2", ["x", "x"], "y")
        netlist.add_output("y")
        loads = netlist.load_capacitances()
        assert loads[netlist.driver("x").name] == 18.0  # both AND2 pins

    def test_total_load(self, tiny):
        assert tiny.total_load_capacitance() == pytest.approx(
            sum(tiny.load_capacitances().values())
        )

    def test_custom_output_load(self):
        netlist = Netlist("custom", output_load_fF=42.0)
        netlist.add_input("a")
        netlist.add_gate("BUF1", ["a"], "y")
        netlist.add_output("y")
        assert netlist.load_capacitances()[netlist.driver("y").name] == 42.0


class TestEvaluation:
    def test_evaluate_mapping_and_sequence_agree(self, tiny):
        by_map = tiny.evaluate({"a": 1, "b": 1})
        by_seq = tiny.evaluate([1, 1])
        assert by_map == by_seq
        assert by_map["nab"] == 0

    def test_evaluate_outputs_only(self, tiny):
        assert tiny.evaluate_outputs([1, 0]) == {"nab": 1}

    def test_bad_pattern_length(self, tiny):
        with pytest.raises(NetlistError):
            tiny.evaluate([1])


class TestReporting:
    def test_stats(self, tiny):
        stats = tiny.stats()
        assert stats.num_inputs == 2
        assert stats.num_gates == 2
        assert stats.depth == 2

    def test_counts_by_cell(self, tiny):
        assert tiny.counts_by_cell() == {"AND2": 1, "INV1": 1}

    def test_fanout_pins(self, tiny):
        pins = tiny.fanout_pins("ab")
        assert len(pins) == 1
        gate, pin = pins[0]
        assert gate.output == "nab" and pin == 0

    def test_fanin_map(self, tiny):
        assert tiny.fanin_map()["nab"] == ("ab",)


class TestBuilderSharing:
    def test_commutative_gates_shared(self):
        builder = NetlistBuilder("share")
        a, b = builder.input("a"), builder.input("b")
        one = builder.and2(a, b)
        two = builder.and2(b, a)
        assert one == two
        builder.output("y", one)
        assert builder.build().num_gates == 2  # AND + output BUF

    def test_mux_not_commutative(self):
        builder = NetlistBuilder("muxns")
        s, a, b = builder.input("s"), builder.input("a"), builder.input("b")
        assert builder.mux(s, a, b) != builder.mux(s, b, a)

    def test_sharing_can_be_disabled(self):
        builder = NetlistBuilder("noshare", share_structure=False)
        a, b = builder.input("a"), builder.input("b")
        assert builder.and2(a, b) != builder.and2(a, b)

    def test_const_nets_cached(self):
        builder = NetlistBuilder("const")
        builder.input("a")
        assert builder.const(True) == builder.const(True)
        assert builder.const(True) != builder.const(False)
