"""Tests for the avg / var / max / min recursions (paper Eq. 5-8)."""

from __future__ import annotations

import itertools

import pytest

from repro.dd import (
    DDManager,
    average,
    compute_stats,
    expected_value_biased,
    function_stats,
    leaf_histogram,
    maximum,
    minimum,
    variance,
)


def brute_stats(manager, node, num_vars):
    values = [
        manager.evaluate(node, list(x))
        for x in itertools.product((0, 1), repeat=num_vars)
    ]
    avg = sum(values) / len(values)
    var = sum((v - avg) ** 2 for v in values) / len(values)
    return avg, var, max(values), min(values)


@pytest.fixture
def m():
    return DDManager(4)


class TestAgainstBruteForce:
    def test_random_adds_match_enumeration(self, m):
        import random

        rng = random.Random(7)
        for _ in range(20):
            node = m.terminal(0.0)
            for _ in range(4):
                cube = m.cube(
                    {v: rng.random() < 0.5 for v in rng.sample(range(4), 2)}
                )
                node = m.add_plus(node, m.add_const_times(cube, rng.randint(1, 9)))
            stats = function_stats(m, node)
            avg, var, hi, lo = brute_stats(m, node, 4)
            assert stats.avg == pytest.approx(avg)
            assert stats.var == pytest.approx(var)
            assert stats.max == pytest.approx(hi)
            assert stats.min == pytest.approx(lo)

    def test_boolean_function_stats(self, m):
        f = m.bdd_and(m.var(0), m.var(1))
        stats = function_stats(m, f)
        assert stats.avg == pytest.approx(0.25)
        assert stats.var == pytest.approx(0.25 * 0.75)
        assert stats.max == 1.0
        assert stats.min == 0.0


class TestPaperExamples:
    def test_example_4_node_n(self, m):
        """Paper Ex. 4: children with (avg 5, var 25) and (avg 10, var 0)
        combine to avg 7.5 and var 18.75."""
        # A sub-ADD over one variable pair realising exactly those children:
        # left child: values {0, 10} -> avg 5, var 25; right child: constant 10.
        left = m.ite(m.var(1), m.terminal(10.0), m.terminal(0.0))
        node = m.ite(m.var(0), m.terminal(10.0), left)
        stats = function_stats(m, node)
        assert stats.avg == pytest.approx(7.5)
        assert stats.var == pytest.approx(18.75)

    def test_example_5_mse_of_max(self, m):
        """Paper Ex. 5: mse(n) = var + (max - avg)^2 = 18.75 + 6.25 = 25."""
        left = m.ite(m.var(1), m.terminal(10.0), m.terminal(0.0))
        node = m.ite(m.var(0), m.terminal(10.0), left)
        stats = function_stats(m, node)
        assert stats.max == 10.0
        assert stats.mse_max == pytest.approx(25.0)

    def test_mse_min_dual(self, m):
        left = m.ite(m.var(1), m.terminal(10.0), m.terminal(0.0))
        node = m.ite(m.var(0), m.terminal(10.0), left)
        stats = function_stats(m, node)
        assert stats.min == 0.0
        assert stats.mse_min == pytest.approx(18.75 + 7.5 ** 2)


class TestInvarianceUnderIrrelevantVariables:
    def test_stats_ignore_skipped_levels(self, m):
        # f depends only on var 3; stats must equal those of the 1-var view.
        f = m.ite(m.var(3), m.terminal(8.0), m.terminal(2.0))
        stats = function_stats(m, f)
        assert stats.avg == pytest.approx(5.0)
        assert stats.var == pytest.approx(9.0)


class TestHelpers:
    def test_module_level_wrappers(self, m):
        f = m.ite(m.var(0), m.terminal(6.0), m.terminal(2.0))
        assert average(m, f) == pytest.approx(4.0)
        assert variance(m, f) == pytest.approx(4.0)
        assert maximum(m, f) == 6.0
        assert minimum(m, f) == 2.0

    def test_compute_stats_covers_all_nodes(self, m):
        f = m.add_plus(m.var(0), m.add_const_times(m.var(1), 3.0))
        stats = compute_stats(m, f)
        reachable = set(m.iter_nodes(f))
        assert set(stats) == reachable

    def test_leaf_histogram_masses_sum_to_one(self, m):
        f = m.add_plus(m.var(0), m.add_const_times(m.var(1), 3.0))
        histogram = leaf_histogram(m, f)
        assert sum(histogram.values()) == pytest.approx(1.0)
        assert histogram[0.0] == pytest.approx(0.25)
        assert histogram[4.0] == pytest.approx(0.25)

    def test_expected_value_biased_matches_uniform_at_half(self, m):
        f = m.add_plus(m.var(0), m.add_const_times(m.var(2), 5.0))
        assert expected_value_biased(m, f, {}) == pytest.approx(average(m, f))

    def test_expected_value_biased_extremes(self, m):
        f = m.add_plus(m.var(0), m.add_const_times(m.var(1), 5.0))
        assert expected_value_biased(m, f, {0: 1.0, 1: 1.0}) == pytest.approx(6.0)
        assert expected_value_biased(m, f, {0: 0.0, 1: 0.0}) == pytest.approx(0.0)

    def test_expected_value_biased_brute_force(self, m):
        f = m.add_plus(
            m.add_const_times(m.bdd_and(m.var(0), m.var(1)), 4.0),
            m.add_const_times(m.var(2), 2.0),
        )
        probs = {0: 0.3, 1: 0.8, 2: 0.1}
        expected = 0.0
        for x in itertools.product((0, 1), repeat=4):
            weight = 1.0
            for var, p in probs.items():
                weight *= p if x[var] else (1.0 - p)
            weight *= 0.5  # var 3 is uniform
            expected += weight * m.evaluate(f, list(x))
        assert expected_value_biased(m, f, probs) == pytest.approx(expected)
