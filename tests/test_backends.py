"""The pluggable evaluation-backend layer (:mod:`repro.dd.backends`).

Every registered backend must be *bit-for-bit* interchangeable: the
selection policy (and the ``REPRO_EVAL_BACKEND`` override) may route any
batch to any backend, so a single ULP of divergence would make results
depend on batch height or on which backends happened to warm first.
The suites here difference each backend against the scalar root-to-leaf
walk and the gate-level differential oracle, replay the regression
corpus per backend, and provoke the codegen backend's compile-failure
fallback through the fault-injection framework.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.circuits.random_logic import random_logic
from repro.dd import backends as dd_backends
from repro.dd.backends import (
    BITPARALLEL_MIN_ROWS,
    TAB_MAX_SUPPORT,
    FusedKernel,
)
from repro.dd.compiled import coerce_matrix
from repro.errors import BackendError, DDError
from repro.models import build_add_model
from repro.obs import get_metrics
from repro.testing import faults
from repro.testing.oracle import oracle_switching_capacitance

_MET = get_metrics()

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.json"))

#: (netlist seed, approximation strategy) grid — mirrors test_compiled.
CASES = [
    (seed, strategy)
    for seed in (11, 23, 47)
    for strategy in ("avg", "max", "min")
]

BACKENDS = dd_backends.registered_names()


def _build_case(seed: int, strategy: str):
    netlist = random_logic("prop", 8, 35, seed=seed, cone_limit=6)
    model = build_add_model(netlist, max_nodes=60, strategy=strategy)
    return netlist, model


def _random_batch(model, rows: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    initial = rng.random((rows, model.num_inputs)) < 0.5
    final = rng.random((rows, model.num_inputs)) < 0.5
    return model._pack_batch(initial, final)


def _counter(name: str) -> int:
    state = _MET.snapshot().get(name)
    return int(state["value"]) if state else 0


# ---------------------------------------------------------------------------
# Registry and selection policy
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_all_expected_backends_registered(self):
        assert set(BACKENDS) == {
            "pointer",
            "levelized",
            "bitparallel",
            "codegen",
        }

    def test_unknown_backend_is_typed_error(self):
        with pytest.raises(BackendError, match="unknown evaluation backend"):
            dd_backends.get_backend("simd-on-a-potato")
        # BackendError is a DDError, so existing DDError handlers catch it.
        assert issubclass(BackendError, DDError)

    def test_unknown_kernel_via_evaluate_batch(self):
        _, model = _build_case(11, "avg")
        compiled = model.compiled()
        packed = _random_batch(model, 4, seed=1)
        with pytest.raises(DDError):
            compiled.evaluate_batch(packed, kernel="nope")

    def test_forced_unsupported_backend_is_typed_error(self):
        _, model = _build_case(11, "avg")
        compiled = model.compiled()
        packed = _random_batch(model, 4, seed=2)
        # Simulate a diagram too wide for a levelized plan.
        saved = (
            compiled._lev_children,
            compiled._lev_tables,
            compiled._lev_final_values,
        )
        try:
            compiled._lev_children = None
            compiled._lev_tables = None
            compiled._lev_final_values = None
            with pytest.raises(BackendError, match="cannot evaluate"):
                compiled.evaluate_batch(packed, kernel="levelized")
            # auto still works: the pointer backend needs no plan.
            out = compiled.evaluate_batch(packed)
            assert out.shape == (4,)
        finally:
            (
                compiled._lev_children,
                compiled._lev_tables,
                compiled._lev_final_values,
            ) = saved

    def test_auto_prefers_bitparallel_for_tall_narrow_batches(self):
        _, model = _build_case(23, "avg")
        compiled = model.compiled()
        if len(compiled.support) <= TAB_MAX_SUPPORT:
            chosen = dd_backends.select_backend(
                compiled, rows=BITPARALLEL_MIN_ROWS
            )
            assert chosen.name == "bitparallel"
        assert (
            dd_backends.select_backend(compiled, rows=1).name == "levelized"
        )

    def test_env_override_wins(self, monkeypatch):
        _, model = _build_case(23, "avg")
        compiled = model.compiled()
        monkeypatch.setenv(dd_backends.ENV_BACKEND, "pointer")
        assert dd_backends.select_backend(compiled, rows=100_000).name == (
            "pointer"
        )

    def test_env_override_unknown_name_is_typed_error(self, monkeypatch):
        _, model = _build_case(23, "avg")
        compiled = model.compiled()
        packed = _random_batch(model, 8, seed=3)
        monkeypatch.setenv(dd_backends.ENV_BACKEND, "warp-drive")
        with pytest.raises(BackendError, match="REPRO_EVAL_BACKEND"):
            compiled.evaluate_batch(packed)

    def test_selection_logged_once_per_model(self):
        _, model = _build_case(47, "avg")
        compiled = model.compiled()
        packed = _random_batch(model, 64, seed=4)
        compiled.evaluate_batch(packed)
        chosen = compiled._backend_state["_selected"]
        before = _counter(f"eval.backend.selected.{chosen}")
        compiled.evaluate_batch(packed)
        compiled.evaluate_batch(packed)
        assert _counter(f"eval.backend.selected.{chosen}") == before


# ---------------------------------------------------------------------------
# Bit-for-bit equivalence: every backend vs the scalar walk and the oracle
# ---------------------------------------------------------------------------
class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed,strategy", CASES)
    def test_backend_equals_scalar_walk(self, backend, seed, strategy):
        _, model = _build_case(seed, strategy)
        compiled = model.compiled()
        if not dd_backends.get_backend(backend).supports(compiled):
            pytest.skip(f"{backend} does not support this diagram")
        packed = _random_batch(model, 500, seed=5000 + seed)
        result = compiled.evaluate_batch(packed, kernel=backend)
        scalar = np.array(
            [model.manager.evaluate(model.root, row) for row in packed]
        )
        assert np.array_equal(result, scalar)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_partial_word_row_counts(self, backend):
        """The bit-parallel word packing has tails at non-multiples of 64."""
        _, model = _build_case(11, "avg")
        compiled = model.compiled()
        for rows in (1, 63, 64, 65, 129):
            packed = _random_batch(model, rows, seed=rows)
            assert np.array_equal(
                compiled.evaluate_batch(packed, kernel=backend),
                compiled.evaluate_batch(packed, kernel="pointer"),
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exact_model_matches_differential_oracle(self, backend):
        netlist = random_logic("oracle", 6, 20, seed=7, cone_limit=5)
        model = build_add_model(netlist, max_nodes=None)
        compiled = model.compiled()
        rng = np.random.default_rng(17)
        initial = rng.random((40, netlist.num_inputs)) < 0.5
        final = rng.random((40, netlist.num_inputs)) < 0.5
        got = model.pair_capacitances(initial, final, kernel=backend)
        want = np.array(
            [
                oracle_switching_capacitance(
                    netlist, xi.tolist(), xf.tolist()
                )
                for xi, xf in zip(initial, final)
            ]
        )
        assert np.allclose(got, want, atol=1e-6)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "path", CORPUS, ids=lambda p: p.stem
    )
    def test_corpus_replay_per_backend(self, backend, path):
        """Every corpus edge case evaluates identically on every backend."""
        from repro.testing.corpus import load_case

        case = load_case(path)
        model = build_add_model(case.netlist, max_nodes=case.max_nodes)
        compiled = model.compiled()
        if not dd_backends.get_backend(backend).supports(compiled):
            pytest.skip(f"{backend} does not support this diagram")
        got = model.pair_capacitances(case.initial, case.final, kernel=backend)
        want = model.pair_capacitances(
            case.initial, case.final, kernel="pointer"
        )
        assert np.array_equal(got, want)


# ---------------------------------------------------------------------------
# Batch coercion edge cases
# ---------------------------------------------------------------------------
class TestCoercion:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_batch(self, backend):
        _, model = _build_case(11, "avg")
        compiled = model.compiled()
        packed = _random_batch(model, 0, seed=0)
        out = compiled.evaluate_batch(packed, kernel=backend)
        assert out.shape == (0,) and out.dtype == np.float64

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("dtype", [np.int8, np.int64, np.float64])
    def test_integer_and_float_dtypes(self, backend, dtype):
        _, model = _build_case(11, "avg")
        compiled = model.compiled()
        packed = _random_batch(model, 70, seed=6)
        ref = compiled.evaluate_batch(packed, kernel="pointer")
        assert np.array_equal(
            compiled.evaluate_batch(packed.astype(dtype), kernel=backend), ref
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_non_contiguous_matrices(self, backend):
        _, model = _build_case(11, "avg")
        compiled = model.compiled()
        packed = _random_batch(model, 70, seed=7)
        ref = compiled.evaluate_batch(packed, kernel="pointer")
        # Column-sliced view of a wider matrix (not C-contiguous).
        wide = np.zeros((70, packed.shape[1] + 6), dtype=bool)
        wide[:, 3 : 3 + packed.shape[1]] = packed
        sliced = wide[:, 3 : 3 + packed.shape[1]]
        assert not sliced.flags.c_contiguous
        assert np.array_equal(
            compiled.evaluate_batch(sliced, kernel=backend), ref
        )
        # Transposed storage (Fortran order).
        fortran = np.asfortranarray(packed)
        assert np.array_equal(
            compiled.evaluate_batch(fortran, kernel=backend), ref
        )

    def test_clean_input_is_not_copied(self):
        packed = np.ones((8, 4), dtype=bool)
        assert coerce_matrix(packed) is packed

    def test_dirty_input_is_normalised(self):
        ints = np.array([[0, 2], [1, 0]], dtype=np.int8)
        out = coerce_matrix(ints)
        assert out.dtype == np.bool_
        assert out.tolist() == [[False, True], [True, False]]

    def test_one_dim_batch_raises_before_any_work(self):
        _, model = _build_case(11, "avg")
        compiled = model.compiled()
        with pytest.raises(DDError):
            compiled.evaluate_batch(np.zeros(16, dtype=bool))


# ---------------------------------------------------------------------------
# Codegen: compile-failure fallback and warm-up
# ---------------------------------------------------------------------------
class TestCodegenFallback:
    def test_compile_fail_degrades_to_levelized(self):
        _, model = _build_case(23, "max")
        packed = _random_batch(model, 200, seed=8)
        before = _counter("eval.codegen.fallbacks")
        with faults.inject(
            [faults.FaultSpec("eval.codegen.compile_fail")]
        ):
            # Fresh compiled form: the backend state must be cold so the
            # (failing) compilation happens inside the fault plan.
            model._compiled = None
            compiled = model.compiled()
            out = compiled.evaluate_batch(packed, kernel="codegen")
        assert np.array_equal(out, compiled._evaluate_levelized(packed))
        assert _counter("eval.codegen.fallbacks") == before + 1
        assert _counter("faults.injected.eval.codegen.compile_fail") >= 1
        # The failure is remembered: no recompile attempt per batch.
        state = compiled._backend_state["codegen"]
        assert state["library"] is None

    def test_recovers_on_fresh_compilation(self):
        _, model = _build_case(23, "max")
        model._compiled = None
        compiled = model.compiled()
        packed = _random_batch(model, 100, seed=9)
        out = compiled.evaluate_batch(packed, kernel="codegen")
        assert np.array_equal(out, compiled._evaluate_levelized(packed))
        assert compiled._backend_state["codegen"]["library"] is not None

    def test_warm_eval_backend_precompiles(self):
        _, model = _build_case(47, "min")
        model._compiled = None
        assert model.warm_eval_backend("codegen") == "codegen"
        assert "codegen" in model.compiled()._backend_state


# ---------------------------------------------------------------------------
# Multi-model kernel fusion
# ---------------------------------------------------------------------------
class TestFusedKernel:
    def _models(self):
        models = {}
        for seed in (11, 23):
            netlist = random_logic(
                f"fuse{seed}", 7, 28, seed=seed, cone_limit=5
            )
            models[netlist.name] = build_add_model(netlist, max_nodes=80)
        return models

    def test_fused_matches_per_model(self):
        models = self._models()
        fused = FusedKernel(
            {name: model.compiled() for name, model in models.items()}
        )
        rng = np.random.default_rng(21)
        segments = []
        expect = []
        for name, model in models.items():
            packed = _random_batch(model, int(rng.integers(1, 300)), seed=31)
            segments.append((name, packed))
            expect.append(
                model.compiled().evaluate_batch(packed, kernel="pointer")
            )
        outs = fused.evaluate_many(segments)
        assert len(outs) == len(expect)
        for got, want in zip(outs, expect):
            assert np.array_equal(got, want)

    def test_fused_counts_calls_and_segments(self):
        models = self._models()
        fused = FusedKernel(
            {name: model.compiled() for name, model in models.items()}
        )
        segments = [
            (name, _random_batch(model, 10, seed=41))
            for name, model in models.items()
        ]
        calls = _counter("eval.codegen.fused_calls")
        segs = _counter("eval.codegen.fused_segments")
        fused.evaluate_many(segments)
        assert _counter("eval.codegen.fused_calls") == calls + 1
        assert _counter("eval.codegen.fused_segments") == segs + 2

    def test_unknown_segment_key_raises(self):
        models = self._models()
        fused = FusedKernel(
            {name: model.compiled() for name, model in models.items()}
        )
        with pytest.raises(BackendError, match="not part of this fusion"):
            fused.evaluate_many([("who", np.zeros((1, 64), dtype=bool))])

    def test_ineligible_diagram_rejected(self, monkeypatch):
        models = self._models()
        monkeypatch.setattr(dd_backends, "CODEGEN_SLOT_LIMIT", 0)
        with pytest.raises(BackendError, match="not codegen-eligible"):
            FusedKernel(
                {name: model.compiled() for name, model in models.items()}
            )

    def test_empty_segment_list(self):
        models = self._models()
        fused = FusedKernel(
            {name: model.compiled() for name, model in models.items()}
        )
        assert fused.evaluate_many([]) == []


# ---------------------------------------------------------------------------
# Server integration: pinned kernels and the fused flush
# ---------------------------------------------------------------------------
class TestServerFusion:
    def test_fused_server_round_trip(self):
        from repro.serve.client import PowerQueryClient
        from repro.serve.server import ServerConfig, start_in_thread

        models = {}
        for seed in (5, 9):
            netlist = random_logic(
                f"srv{seed}", 6, 24, seed=seed, cone_limit=5
            )
            models[netlist.name] = build_add_model(netlist, max_nodes=80)
        config = ServerConfig(
            port=0, kernel="codegen", fused=True, max_wait_ms=1.0
        )
        before = _counter("serve.eval.fused_batches")
        with start_in_thread(models, config) as handle:
            client = PowerQueryClient(handle.host, handle.port)
            rng = np.random.default_rng(3)
            for name, model in models.items():
                n = model.num_inputs
                initial = rng.random((20, n)) < 0.5
                final = rng.random((20, n)) < 0.5
                pairs = [
                    (
                        "".join("1" if b else "0" for b in xi),
                        "".join("1" if b else "0" for b in xf),
                    )
                    for xi, xf in zip(initial, final)
                ]
                got = client.evaluate_pairs(name, pairs)
                want = model.pair_capacitances(
                    initial, final, kernel="pointer"
                )
                assert np.allclose(got, want)
            stats = client.stats()
        assert stats["config"]["kernel"] == "codegen"
        assert sorted(stats["fused_models"]) == sorted(models)
        assert _counter("serve.eval.fused_batches") > before

    def test_server_config_rejects_unknown_kernel(self):
        from repro.serve.server import ServerConfig

        with pytest.raises(BackendError):
            ServerConfig(kernel="nope")


# ---------------------------------------------------------------------------
# Sweep integration
# ---------------------------------------------------------------------------
class TestSweepKernel:
    def test_sweep_results_are_backend_independent(self):
        from repro.eval.runner import SweepConfig, run_sweep

        netlist = random_logic("sweep", 6, 22, seed=3, cone_limit=5)
        model = build_add_model(netlist, max_nodes=60)
        base = SweepConfig(
            sp_values=(0.5,), st_values=(0.4,), sequence_length=120
        )
        results = {}
        for kernel in ("pointer", "levelized", "codegen"):
            config = SweepConfig(
                sp_values=base.sp_values,
                st_values=base.st_values,
                sequence_length=base.sequence_length,
                kernel=kernel,
            )
            results[kernel] = run_sweep(netlist, {"ADD": model}, config)
        rows = [r.rows[0].model_average_fF["ADD"] for r in results.values()]
        assert rows[0] == rows[1] == rows[2]
        # The forcing is scoped to the sweep: the model's default returns.
        assert model.eval_kernel == "auto"

    def test_sweep_rejects_unknown_kernel_up_front(self):
        from repro.eval.runner import SweepConfig, run_sweep

        netlist = random_logic("sweepbad", 5, 15, seed=4, cone_limit=4)
        model = build_add_model(netlist, max_nodes=40)
        with pytest.raises(BackendError):
            run_sweep(
                netlist, {"ADD": model}, SweepConfig(kernel="warp-drive")
            )
