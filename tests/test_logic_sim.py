"""Tests for the numpy batch logic simulator."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import all_patterns, simulate, simulate_outputs


class TestAgainstSinglePatternEvaluation:
    def test_all_nets_match_reference(self, fig2_netlist):
        patterns = all_patterns(2)
        result = simulate(fig2_netlist, patterns)
        for index in range(patterns.shape[0]):
            reference = fig2_netlist.evaluate(patterns[index].tolist())
            for net, waves in result.values.items():
                assert int(waves[index]) == reference[net]

    def test_xor_chain(self, xor_chain_netlist):
        patterns = all_patterns(4)
        outputs = simulate_outputs(xor_chain_netlist, patterns)
        for index, bits in enumerate(itertools.product((0, 1), repeat=4)):
            assert int(outputs[index, 0]) == sum(bits) % 2


class TestShapesAndValidation:
    def test_single_vector_promoted(self, fig2_netlist):
        result = simulate(fig2_netlist, np.array([1, 0]))
        assert result.num_patterns == 1

    def test_wrong_width_rejected(self, fig2_netlist):
        with pytest.raises(SimulationError):
            simulate(fig2_netlist, np.zeros((4, 3), dtype=bool))

    def test_output_matrix_column_order(self, fig2_netlist):
        patterns = all_patterns(2)
        result = simulate(fig2_netlist, patterns)
        matrix = result.output_matrix()
        assert matrix.shape == (4, 3)
        for k, net in enumerate(fig2_netlist.outputs):
            assert np.array_equal(matrix[:, k], result.values[net])

    def test_gate_output_matrix_topological_columns(self, fig2_netlist):
        patterns = all_patterns(2)
        result = simulate(fig2_netlist, patterns)
        matrix = result.gate_output_matrix()
        order = fig2_netlist.topological_order()
        assert matrix.shape == (4, len(order))
        for k, gate in enumerate(order):
            assert np.array_equal(matrix[:, k], result.values[gate.output])

    def test_integer_patterns_accepted(self, fig2_netlist):
        result = simulate(fig2_netlist, np.array([[1, 0], [0, 1]]))
        assert result.num_patterns == 2
