"""The independent oracle itself: hand-computed values and self-consistency.

The oracle is the trust anchor of the differential harness, so it gets
its own direct tests: Figure-2 values computed by hand, truth tables
cross-checked against the oracle's *own* scalar walk (two formulations
inside one module), and the exhaustive matrix/average/max helpers
checked against each other.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OracleError
from repro.netlist import Netlist
from repro.netlist.library import TEST_LIBRARY, Cell
from repro.netlist.gates import GateOp
from repro.testing.generate import GenParams, build_fuzz_netlist
from repro.testing.oracle import (
    index_pattern,
    oracle_average_uniform,
    oracle_capacitance_matrix,
    oracle_load_capacitances,
    oracle_max_capacitance,
    oracle_node_values,
    oracle_sequence_capacitances,
    oracle_switching_capacitance,
    oracle_topological_order,
    oracle_truth_tables,
    pattern_index,
)


class TestFig2ByHand:
    def test_node_values(self, fig2_netlist):
        values = oracle_node_values(fig2_netlist, [1, 1])
        assert values["x1"] == 1 and values["x2"] == 1
        # g1 = x1', g2 = x2', g3 = x1 + x2
        outs = fig2_netlist.outputs
        assert values[outs[0]] == 0
        assert values[outs[1]] == 0
        assert values[outs[2]] == 1

    def test_loads_are_output_pads_only(self, fig2_netlist):
        loads = oracle_load_capacitances(fig2_netlist)
        assert all(load == 15.0 for load in loads.values())

    def test_c_11_to_00_is_30(self, fig2_netlist):
        # Both inverters rise (15 fF each); the OR gate falls.
        assert oracle_switching_capacitance(fig2_netlist, [1, 1], [0, 0]) == 30.0

    def test_identity_transition_is_zero(self, fig2_netlist):
        for bits in ([0, 0], [0, 1], [1, 0], [1, 1]):
            assert oracle_switching_capacitance(fig2_netlist, bits, bits) == 0.0

    def test_sequence_decomposes_into_pairs(self, fig2_netlist):
        sequence = [[1, 1], [0, 0], [1, 0], [1, 1]]
        per_cycle = oracle_sequence_capacitances(fig2_netlist, sequence)
        expected = [
            oracle_switching_capacitance(fig2_netlist, sequence[t], sequence[t + 1])
            for t in range(3)
        ]
        assert per_cycle == expected


class TestStructureWalks:
    def test_topological_order_respects_dependencies(self):
        netlist = Netlist("deps")
        netlist.add_input("a")
        # Deliberately add gates in anti-topological order.
        netlist.add_gate(TEST_LIBRARY["INV1"], ["t1"], "t2")
        netlist.add_gate(TEST_LIBRARY["INV1"], ["t0"], "t1")
        netlist.add_gate(TEST_LIBRARY["INV1"], ["a"], "t0")
        netlist.add_output("t2")
        order = [gate.output for gate in oracle_topological_order(netlist)]
        assert order == ["t0", "t1", "t2"]

    def test_cycle_detected(self):
        netlist = Netlist("cycle")
        netlist.add_input("a")
        netlist.add_gate(TEST_LIBRARY["AND2"], ["a", "u1"], "u0")
        netlist.add_gate(TEST_LIBRARY["INV1"], ["u0"], "u1")
        netlist.add_output("u1")
        with pytest.raises(OracleError, match="cycle"):
            oracle_topological_order(netlist)

    def test_undriven_net_detected(self):
        netlist = Netlist("undriven")
        netlist.add_input("a")
        netlist.add_gate(TEST_LIBRARY["AND2"], ["a", "ghost"], "u0")
        netlist.add_output("u0")
        with pytest.raises(OracleError, match="undriven"):
            oracle_topological_order(netlist)

    def test_per_pin_capacitances_and_output_pad(self):
        netlist = Netlist("loads", output_load_fF=7.0)
        netlist.add_input("a")
        netlist.add_input("b")
        asym = Cell("ASYM", GateOp.AND, 2, input_capacitance_fF=(3.0, 11.0))
        netlist.add_gate(TEST_LIBRARY["INV1"], ["a"], "n0", name="drv")
        netlist.add_gate(asym, ["n0", "n0"], "n1", name="snk")
        netlist.add_output("n1")
        loads = oracle_load_capacitances(netlist)
        assert loads["drv"] == pytest.approx(3.0 + 11.0)
        assert loads["snk"] == pytest.approx(7.0)

    def test_wrong_pattern_width_rejected(self, fig2_netlist):
        with pytest.raises(OracleError, match="bits"):
            oracle_node_values(fig2_netlist, [1, 0, 1])


class TestTruthTables:
    def test_input_masks(self):
        netlist = Netlist("ins")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_gate(TEST_LIBRARY["AND2"], ["a", "b"], "y")
        netlist.add_output("y")
        tables = oracle_truth_tables(netlist)
        # Patterns indexed 0..3 as (b a) = 00, 01, 10, 11.
        assert tables["a"] == 0b1010
        assert tables["b"] == 0b1100
        assert tables["y"] == 0b1000

    def test_tables_match_scalar_walk(self):
        params = GenParams(num_inputs=4, num_gates=10)
        for seed in range(5):
            netlist = build_fuzz_netlist(params, seed)
            tables = oracle_truth_tables(netlist)
            for p in range(1 << netlist.num_inputs):
                values = oracle_node_values(
                    netlist, index_pattern(p, netlist.num_inputs)
                )
                for net, mask in tables.items():
                    assert (mask >> p) & 1 == values[net], (seed, p, net)

    def test_input_limit_enforced(self):
        netlist = Netlist("wide")
        for k in range(17):
            netlist.add_input(f"x{k}")
        netlist.add_gate(TEST_LIBRARY["BUF1"], ["x0"], "y")
        netlist.add_output("y")
        with pytest.raises(OracleError, match="limit"):
            oracle_truth_tables(netlist)


class TestExhaustiveHelpers:
    def test_matrix_matches_scalar(self, fig2_netlist):
        matrix = oracle_capacitance_matrix(fig2_netlist)
        n = fig2_netlist.num_inputs
        for i in range(1 << n):
            for f in range(1 << n):
                assert matrix[i, f] == pytest.approx(
                    oracle_switching_capacitance(
                        fig2_netlist, index_pattern(i, n), index_pattern(f, n)
                    )
                )

    def test_matrix_matches_scalar_random(self):
        netlist = build_fuzz_netlist(GenParams(num_inputs=3, num_gates=8), 7)
        matrix = oracle_capacitance_matrix(netlist)
        rng = np.random.default_rng(0)
        for _ in range(25):
            i, f = int(rng.integers(8)), int(rng.integers(8))
            assert matrix[i, f] == pytest.approx(
                oracle_switching_capacitance(
                    netlist, index_pattern(i, 3), index_pattern(f, 3)
                )
            )

    def test_average_matches_matrix_mean(self):
        for seed in range(4):
            netlist = build_fuzz_netlist(GenParams(num_inputs=4, num_gates=9), seed)
            matrix = oracle_capacitance_matrix(netlist)
            assert oracle_average_uniform(netlist) == pytest.approx(
                float(matrix.mean()), abs=1e-12
            )

    def test_max_matches_matrix_and_is_achieved(self):
        netlist = build_fuzz_netlist(GenParams(num_inputs=4, num_gates=12), 11)
        value, initial, final = oracle_max_capacitance(netlist)
        matrix = oracle_capacitance_matrix(netlist)
        assert value == pytest.approx(float(matrix.max()))
        assert oracle_switching_capacitance(netlist, initial, final) == pytest.approx(
            value
        )

    def test_pattern_index_roundtrip(self):
        for index in range(16):
            assert pattern_index(index_pattern(index, 4)) == index


class TestAgainstPipeline:
    """The one place the oracle meets the implementation under test."""

    def test_oracle_agrees_with_netlist_evaluate(self, fig2_netlist):
        for p in range(4):
            bits = index_pattern(p, 2)
            assert oracle_node_values(fig2_netlist, bits) == fig2_netlist.evaluate(
                bits
            )

    def test_oracle_agrees_with_netlist_loads(self):
        netlist = build_fuzz_netlist(GenParams(num_inputs=4, num_gates=14), 3)
        assert oracle_load_capacitances(netlist) == pytest.approx(
            netlist.load_capacitances()
        )
