"""Backend conformance: every registered StoreBackend honors one contract.

The model store's correctness arguments (atomic publish, quarantine,
version-skip, reconciliation) are written against the
:class:`~repro.serve.storage.StoreBackend` contract, not against a
filesystem — so the same test body runs parametrically against every
registered backend kind: the local directory layout and the networked
object store.  A new backend earns its registration by passing this file.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ModelError
from repro.models.addmodel import build_add_model
from repro.obs import get_metrics
from repro.serve.objectstore import ObjectStoreConfig, start_object_store
from repro.serve.storage import (
    BACKENDS,
    LocalDirBackend,
    ObjectStoreBackend,
    open_backend,
    sha256_hex,
    sync_stores,
)
from repro.serve.store import ENTRY_FORMAT, ModelStore, STORE_VERSION
from repro.testing import faults


def counter_value(name: str) -> float:
    return get_metrics().counter(name).value


@pytest.fixture(params=sorted(BACKENDS))
def backend(request, tmp_path):
    """One instance of every registered backend kind."""
    if request.param == "local":
        yield LocalDirBackend(tmp_path / "store")
        return
    assert request.param == "object"
    with start_object_store(ObjectStoreConfig()) as handle:
        client = ObjectStoreBackend(handle.host, handle.port)
        yield client
        client.close()


class TestBackendContract:
    def test_round_trip_and_overwrite(self, backend):
        backend.put("objects/aa.json", b"first")
        assert backend.get("objects/aa.json") == b"first"
        backend.put("objects/aa.json", b"second, longer payload")
        assert backend.get("objects/aa.json") == b"second, longer payload"

    def test_absent_get_raises_file_not_found(self, backend):
        with pytest.raises(FileNotFoundError):
            backend.get("objects/missing.json")

    def test_head_reports_size_and_content_hash(self, backend):
        payload = b"x" * 1234
        backend.put("objects/bb.json", payload)
        info = backend.head("objects/bb.json")
        assert info is not None
        assert info.size == 1234
        assert info.sha256 == sha256_hex(payload)
        assert backend.head("objects/nope.json") is None

    def test_list_is_sorted_and_prefix_filtered(self, backend):
        backend.put("objects/b.json", b"b")
        backend.put("objects/a.json", b"a")
        backend.put("manifest.json", b"m")
        names = backend.list("objects/")
        assert names == ["objects/a.json", "objects/b.json"]
        assert "manifest.json" in backend.list()

    def test_delete_reports_existence(self, backend):
        backend.put("objects/cc.json", b"gone soon")
        assert backend.delete("objects/cc.json") is True
        assert backend.delete("objects/cc.json") is False
        with pytest.raises(FileNotFoundError):
            backend.get("objects/cc.json")

    def test_escaping_names_are_rejected(self, backend):
        for name in ("", "/abs", "a/../b", "a\\b"):
            with pytest.raises(ModelError):
                backend.put(name, b"x")

    def test_concurrent_put_get_sees_complete_payloads(self, backend):
        """Atomic publish: readers observe whole payloads, never a mix."""
        payloads = [bytes([65 + i]) * 4096 for i in range(4)]
        stop = threading.Event()
        torn: list = []
        backend.put("objects/hot.json", payloads[0])

        def reader():
            while not stop.is_set():
                data = backend.get("objects/hot.json")
                if data not in payloads:
                    torn.append(data)
                    return

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for _ in range(20):
            for payload in payloads:
                backend.put("objects/hot.json", payload)
        stop.set()
        for thread in threads:
            thread.join(10.0)
        assert torn == []


class TestModelStoreOnBackend:
    """The store's recovery paths, replayed over each backend."""

    def test_store_round_trip(self, backend, fig2_netlist):
        store = ModelStore(backend)
        model = store.get_or_build(fig2_netlist)
        key = store.key_for(fig2_netlist)
        assert store.contains(key)
        fresh = ModelStore(backend)
        assert fresh.get(key) is not None
        assert [entry.key for entry in fresh.ls()] == [key]

    def test_torn_write_is_quarantined_and_rebuilt(
        self, backend, fig2_netlist
    ):
        store = ModelStore(backend)
        with faults.inject([faults.FaultSpec("store.torn_write", times=1)]):
            store.get_or_build(fig2_netlist)
        key = store.key_for(fig2_netlist)
        # The truncated object is on the backend; a fresh store must
        # quarantine it and rebuild rather than serve garbage.
        reader = ModelStore(backend)
        corrupt_before = counter_value("serve.store.corrupt_entries")
        model = reader.get_or_build(fig2_netlist)
        assert model is not None
        assert counter_value("serve.store.corrupt_entries") == corrupt_before + 1
        assert reader.get(key) is not None

    def test_foreign_version_is_skipped_not_deleted(
        self, backend, fig2_netlist
    ):
        store = ModelStore(backend)
        key = store.key_for(fig2_netlist)
        alien = {
            "format": ENTRY_FORMAT,
            "version": STORE_VERSION + 7,
            "key": key,
            "model": {"whatever": "a future layout"},
        }
        name = f"objects/{key}.json"
        backend.put(name, json.dumps(alien).encode("utf-8"))
        skips_before = counter_value("serve.store.version_skips")
        assert store.get(key) is None
        assert counter_value("serve.store.version_skips") == skips_before + 1
        # The foreign object was not touched, let alone deleted.
        assert json.loads(backend.get(name))["version"] == STORE_VERSION + 7

    def test_corrupt_entry_quarantine(self, backend, fig2_netlist):
        store = ModelStore(backend)
        key = store.key_for(fig2_netlist)
        backend.put(f"objects/{key}.json", b"{ not json")
        corrupt_before = counter_value("serve.store.corrupt_entries")
        assert store.get(key) is None
        assert counter_value("serve.store.corrupt_entries") == corrupt_before + 1
        assert backend.head(f"objects/{key}.json") is None


class TestSyncStores:
    def test_sync_replicates_and_verifies(self, backend, tmp_path, fig2_netlist,
                                          xor_chain_netlist):
        source = ModelStore(backend)
        source.get_or_build(fig2_netlist)
        source.get_or_build(xor_chain_netlist)
        destination = LocalDirBackend(tmp_path / "replica")
        report = sync_stores(backend, destination)
        assert report.ok
        assert report.copied == 2
        assert report.verified == 2
        # The replica serves the same models through a fresh store.
        replica = ModelStore(destination)
        assert replica.get(source.key_for(fig2_netlist)) is not None
        # A second pass copies nothing: hashes already match.
        again = sync_stores(backend, destination)
        assert again.ok and again.copied == 0 and again.skipped == 2

    def test_sync_is_directional_and_spec_driven(self, tmp_path, fig2_netlist):
        source_store = ModelStore(open_backend(tmp_path / "src"))
        source_store.get_or_build(fig2_netlist)
        report = sync_stores(
            open_backend(tmp_path / "src"), open_backend(tmp_path / "dst")
        )
        assert report.ok and report.copied == 1
        assert (
            ModelStore(open_backend(tmp_path / "dst")).get(
                source_store.key_for(fig2_netlist)
            )
            is not None
        )


class TestObjectStoreServer:
    def test_rejects_corrupt_upload(self):
        with start_object_store(ObjectStoreConfig()) as handle:
            client = ObjectStoreBackend(handle.host, handle.port)
            import base64 as b64
            with pytest.raises(OSError):
                client._call(
                    {
                        "op": "obj.put",
                        "name": "objects/x.json",
                        "data": b64.b64encode(b"payload").decode("ascii"),
                        "sha256": "0" * 64,
                    }
                )
            assert client.head("objects/x.json") is None
            client.close()

    def test_unavailable_fault_surfaces_as_oserror(self):
        with start_object_store(ObjectStoreConfig()) as handle:
            client = ObjectStoreBackend(handle.host, handle.port)
            client.put("objects/y.json", b"data")
            with faults.inject(
                [faults.FaultSpec("store.backend.unavailable", times=5)]
            ):
                with pytest.raises(OSError):
                    client.get("objects/y.json")
            assert client.get("objects/y.json") == b"data"
            client.close()

    def test_persistent_root_survives_restart(self, tmp_path, fig2_netlist):
        root = str(tmp_path / "objroot")
        with start_object_store(ObjectStoreConfig(root=root)) as handle:
            store = ModelStore(open_backend(handle.spec))
            key = store.put(fig2_netlist, build_add_model(fig2_netlist))
        with start_object_store(ObjectStoreConfig(root=root)) as handle:
            revived = ModelStore(open_backend(handle.spec))
            assert revived.get(key) is not None
