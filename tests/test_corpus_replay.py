"""Tier-1 replay of the regression corpus (``tests/corpus/*.json``).

Every corpus entry is either a shrunk fuzzer failure (now fixed) or a
hand-picked edge case; replaying them all on every test run keeps the
once-broken code paths covered forever.  ``make fuzz-smoke`` runs the
same replay through the CLI.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.testing import iter_corpus, run_case

CORPUS_DIR = Path(__file__).parent / "corpus"

ENTRIES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_exists_and_is_nonempty():
    assert ENTRIES, "tests/corpus must hold at least the seed edge cases"


def test_corpus_covers_required_edge_kinds():
    """The ISSUE's mandated corners are all represented."""
    stems = {path.stem for path in ENTRIES}
    for required in (
        "const-nodes",
        "dangling-output",
        "single-input-macro",
        "zero-cap-nets",
    ):
        assert required in stems, f"missing required corpus entry {required}"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_replays_clean(path):
    data = json.loads(path.read_text())
    assert data["format"] == "repro-fuzz-case"
    from repro.testing import load_case

    case = load_case(path)
    mismatches, _ = run_case(case)
    assert mismatches == [], [str(m) for m in mismatches]


def test_iter_corpus_walks_every_entry():
    seen = [path for path, _ in iter_corpus(CORPUS_DIR)]
    assert seen == ENTRIES


def test_replay_is_deterministic():
    """Two replays of the same entry agree check for check."""
    path = ENTRIES[0]
    from repro.testing import load_case

    first, _ = run_case(load_case(path))
    second, _ = run_case(load_case(path))
    assert [str(m) for m in first] == [str(m) for m in second]
