"""Tests for the DDFunction operator-overloading wrapper."""

from __future__ import annotations

import pytest

from repro.dd import DDFunction, DDManager
from repro.errors import DDError


@pytest.fixture
def m():
    return DDManager(3, ["a", "b", "c"])


@pytest.fixture
def abc(m):
    return (
        DDFunction(m, m.var(0)),
        DDFunction(m, m.var(1)),
        DDFunction(m, m.var(2)),
    )


class TestBooleanOperators:
    def test_and_or_xor_invert(self, m, abc):
        a, b, _ = abc
        assert (a & b).node == m.bdd_and(m.var(0), m.var(1))
        assert (a | b).node == m.bdd_or(m.var(0), m.var(1))
        assert (a ^ b).node == m.bdd_xor(m.var(0), m.var(1))
        assert (~a).node == m.bdd_not(m.var(0))

    def test_ite(self, m, abc):
        a, b, c = abc
        assert a.ite(b, c).node == m.ite(m.var(0), m.var(1), m.var(2))


class TestArithmeticOperators:
    def test_add_mul_with_constants(self, abc):
        a, _, _ = abc
        f = a * 5.0 + 2.0
        assert f([1, 0, 0]) == 7.0
        assert f([0, 0, 0]) == 2.0

    def test_radd_rmul(self, abc):
        a, _, _ = abc
        assert (3.0 + a)([1, 0, 0]) == 4.0
        assert (2.0 * a)([1, 0, 0]) == 2.0

    def test_sub(self, abc):
        a, b, _ = abc
        f = a * 4.0 - b * 1.0
        assert f([1, 1, 0]) == 3.0

    def test_maximum_minimum(self, abc):
        a, b, _ = abc
        f = (a * 4.0).maximum(b * 9.0)
        assert f([1, 1, 0]) == 9.0
        g = (a * 4.0).minimum(b * 9.0)
        assert g([1, 1, 0]) == 4.0


class TestQueriesAndPlumbing:
    def test_size_support_leaves(self, abc):
        a, b, _ = abc
        f = a * 4.0 + b
        assert f.support == {0, 1}
        assert f.leaves == {0.0, 1.0, 4.0, 5.0}
        assert f.size == f.manager.size(f.node)

    def test_boolean_and_constant_flags(self, m, abc):
        a, _, _ = abc
        assert a.is_boolean
        assert not (a * 2.0).is_boolean
        const = DDFunction(m, m.terminal(4.0))
        assert const.is_constant
        assert const.constant_value() == 4.0
        assert not a.is_constant

    def test_restrict_and_rename(self, m, abc):
        a, b, _ = abc
        f = a & b
        assert f.restrict(0, True).node == m.var(1)
        g = f.rename({0: 1, 1: 2})
        assert g.support == {1, 2}

    def test_exists_forall(self, m, abc):
        a, b, _ = abc
        f = a & b
        assert f.exists([0]).node == m.var(1)
        assert f.forall([0]).node == m.zero

    def test_sat_count(self, abc):
        a, b, _ = abc
        assert (a & b).sat_count() == 2.0  # free var c

    def test_equality_and_hash(self, m, abc):
        a, _, _ = abc
        again = DDFunction(m, m.var(0))
        assert a == again
        assert hash(a) == hash(again)
        assert a != "not a function"

    def test_cross_manager_mixing_rejected(self, abc):
        other = DDManager(3)
        foreign = DDFunction(other, other.var(0))
        a, _, _ = abc
        with pytest.raises(DDError):
            _ = a & foreign
