"""Tests for symbolic node functions, equivalence checking and validation."""

from __future__ import annotations

import itertools

import pytest

from repro.dd import DDManager
from repro.errors import NetlistError
from repro.netlist import (
    NetlistBuilder,
    assert_valid,
    build_node_functions,
    build_output_functions,
    check_equivalent,
    check_netlist,
)


class TestNodeFunctions:
    def test_functions_match_simulation(self, fig2_netlist):
        manager = DDManager(2, ["x1", "x2"])
        variables = {"x1": 0, "x2": 1}
        functions = build_node_functions(fig2_netlist, manager, variables)
        for bits in itertools.product((0, 1), repeat=2):
            values = fig2_netlist.evaluate(list(bits))
            for net, node in functions.items():
                assert manager.evaluate(node, list(bits)) == float(values[net])

    def test_missing_variable_mapping_raises(self, fig2_netlist):
        manager = DDManager(1)
        with pytest.raises(NetlistError, match="no DD variable"):
            build_node_functions(fig2_netlist, manager, {"x1": 0})

    def test_output_functions_subset(self, fig2_netlist):
        manager = DDManager(2)
        variables = {"x1": 0, "x2": 1}
        outputs = build_output_functions(fig2_netlist, manager, variables)
        assert set(outputs) == set(fig2_netlist.outputs)


class TestEquivalence:
    def test_same_function_different_structure(self):
        left = NetlistBuilder("l")
        a, b = left.input("a"), left.input("b")
        left.output("y", left.inv(left.and2(a, b)))
        right = NetlistBuilder("r")
        a, b = right.input("a"), right.input("b")
        right.output("y", right.or2(right.inv(a), right.inv(b)))
        assert check_equivalent(left.build(), right.build())

    def test_detects_difference(self):
        left = NetlistBuilder("l")
        a, b = left.input("a"), left.input("b")
        left.output("y", left.and2(a, b))
        right = NetlistBuilder("r")
        a, b = right.input("a"), right.input("b")
        right.output("y", right.or2(a, b))
        assert not check_equivalent(left.build(), right.build())

    def test_requires_same_interface(self, fig2_netlist):
        other = NetlistBuilder("other")
        other.input("different")
        other.output("y", other.inv("different"))
        with pytest.raises(NetlistError):
            check_equivalent(fig2_netlist, other.build())


class TestValidation:
    def test_clean_netlist_passes(self, fig2_netlist):
        report = check_netlist(fig2_netlist)
        assert report.ok
        assert not report.warnings
        assert_valid(fig2_netlist)  # no raise

    def test_unused_input_warns(self):
        builder = NetlistBuilder("unused")
        builder.input("a")
        builder.input("b")
        builder.output("y", builder.inv("a"))
        report = check_netlist(builder.build())
        assert report.ok
        assert any("b" in w for w in report.warnings)

    def test_dangling_gate_warns(self):
        from repro.netlist import Netlist

        netlist = Netlist("dangle")
        netlist.add_input("a")
        netlist.add_gate("INV1", ["a"], "used")
        netlist.add_gate("INV1", ["a"], "floating")
        netlist.add_output("used")
        report = check_netlist(netlist)
        assert report.ok
        assert any("floating" in w for w in report.warnings)

    def test_zero_load_gate_warns(self):
        from repro.netlist import Netlist
        from repro.netlist.gates import GateOp
        from repro.netlist.library import Cell

        free_inv = Cell("INV0C", GateOp.INV, 1, input_capacitance_fF=0.0)
        netlist = Netlist("zeroload", output_load_fF=0.0)
        netlist.add_input("a")
        netlist.add_gate("INV1", ["a"], "x")
        netlist.add_gate(free_inv, ["x"], "y")
        netlist.add_output("y")
        report = check_netlist(netlist)
        assert report.ok
        # INV1 feeds only the zero-capacitance pin; the output gate feeds
        # only the zero-fF output pad.  Both should be flagged.
        assert sum("zero load" in w for w in report.warnings) == 2

    def test_loaded_gates_do_not_warn(self, fig2_netlist):
        report = check_netlist(fig2_netlist)
        assert not any("zero load" in w for w in report.warnings)

    def test_no_outputs_is_error(self):
        from repro.netlist import Netlist

        netlist = Netlist("noout")
        netlist.add_input("a")
        netlist.add_gate("INV1", ["a"], "x")
        report = check_netlist(netlist)
        assert not report.ok
        with pytest.raises(NetlistError):
            assert_valid(netlist)

    def test_cycle_is_error_not_crash(self):
        from repro.netlist import Netlist

        netlist = Netlist("cyc")
        netlist.add_input("a")
        netlist.add_gate("AND2", ["a", "y"], "x")
        netlist.add_gate("BUF1", ["x"], "y")
        netlist.add_output("y")
        report = check_netlist(netlist)
        assert not report.ok
        assert any("cycle" in e for e in report.errors)
