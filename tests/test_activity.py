"""Tests for analytic switching-activity estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import parity
from repro.errors import SimulationError
from repro.netlist import NetlistBuilder
from repro.sim import markov_sequence, sequence_switching_capacitances, simulate
from repro.sim.activity import exact_activity, propagated_activity


class TestExactActivity:
    @pytest.mark.parametrize("sp,st", [(0.5, 0.5), (0.5, 0.2), (0.3, 0.3)])
    def test_matches_long_simulation(self, fig2_netlist, sp, st):
        report = exact_activity(fig2_netlist, sp, st)
        sequence = markov_sequence(2, 30000, sp=sp, st=st, seed=81)
        golden = sequence_switching_capacitances(fig2_netlist, sequence)
        assert report.average_capacitance_fF == pytest.approx(
            float(np.mean(golden)), rel=0.05
        )

    def test_signal_probabilities_exact(self, fig2_netlist):
        report = exact_activity(fig2_netlist, sp=0.5, st=0.5)
        # g3 = x1 + x2 -> P = 3/4; inverters -> 1/2.
        values = fig2_netlist.evaluate({"x1": 0, "x2": 0})  # touch nets
        assert report.signal_probability["x1"] == pytest.approx(0.5)
        or_net = [g.output for g in fig2_netlist.gates if g.cell.op.value == "or"][0]
        assert report.signal_probability[or_net] == pytest.approx(0.75)

    def test_rising_probability_zero_at_zero_activity(self, fig2_netlist):
        report = exact_activity(fig2_netlist, sp=0.5, st=0.0)
        assert all(v == pytest.approx(0.0) for v in report.rising_probability.values())
        assert report.average_capacitance_fF == pytest.approx(0.0)

    def test_agrees_with_add_model_expectation(self):
        from repro.models import build_add_model

        netlist = parity(5)
        model = build_add_model(netlist)
        for sp, st in [(0.5, 0.4), (0.4, 0.25)]:
            assert exact_activity(netlist, sp, st).average_capacitance_fF == \
                pytest.approx(model.expected_capacitance(sp, st))

    def test_infeasible_statistics_rejected(self, fig2_netlist):
        with pytest.raises(SimulationError):
            exact_activity(fig2_netlist, sp=0.1, st=0.9)


class TestPropagatedActivity:
    def test_exact_on_tree_circuit(self):
        """Without reconvergence the independence assumption is exact."""
        netlist = parity(4)
        for sp, st in [(0.5, 0.5), (0.5, 0.2)]:
            cheap = propagated_activity(netlist, sp, st)
            exact = exact_activity(netlist, sp, st)
            assert cheap.average_capacitance_fF == pytest.approx(
                exact.average_capacitance_fF, rel=0.02
            )

    def test_signal_probability_on_and_tree(self):
        builder = NetlistBuilder("and4")
        bits = builder.bus("x", 4)
        builder.output("y", builder.and_tree(bits))
        netlist = builder.build()
        report = propagated_activity(netlist, sp=0.5, st=0.5)
        and_output = [
            g.output for g in netlist.gates if g.cell.op.value == "and"
        ]
        deepest = netlist.topological_order()[-2].output  # before out buffer
        assert report.signal_probability[deepest] == pytest.approx(1 / 16)

    def test_reconvergence_introduces_error(self, reconvergent_netlist):
        """The cheap estimator must deviate where fanout reconverges,
        and the exact one must not."""
        sp, st = 0.5, 0.5
        exact = exact_activity(reconvergent_netlist, sp, st)
        sequence = markov_sequence(3, 30000, sp=sp, st=st, seed=82)
        golden = float(
            np.mean(sequence_switching_capacitances(reconvergent_netlist, sequence))
        )
        assert exact.average_capacitance_fF == pytest.approx(golden, rel=0.05)

    def test_probabilities_stay_in_range(self):
        from repro.circuits import alu

        netlist = alu(3)
        report = propagated_activity(netlist, sp=0.4, st=0.3)
        for value in report.signal_probability.values():
            assert 0.0 <= value <= 1.0
        for value in report.rising_probability.values():
            assert 0.0 <= value <= 0.5 + 1e-9

    def test_mux_propagation(self):
        builder = NetlistBuilder("m")
        s, a, b = builder.input("s"), builder.input("a"), builder.input("b")
        builder.output("y", builder.mux(s, a, b))
        netlist = builder.build()
        report = propagated_activity(netlist, sp=0.5, st=0.5)
        mux_net = [g.output for g in netlist.gates if g.cell.op.value == "mux"][0]
        assert report.signal_probability[mux_net] == pytest.approx(0.5)
