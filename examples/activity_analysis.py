"""Analytic activity analysis and worst-case vector extraction.

Two things a white-box power model enables that black-box characterized
models cannot:

1. *closed-form average power* under specified input statistics — both an
   exact symbolic estimator and the classic (cheap, independence-assuming)
   propagation, compared against simulation;
2. *worst-case vector extraction*: the input transition that maximises the
   macro's switching capacitance, read straight off the ADD in linear
   time — the query the paper calls "unfeasible" for exhaustive
   simulation.

Run with:  python examples/activity_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import build_add_model, load_circuit, markov_sequence
from repro.sim import (
    exact_activity,
    propagated_activity,
    sequence_switching_capacitances,
    switching_capacitance,
)


def main() -> None:
    netlist = load_circuit("cmb")
    print(f"macro: {netlist.name} ({netlist.num_inputs} inputs, "
          f"{netlist.num_gates} gates)")

    print("\naverage switching capacitance (fF/cycle):")
    print(f"  {'sp':>4} {'st':>4} {'simulated':>10} {'exact':>8} "
          f"{'propagated':>11}")
    for sp, st in [(0.5, 0.5), (0.5, 0.2), (0.3, 0.3), (0.7, 0.15)]:
        sequence = markov_sequence(netlist.num_inputs, 4000, sp=sp, st=st, seed=5)
        simulated = float(
            np.mean(sequence_switching_capacitances(netlist, sequence))
        )
        exact = exact_activity(netlist, sp, st).average_capacitance_fF
        cheap = propagated_activity(netlist, sp, st).average_capacitance_fF
        print(f"  {sp:4.2f} {st:4.2f} {simulated:10.2f} {exact:8.2f} "
              f"{cheap:11.2f}")
    print("  (exact = symbolic, no simulation; propagated = independence "
          "assumption,\n   its deviation measures reconvergence correlation)")

    model = build_add_model(netlist)
    initial, final, value = model.worst_case_transition()
    verified = switching_capacitance(netlist, initial, final)
    print(f"\nworst-case transition (extracted from the {model.size}-node ADD):")
    print(f"  x_i = {''.join(str(b) for b in initial)}")
    print(f"  x_f = {''.join(str(b) for b in final)}")
    print(f"  C   = {value:.1f} fF (gate-level check: {verified:.1f} fF)")

    quiet_i, quiet_f, quiet_c = model.quietest_transition()
    print(f"quietest non-trivial query works too: C = {quiet_c:.1f} fF")

    hot = exact_activity(netlist, 0.5, 0.5)
    top = sorted(hot.rising_probability.items(), key=lambda kv: -kv[1])[:5]
    print("\nmost active nets at sp = st = 0.5 (P(rising) per cycle):")
    for net, probability in top:
        print(f"  {net:12s} {probability:.3f}")


if __name__ == "__main__":
    main()
