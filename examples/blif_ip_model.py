"""BLIF workflow: ship a power model instead of a netlist (the IP story).

The paper notes that back-annotating a functional description with Eq. (4)
"cannot be used... or otherwise the IP would be violated": the raw formula
exposes every internal node function.  The precomputed ADD hides them — a
vendor can ship the model, and the integrator gets pattern-accurate power
numbers without seeing the gate-level implementation.

This example plays both roles:

1. (vendor)    read a macro from BLIF, build the ADD model;
2. (vendor)    export the netlist to structural Verilog for tape-out;
3. (integrator) use *only the model* to rank candidate input encodings by
   energy — no netlist access needed.

Run with:  python examples/blif_ip_model.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro import build_add_model, parse_blif, read_blif, save_blif
from repro.circuits import alu
from repro.netlist import save_verilog

GRAY = [0, 1, 3, 2, 6, 7, 5, 4]


def encode(values, bits):
    return [[(v >> k) & 1 for k in range(bits)] for v in values]


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro_ip_")

    # -- vendor side ------------------------------------------------------
    macro = alu(3, name="alu_ip")
    blif_path = os.path.join(workdir, "alu_ip.blif")
    save_blif(macro, blif_path)
    print(f"vendor: wrote macro to {blif_path}")

    netlist = read_blif(blif_path)
    model = build_add_model(netlist, max_nodes=2000)
    print(f"vendor: built ADD power model ({model.size} nodes) — "
          "internal functions are no longer recoverable from it")

    verilog_path = os.path.join(workdir, "alu_ip.v")
    save_verilog(netlist, verilog_path)
    print(f"vendor: exported structural Verilog to {verilog_path}")

    # -- integrator side (model only) --------------------------------------
    # Which counter encoding burns less energy on the ALU's 'a' operand
    # while it counts 0..7 cyclically?  Ask the model, not the netlist.
    n = model.num_inputs
    results = {}
    for label, order in [("binary", list(range(8))), ("gray", GRAY)]:
        codes = encode(order, 3)
        total = 0.0
        for step in range(len(codes)):
            before = codes[step]
            after = codes[(step + 1) % len(codes)]
            # inputs: a0 a1 a2 b0 b1 b2 op0 op1 — drive a, keep the rest low.
            initial = before + [0, 0, 0] + [0, 0]
            final = after + [0, 0, 0] + [0, 0]
            total += model.energy_fJ(initial, final)
        results[label] = total
        print(f"integrator: {label:6s} counting sequence costs "
              f"{total:8.1f} fJ per full cycle")

    saving = 100.0 * (1.0 - results["gray"] / results["binary"])
    print(f"integrator: gray coding saves {saving:.1f}% on this macro's "
          "'a' port — decided without ever opening the netlist")


if __name__ == "__main__":
    main()
