"""Hybrid modeling: analytical structural core + characterized glitch residual.

The paper's golden model is zero-delay, so glitches are a *parasitic*
phenomenon its analytical model cannot see — but Section 2 argues the
analytical approach composes with characterization: keep the ADD for the
(dominant, strongly pattern-dependent) structural power, and characterize
only the (smaller, smoother) parasitic remainder.

This example quantifies that split on a glitch-prone carry chain: it
measures how much energy the event-driven simulator attributes to
glitches, then shows the hybrid model recovering most of the gap left by
the purely structural ADD.

Run with:  python examples/hybrid_glitch_model.py
"""

from __future__ import annotations

import numpy as np

from repro import build_add_model, markov_sequence
from repro.circuits import ripple_adder
from repro.models import HybridModel
from repro.sim import (
    sequence_glitch_capacitances,
    sequence_switching_capacitances,
)


def main() -> None:
    netlist = ripple_adder(6, name="add6")
    print(f"macro: {netlist.name} ({netlist.num_inputs} inputs, "
          f"{netlist.num_gates} gates) — a carry chain, so glitchy")

    sequence = markov_sequence(netlist.num_inputs, 1200, sp=0.5, st=0.4, seed=3)
    structural = sequence_switching_capacitances(netlist, sequence)
    total = sequence_glitch_capacitances(netlist, sequence)
    glitch_share = 100.0 * (total.mean() - structural.mean()) / total.mean()
    print(f"\nevent-driven simulation over {len(total)} cycles:")
    print(f"  structural (zero-delay) component: {structural.mean():7.1f} fF/cycle")
    print(f"  total incl. glitches:              {total.mean():7.1f} fF/cycle")
    print(f"  -> glitches are {glitch_share:.1f}% of the energy here")

    add_model = build_add_model(netlist, max_nodes=2000)
    hybrid = HybridModel.characterize(
        netlist, structural=add_model, training_length=400
    )

    print("\naverage error vs glitch-aware truth "
          "(residual trained at sp=0.5, st=0.5):")
    print(f"  {'sp':>5} {'st':>5} {'pure ADD':>9} {'hybrid':>7}")
    for sp, st in [(0.5, 0.5), (0.5, 0.45), (0.5, 0.3), (0.6, 0.5), (0.35, 0.45)]:
        test = markov_sequence(netlist.num_inputs, 800, sp=sp, st=st, seed=9)
        truth = sequence_glitch_capacitances(netlist, test)
        pure = 100 * abs(
            add_model.sequence_capacitances(test).mean() - truth.mean()
        ) / truth.mean()
        mixed = 100 * abs(
            hybrid.sequence_capacitances(test).mean() - truth.mean()
        ) / truth.mean()
        print(f"  {sp:5.2f} {st:5.2f} {pure:8.1f}% {mixed:6.1f}%")

    print("\nthe residual needed only a 400-vector characterization and")
    print("holds up under moderate statistics shifts; the last row shows a")
    print("large sp shift where even the residual drifts — exactly the")
    print("out-of-sample fragility the paper attributes to characterized")
    print("components (the structural core, note, never drifts).")


if __name__ == "__main__":
    main()
