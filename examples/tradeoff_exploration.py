"""Exploring the accuracy/complexity trade-off of ADD power models (Fig. 7b).

One exact model of the cm85-style comparator is shrunk through a ladder of
node budgets; each size is scored (ARE over an (sp, st) sweep) against the
same golden gate-level runs.  Also contrasts the three collapse strategies
at a fixed size: average-accurate, conservative upper, conservative lower.

Run with:  python examples/tradeoff_exploration.py
"""

from __future__ import annotations

from repro import SweepConfig, load_circuit, size_accuracy_tradeoff
from repro.eval import series_plot
from repro.models import build_add_model, shrink_model


def main() -> None:
    netlist = load_circuit("cm85")
    config = SweepConfig(
        sp_values=(0.5,),
        st_values=(0.2, 0.4, 0.6, 0.8),
        sequence_length=1500,
        seed=11,
    )

    exact = build_add_model(netlist)
    print(f"exact switching-capacitance ADD: {exact.size} nodes, "
          f"{len(exact.leaf_values())} distinct capacitance levels")

    sizes = [1500, 1000, 500, 200, 100, 50, 20, 10, 5]
    points = size_accuracy_tradeoff(
        netlist, sizes, config=config, base_model=exact
    )
    print("\nsize/accuracy trade-off (avg strategy):")
    print(series_plot(
        [(p.actual_nodes, p.are_percent) for p in points],
        label_x="nodes",
        label_y="ARE %",
    ))

    print("\nstrategies at a 50-node budget:")
    for strategy in ("avg", "max", "min"):
        model = build_add_model(netlist, max_nodes=50, strategy=strategy)
        print(f"  {strategy:4s}: global max {model.global_maximum():7.1f} fF, "
              f"uniform average {model.average_capacitance_uniform():7.1f} fF")
    print(f"  (exact uniform average: "
          f"{exact.average_capacitance_uniform():7.1f} fF — note the avg "
          "strategy preserves it exactly at any size)")


if __name__ == "__main__":
    main()
