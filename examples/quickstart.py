"""Quickstart: build a characterization-free power model for one macro.

Builds the ADD switching-capacitance model of the cm85-style comparator
analytically (no simulation), evaluates it on individual transitions, and
cross-checks it against the golden gate-level reference.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DEFAULT_VDD,
    build_add_model,
    load_circuit,
    markov_sequence,
    sequence_switching_capacitances,
    switching_capacitance,
)


def main() -> None:
    netlist = load_circuit("cm85")
    stats = netlist.stats()
    print(f"macro: {stats.name}  ({stats.num_inputs} inputs, "
          f"{stats.num_gates} gates, depth {stats.depth})")

    # --- analytical model construction (the paper's Fig. 6 loop) --------
    # No size budget: the exact model is bit-true to gate-level simulation.
    # Pass max_nodes=<N> to trade accuracy for a smaller model (Fig. 7b).
    model = build_add_model(netlist)
    report = model.report
    print(f"model built in {report.cpu_seconds:.2f} s: "
          f"{report.final_nodes} ADD nodes, "
          f"{len(model.leaf_values())} distinct capacitance levels")

    # --- per-pattern evaluation -----------------------------------------
    quiet = [0] * netlist.num_inputs
    busy = [1] * netlist.num_inputs
    c_estimate = model.switching_capacitance(quiet, busy)
    c_golden = switching_capacitance(netlist, quiet, busy)
    energy = model.energy_fJ(quiet, busy)
    print(f"\ntransition all-zeros -> all-ones:")
    print(f"  model:     C = {c_estimate:7.1f} fF "
          f"(E = {energy:.0f} fJ at Vdd = {DEFAULT_VDD} V)")
    print(f"  gate-level C = {c_golden:7.1f} fF")

    # --- sequence-level accuracy ----------------------------------------
    print("\naverage switching capacitance across input statistics:")
    print(f"  {'sp':>4} {'st':>4} {'golden (fF)':>12} {'model (fF)':>11} "
          f"{'analytic (fF)':>14}")
    for sp, st in [(0.5, 0.1), (0.5, 0.5), (0.3, 0.3), (0.7, 0.2)]:
        sequence = markov_sequence(
            netlist.num_inputs, 2000, sp=sp, st=st, seed=42
        )
        golden = float(
            np.mean(sequence_switching_capacitances(netlist, sequence))
        )
        estimated = model.average_capacitance(sequence)
        analytic = model.expected_capacitance(sp, st)
        print(f"  {sp:4.1f} {st:4.1f} {golden:12.2f} {estimated:11.2f} "
              f"{analytic:14.2f}")

    print("\nNote: the model was built purely from the netlist structure —")
    print("no training simulation was ever run (characterization-free).")


if __name__ == "__main__":
    main()
