"""Worst-case power budgeting for a multi-macro RTL datapath.

Section 1.2 of the paper: summing per-macro *constant* worst cases gives a
uselessly loose design-level bound ("no compensation occurs"), while
summing *pattern-dependent* upper bounds — evaluated on the patterns each
macro actually sees — stays conservative and is far tighter.

This example builds a small datapath (two adders feeding a comparator and
a parity checker), attaches conservative ADD bound models to every macro,
and compares the two bounding styles cycle by cycle against gate-level
truth.

Run with:  python examples/rtl_datapath_bounds.py
"""

from __future__ import annotations

import numpy as np

from repro import RTLDesign, build_upper_bound_model, markov_sequence
from repro.circuits import comparator, parity, ripple_adder


def build_datapath() -> RTLDesign:
    adder = ripple_adder(4, carry_in=False, name="add4")
    compare = comparator(4, name="cmp4")
    par = parity(4, name="par4")

    inputs = [f"{bus}{k}" for bus in ("a", "b", "c", "d") for k in range(4)]
    design = RTLDesign("datapath", inputs)
    design.add_instance(
        "sum_ab", adder,
        {f"a{k}": f"a{k}" for k in range(4)} | {f"b{k}": f"b{k}" for k in range(4)},
    )
    design.add_instance(
        "sum_cd", adder,
        {f"a{k}": f"c{k}" for k in range(4)} | {f"b{k}": f"d{k}" for k in range(4)},
    )
    design.add_instance(
        "cmp", compare,
        {f"a{k}": f"sum_ab.s{k}" for k in range(4)}
        | {f"b{k}": f"sum_cd.s{k}" for k in range(4)},
    )
    design.add_instance(
        "par", par,
        {
            "x0": "sum_ab.cout",
            "x1": "sum_cd.cout",
            "x2": "cmp.gt",
            "x3": "cmp.eq",
        },
    )
    return design


def main() -> None:
    design = build_datapath()
    print(f"design {design.name!r}: {len(design.instances)} macro instances, "
          f"{len(design.primary_inputs)} inputs")

    for instance in design.instances:
        bound = build_upper_bound_model(instance.netlist, max_nodes=300)
        design.attach_model(instance.name, bound)
        print(f"  {instance.name:8s} -> bound model, {bound.size} nodes, "
              f"worst case {bound.global_maximum():.0f} fF")

    constant_bound = design.constant_worst_case()
    print(f"\nclassical composition (sum of worst cases): "
          f"{constant_bound:8.0f} fF every cycle")

    sequence = markov_sequence(
        len(design.primary_inputs), 2000, sp=0.5, st=0.25, seed=7
    )
    pattern_bound = design.estimated_capacitances(sequence)
    golden = design.golden_capacitances(sequence)

    violations = int(np.sum(pattern_bound < golden - 1e-9))
    print(f"pattern-dependent composed bound over {len(golden)} cycles:")
    print(f"  mean bound {pattern_bound.mean():8.0f} fF   "
          f"(true mean {golden.mean():8.0f} fF)")
    print(f"  peak bound {pattern_bound.max():8.0f} fF   "
          f"(true peak {golden.max():8.0f} fF)")
    print(f"  conservatism violations: {violations}")
    print(f"\ntightening vs constant bound: "
          f"{constant_bound / pattern_bound.mean():.1f}x on the average cycle, "
          f"{constant_bound / pattern_bound.max():.1f}x at the observed peak")


if __name__ == "__main__":
    main()
