"""repro — characterization-free behavioral power modeling.

A from-scratch Python implementation of the RT-level power modeling
approach of Bogliolo, Benini and De Micheli (DATE 1998): the switching
capacitance of a combinational macro is constructed *analytically* from
its gate-level netlist as an Algebraic Decision Diagram, compressed by
variance-guided node collapsing, and evaluated pattern by pattern in time
linear in the number of inputs — with no simulation-based
characterization, statistics-independent accuracy, and conservative
pattern-dependent upper bounds.

Quickstart::

    from repro import load_circuit, build_add_model

    netlist = load_circuit("cm85")
    model = build_add_model(netlist, max_nodes=500)          # avg-accurate
    bound = build_add_model(netlist, max_nodes=500, strategy="max")
    c = model.switching_capacitance([0] * 11, [1] * 11)      # fF

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every reproduced table and figure.
"""

from repro.circuits import (
    PAPER_TABLE1,
    available_circuits,
    load_circuit,
    load_suite,
)
from repro.dd import DDFunction, DDManager, TransitionSpace, approximate
from repro.errors import (
    CharacterizationError,
    DDError,
    ModelError,
    NetlistError,
    ParseError,
    ReproError,
    SequenceError,
    SimulationError,
)
from repro.eval import (
    SweepConfig,
    SweepResult,
    run_sweep,
    size_accuracy_tradeoff,
)
from repro.models import (
    AddPowerModel,
    ConstantModel,
    HybridModel,
    LinearModel,
    PowerModel,
    StatsLUTModel,
    build_add_model,
    build_lower_bound_model,
    build_upper_bound_model,
    constant_bound_from_model,
    generate_training_data,
    shrink_model,
    verify_upper_bound,
)
from repro.netlist import (
    TEST_LIBRARY,
    Cell,
    GateOp,
    Library,
    Netlist,
    NetlistBuilder,
    parse_blif,
    read_blif,
    save_blif,
    write_blif,
)
from repro.rtl import RTLDesign
from repro.sim import (
    DEFAULT_VDD,
    markov_sequence,
    sequence_switching_capacitances,
    simulate_sequence_power,
    switching_capacitance,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "DDError",
    "NetlistError",
    "ParseError",
    "SimulationError",
    "ModelError",
    "CharacterizationError",
    "SequenceError",
    # decision diagrams
    "DDManager",
    "DDFunction",
    "TransitionSpace",
    "approximate",
    # netlists
    "Netlist",
    "NetlistBuilder",
    "GateOp",
    "Cell",
    "Library",
    "TEST_LIBRARY",
    "parse_blif",
    "read_blif",
    "write_blif",
    "save_blif",
    # simulation
    "markov_sequence",
    "switching_capacitance",
    "sequence_switching_capacitances",
    "simulate_sequence_power",
    "DEFAULT_VDD",
    # models
    "PowerModel",
    "AddPowerModel",
    "build_add_model",
    "shrink_model",
    "ConstantModel",
    "LinearModel",
    "StatsLUTModel",
    "HybridModel",
    "build_upper_bound_model",
    "build_lower_bound_model",
    "constant_bound_from_model",
    "verify_upper_bound",
    "generate_training_data",
    # evaluation
    "SweepConfig",
    "SweepResult",
    "run_sweep",
    "size_accuracy_tradeoff",
    # circuits
    "load_circuit",
    "load_suite",
    "available_circuits",
    "PAPER_TABLE1",
    # RTL composition
    "RTLDesign",
]
