"""Statistics of the discrete functions represented by ADD nodes.

These are the quantities driving the paper's approximation strategies
(Section 3): for each node the average and variance of the represented
sub-function (Eq. 5-7), its maximum and minimum, and the mean square error
incurred by replacing it with its maximum (Eq. 8).

All recursions operate directly on *reduced* diagrams: ``avg``, ``var``,
``max`` and ``min`` of a function are invariant under adding variables the
function does not depend on, so skipped levels need no correction, and
because a node always represents the same function, per-node memoisation
across shared subgraphs is sound.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

from repro.dd.manager import DDManager


class NodeStats(NamedTuple):
    """Statistics of the sub-function rooted at one ADD node.

    A NamedTuple (not a dataclass) because millions are created on the
    model-construction hot path.

    Attributes
    ----------
    avg:
        Average of the sub-function over its full Boolean domain (Eq. 6).
    var:
        Variance over the domain (Eq. 5); equals the mean square error of
        approximating the sub-function by ``avg``.
    max:
        Maximum leaf value reachable from the node.
    min:
        Minimum leaf value reachable from the node.
    """

    avg: float
    var: float
    max: float
    min: float

    @property
    def mse_max(self) -> float:
        """MSE of approximating the sub-function by its maximum (Eq. 8)."""
        return self.var + (self.max - self.avg) ** 2

    @property
    def mse_min(self) -> float:
        """MSE of approximating the sub-function by its minimum (Eq. 8 dual)."""
        return self.var + (self.min - self.avg) ** 2

    def summary(self) -> str:
        """One-line human-readable digest (for logs and span attributes)."""
        return (
            f"avg={self.avg:.4g} var={self.var:.4g} "
            f"min={self.min:.4g} max={self.max:.4g} "
            f"(mse_max={self.mse_max:.4g})"
        )


def compute_stats(manager: DDManager, root: int) -> Dict[int, NodeStats]:
    """Compute :class:`NodeStats` for every node reachable from ``root``.

    Single bottom-up traversal (the first of the paper's "two ADD
    traversals"); returns a dict keyed by node id, terminals included.
    """
    stats: Dict[int, NodeStats] = {}
    # Iterative post-order to avoid recursion limits on deep diagrams.
    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if node in stats:
            continue
        if manager.is_terminal(node):
            value = manager.value(node)
            stats[node] = NodeStats(avg=value, var=0.0, max=value, min=value)
            continue
        lo, hi = manager.lo(node), manager.hi(node)
        if not expanded:
            stack.append((node, True))
            stack.append((lo, False))
            stack.append((hi, False))
            continue
        stats[node] = _combine(stats[lo], stats[hi])
    return stats


def _combine(lo: NodeStats, hi: NodeStats) -> NodeStats:
    """Merge child statistics per the paper's recursive formulas (Eq. 7)."""
    avg = 0.5 * (lo.avg + hi.avg)
    var = 0.5 * (
        lo.var
        + (lo.avg - avg) ** 2
        + hi.var
        + (hi.avg - avg) ** 2
    )
    return NodeStats(
        avg=avg,
        var=var,
        max=max(lo.max, hi.max),
        min=min(lo.min, hi.min),
    )


def function_stats(manager: DDManager, root: int) -> NodeStats:
    """Statistics of the whole function rooted at ``root``."""
    return compute_stats(manager, root)[root]


def average(manager: DDManager, root: int) -> float:
    """Average of the function over its full Boolean domain (Eq. 6)."""
    return function_stats(manager, root).avg


def variance(manager: DDManager, root: int) -> float:
    """Variance of the function over its full Boolean domain (Eq. 5)."""
    return function_stats(manager, root).var


def maximum(manager: DDManager, root: int) -> float:
    """Maximum value the function attains."""
    return function_stats(manager, root).max


def minimum(manager: DDManager, root: int) -> float:
    """Minimum value the function attains."""
    return function_stats(manager, root).min


def leaf_histogram(manager: DDManager, root: int) -> Dict[float, float]:
    """Fraction of the input space mapped to each leaf value.

    Returns ``{leaf_value: probability}`` with probabilities summing to 1
    (under uniformly random inputs).  Useful for inspecting how much
    pattern dependence an approximated model retains.
    """
    memo: Dict[int, Dict[float, float]] = {}

    def walk(node: int) -> Dict[float, float]:
        hit = memo.get(node)
        if hit is not None:
            return hit
        if manager.is_terminal(node):
            result = {manager.value(node): 1.0}
        else:
            result = {}
            for child in (manager.lo(node), manager.hi(node)):
                for value, mass in walk(child).items():
                    result[value] = result.get(value, 0.0) + 0.5 * mass
        memo[node] = result
        return result

    return walk(root)


def expected_value_biased(
    manager: DDManager, root: int, one_probability: Dict[int, float]
) -> float:
    """Expected value of the function under independent biased inputs.

    ``one_probability`` maps variable index to P(var = 1); variables not
    listed default to 0.5.  This generalises Eq. 6 to non-uniform input
    statistics and is used for analytic average-power prediction.
    """
    memo: Dict[int, float] = {}

    def walk(node: int) -> float:
        hit = memo.get(node)
        if hit is not None:
            return hit
        if manager.is_terminal(node):
            result = manager.value(node)
        else:
            p = one_probability.get(manager.top_var(node), 0.5)
            result = (1.0 - p) * walk(manager.lo(node)) + p * walk(manager.hi(node))
        memo[node] = result
        return result

    return walk(root)
