"""Hash-consed decision-diagram manager (ROBDDs and ADDs).

This module is a from-scratch replacement for the CUDD package used by the
paper.  A single :class:`DDManager` stores both Boolean functions (BDDs,
i.e. diagrams whose terminals are 0 and 1) and discrete real-valued
functions (ADDs) in one shared, reduced, ordered node store.

Nodes are identified by small integers.  Node 0 is the terminal ``0.0`` and
node 1 the terminal ``1.0``; further terminals and internal nodes are
allocated on demand and hash-consed, so diagrams are canonical: two
equivalent functions always have the same node id.

The manager exposes the raw integer-id interface used by the algorithms in
this package; :class:`DDFunction` (see :mod:`repro.dd.function`) wraps ids
with operator overloading for the public API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.errors import DDError, NotBooleanError, VariableOrderError
from repro.obs.metrics import get_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dd.compiled import CompiledDD

# Telemetry instruments (repro.obs).  Handles are cache-stable (the global
# registry is reset in place, never replaced) and only counted at the
# *top-level* entry of each operation — the recursions below call the
# private ``_apply``/``_ite`` directly, so the hot inner loops carry zero
# instrumentation beyond the pre-existing cache counters.
_MET = get_metrics()
_APPLY_CALLS = _MET.counter("dd.apply.calls")
_ITE_CALLS = _MET.counter("dd.ite.calls")
_GC_CLEARS = _MET.counter("dd.gc.clears")

#: Sentinel "variable index" stored for terminal nodes.  It compares greater
#: than every real variable index so level comparisons need no special case.
TERMINAL_LEVEL = 1 << 30

#: Default entry cap of the memoised-operation cache.  Successive model
#: builds on one manager used to grow the cache without bound; past this
#: many entries the cache is cleared wholesale (clear-on-threshold —
#: results are recomputed, semantics unchanged).
DEFAULT_OP_CACHE_LIMIT = 1 << 20

#: How many compiled diagram forms a manager keeps around.
_COMPILED_CACHE_LIMIT = 16

#: Batches at least this tall are routed through the compiled array kernel
#: (:mod:`repro.dd.compiled`); smaller ones keep the frontier traversal,
#: whose setup cost is lower than compiling the diagram.
BATCH_COMPILE_MIN_ROWS = 32


@dataclass(frozen=True)
class CacheStats:
    """Cumulative operation-cache counters of one :class:`DDManager`.

    ``evictions`` counts whole-cache clears triggered by the size cap
    (explicit :meth:`DDManager.clear_caches` calls are not counted there;
    they reset all counters instead, so hit rates always describe the
    current cache generation).
    """

    hits: int
    misses: int
    size: int
    limit: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def summary(self) -> str:
        """One-line human-readable digest (for logs and ``repro stats``)."""
        return (
            f"op-cache: {self.hits:,} hits / {self.misses:,} misses "
            f"(hit rate {self.hit_rate:.2f}), {self.size:,}/{self.limit:,} "
            f"entries, {self.evictions} evictions"
        )

#: Number of decimal digits used to canonicalise terminal values.  Rounding
#: keeps float noise (e.g. ``0.1 + 0.2``) from creating spuriously distinct
#: leaves, which would destroy sharing without changing semantics.
_VALUE_DIGITS = 9


def _canonical(value: float) -> float:
    rounded = round(float(value), _VALUE_DIGITS)
    # Avoid the separate -0.0 key.
    return rounded + 0.0 if rounded != 0 else 0.0


class DDManager:
    """A store of reduced, ordered decision diagrams over named variables.

    Parameters
    ----------
    num_vars:
        Number of variables initially declared.  More can be added with
        :meth:`add_var`.
    var_names:
        Optional names, one per variable; defaults to ``v0, v1, ...``.
        Names are used only for display (dot export, debugging).
    """

    def __init__(
        self,
        num_vars: int = 0,
        var_names: Sequence[str] | None = None,
        *,
        op_cache_limit: int | None = None,
    ):
        if num_vars < 0:
            raise DDError(f"num_vars must be non-negative, got {num_vars}")
        if var_names is not None and len(var_names) != num_vars:
            raise DDError(
                f"{len(var_names)} names given for {num_vars} variables"
            )
        # Parallel arrays indexed by node id.
        self._var: List[int] = []
        self._lo: List[int] = []
        self._hi: List[int] = []
        # Unique tables.
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._terminal_ids: Dict[float, int] = {}
        self._terminal_values: Dict[int, float] = {}
        # Operation caches (persist across calls; cleared via clear_caches).
        self._op_cache: Dict[Tuple, int] = {}
        self._op_cache_limit = (
            DEFAULT_OP_CACHE_LIMIT if op_cache_limit is None else op_cache_limit
        )
        if self._op_cache_limit < 1:
            raise DDError(
                f"op_cache_limit must be >= 1, got {self._op_cache_limit}"
            )
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        # Compiled (array-form) diagrams keyed by root id.  The node store
        # is append-only, so entries never go stale.
        self._compiled_cache: Dict[int, "CompiledDD"] = {}
        self.var_names: List[str] = (
            list(var_names) if var_names is not None else [f"v{i}" for i in range(num_vars)]
        )
        self._num_vars = num_vars
        # Preallocate the 0.0 and 1.0 terminals so BDD constants are stable.
        self.zero = self.terminal(0.0)
        self.one = self.terminal(1.0)

    # ------------------------------------------------------------------
    # Node store primitives
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return self._num_vars

    @property
    def num_nodes(self) -> int:
        """Total nodes ever allocated in this manager (terminals included)."""
        return len(self._var)

    def add_var(self, name: str | None = None) -> int:
        """Declare a new variable *after* all existing ones; return its index."""
        index = self._num_vars
        self._num_vars += 1
        self.var_names.append(name if name is not None else f"v{index}")
        return index

    def terminal(self, value: float) -> int:
        """Return the (hash-consed) terminal node for ``value``."""
        key = _canonical(value)
        node = self._terminal_ids.get(key)
        if node is None:
            node = self._alloc(TERMINAL_LEVEL, 0, 0)
            self._terminal_ids[key] = node
            self._terminal_values[node] = key
        return node

    def _alloc(self, var: int, lo: int, hi: int) -> int:
        self._var.append(var)
        self._lo.append(lo)
        self._hi.append(hi)
        return len(self._var) - 1

    def node(self, var: int, lo: int, hi: int) -> int:
        """Return the reduced, hash-consed node ``(var, lo, hi)``.

        Applies the two ROBDD reduction rules: redundant tests
        (``lo == hi``) collapse to the child, and structurally identical
        nodes are shared.  Children must sit strictly below ``var`` in the
        order; violating that is a programming error and raises.
        """
        if lo == hi:
            return lo
        if not 0 <= var < self._num_vars:
            raise VariableOrderError(f"variable index {var} out of range")
        if self._var[lo] <= var or self._var[hi] <= var:
            raise VariableOrderError(
                f"children of variable {var} must have strictly larger level"
            )
        key = (var, lo, hi)
        node = self._unique.get(key)
        if node is None:
            node = self._alloc(var, lo, hi)
            self._unique[key] = node
        return node

    def var(self, index: int) -> int:
        """Return the BDD of the projection function for variable ``index``."""
        return self.node(index, self.zero, self.one)

    def nvar(self, index: int) -> int:
        """Return the BDD of the *negated* projection of variable ``index``."""
        return self.node(index, self.one, self.zero)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_terminal(self, u: int) -> bool:
        """True if ``u`` is a leaf node."""
        return self._var[u] == TERMINAL_LEVEL

    def value(self, u: int) -> float:
        """Value of a terminal node ``u``."""
        try:
            return self._terminal_values[u]
        except KeyError:
            raise DDError(f"node {u} is not a terminal") from None

    def top_var(self, u: int) -> int:
        """Variable index tested at node ``u`` (``TERMINAL_LEVEL`` for leaves)."""
        return self._var[u]

    def lo(self, u: int) -> int:
        """Child of ``u`` for the 0-assignment of its variable."""
        return self._lo[u]

    def hi(self, u: int) -> int:
        """Child of ``u`` for the 1-assignment of its variable."""
        return self._hi[u]

    def cofactors(self, u: int, var: int) -> Tuple[int, int]:
        """The (lo, hi) cofactors of ``u`` with respect to ``var``.

        If ``u`` does not test ``var`` at its root (the diagram skips the
        level), both cofactors equal ``u`` itself.
        """
        if self._var[u] == var:
            return self._lo[u], self._hi[u]
        return u, u

    def iter_nodes(self, u: int) -> Iterator[int]:
        """Iterate all nodes reachable from ``u`` (terminals included), each once.

        Order is depth-first; parents are yielded before their children.
        """
        seen: Set[int] = set()
        stack = [u]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            yield n
            if not self.is_terminal(n):
                stack.append(self._lo[n])
                stack.append(self._hi[n])

    def size(self, u: int) -> int:
        """Number of distinct nodes in the diagram rooted at ``u``.

        Both internal nodes and leaves are counted, matching the node
        counts the paper reports for its MAX size bounds.
        """
        # Hot path during model construction: inline traversal on the raw
        # arrays instead of going through iter_nodes.
        var, lo, hi = self._var, self._lo, self._hi
        seen = {u}
        stack = [u]
        push = stack.append
        pop = stack.pop
        add = seen.add
        while stack:
            n = pop()
            if var[n] != TERMINAL_LEVEL:
                child = lo[n]
                if child not in seen:
                    add(child)
                    push(child)
                child = hi[n]
                if child not in seen:
                    add(child)
                    push(child)
        return len(seen)

    def internal_size(self, u: int) -> int:
        """Number of internal (decision) nodes in the diagram rooted at ``u``."""
        return sum(1 for n in self.iter_nodes(u) if not self.is_terminal(n))

    def support(self, u: int) -> Set[int]:
        """Set of variable indices the function rooted at ``u`` depends on."""
        return {self._var[n] for n in self.iter_nodes(u) if not self.is_terminal(n)}

    def leaves(self, u: int) -> Set[float]:
        """Set of terminal values reachable from ``u``."""
        return {self._terminal_values[n] for n in self.iter_nodes(u) if self.is_terminal(n)}

    def is_boolean(self, u: int) -> bool:
        """True if every leaf of ``u`` is 0.0 or 1.0 (i.e. ``u`` is a BDD)."""
        return self.leaves(u) <= {0.0, 1.0}

    def clear_caches(self) -> None:
        """Drop all memoised operation results (frees memory; semantics unchanged).

        Also resets the :class:`CacheStats` counters: hit rates measured
        after a clear describe the fresh cache, not a mix of generations.
        """
        self._op_cache.clear()
        self._compiled_cache.clear()
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        _GC_CLEARS.inc()

    def _cache_get(self, key: Tuple) -> int | None:
        result = self._op_cache.get(key)
        if result is None:
            self._cache_misses += 1
        else:
            self._cache_hits += 1
        return result

    def _cache_put(self, key: Tuple, value: int) -> None:
        if len(self._op_cache) >= self._op_cache_limit:
            # Clear-on-threshold eviction: dropping everything is crude but
            # keeps lookups O(1) and memory bounded across many builds.
            self._op_cache.clear()
            self._cache_evictions += 1
        self._op_cache[key] = value

    def cache_stats(self) -> CacheStats:
        """Cumulative hit/miss/size counters of the operation cache."""
        return CacheStats(
            hits=self._cache_hits,
            misses=self._cache_misses,
            size=len(self._op_cache),
            limit=self._op_cache_limit,
            evictions=self._cache_evictions,
        )

    def memory_estimate_bytes(self) -> int:
        """Rough resident size of this manager's stores, in bytes.

        Sums ``sys.getsizeof`` of the node arrays and tables plus a
        per-entry allowance for the key tuples the containers point at
        (3-int tuples in the unique table, op-cache keys of 3-4 slots).
        An estimate for telemetry gauges — not an exact accounting of
        shared small-int interning.
        """
        import sys

        containers = (
            self._var,
            self._lo,
            self._hi,
            self._unique,
            self._op_cache,
            self._terminal_ids,
            self._terminal_values,
        )
        total = sum(sys.getsizeof(c) for c in containers)
        total += len(self._unique) * 72  # (var, lo, hi) key tuples
        total += len(self._op_cache) * 88  # (name, u, v[, w]) key tuples
        return total

    # ------------------------------------------------------------------
    # Generic apply
    # ------------------------------------------------------------------
    def apply(self, name: str, op: Callable[[float, float], float], u: int, v: int) -> int:
        """Pointwise combination of two diagrams with a binary operator.

        ``name`` keys the memoisation cache and must uniquely identify
        ``op``'s semantics.  The recursion is the classic Bryant apply:
        descend on the smaller top variable, combine terminal pairs with
        ``op``.  This public entry also counts the call for telemetry;
        the recursion itself runs through :meth:`_apply` uninstrumented.
        """
        _APPLY_CALLS.inc()
        return self._apply(name, op, u, v)

    def _apply(self, name: str, op: Callable[[float, float], float], u: int, v: int) -> int:
        if self.is_terminal(u) and self.is_terminal(v):
            return self.terminal(op(self._terminal_values[u], self._terminal_values[v]))
        key = (name, u, v)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        var = min(self._var[u], self._var[v])
        u0, u1 = self.cofactors(u, var)
        v0, v1 = self.cofactors(v, var)
        result = self.node(
            var,
            self._apply(name, op, u0, v0),
            self._apply(name, op, u1, v1),
        )
        self._cache_put(key, result)
        return result

    # ------------------------------------------------------------------
    # Boolean operations (on 0/1 diagrams)
    # ------------------------------------------------------------------
    def bdd_and(self, u: int, v: int) -> int:
        """Logical AND of two BDDs."""
        if u == self.zero or v == self.zero:
            return self.zero
        if u == self.one:
            return v
        if v == self.one or u == v:
            return u
        if u > v:  # commutative: canonicalise cache key
            u, v = v, u
        return self.apply("and", lambda a, b: float(bool(a) and bool(b)), u, v)

    def bdd_or(self, u: int, v: int) -> int:
        """Logical OR of two BDDs."""
        if u == self.one or v == self.one:
            return self.one
        if u == self.zero:
            return v
        if v == self.zero or u == v:
            return u
        if u > v:
            u, v = v, u
        return self.apply("or", lambda a, b: float(bool(a) or bool(b)), u, v)

    def bdd_xor(self, u: int, v: int) -> int:
        """Logical XOR of two BDDs."""
        if u == v:
            return self.zero
        if u == self.zero:
            return v
        if v == self.zero:
            return u
        if u > v:
            u, v = v, u
        return self.apply("xor", lambda a, b: float(bool(a) != bool(b)), u, v)

    def bdd_not(self, u: int) -> int:
        """Logical NOT of a BDD."""
        if u == self.zero:
            return self.one
        if u == self.one:
            return self.zero
        key = ("not", u, u)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        if self.is_terminal(u):
            raise NotBooleanError(
                f"bdd_not applied to non-Boolean terminal {self.value(u)}"
            )
        result = self.node(
            self._var[u], self.bdd_not(self._lo[u]), self.bdd_not(self._hi[u])
        )
        self._cache_put(key, result)
        return result

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h`` where ``f`` is a BDD.

        ``g`` and ``h`` may be general ADDs, so this also serves as the
        ADD multiplexer.  The public entry counts the call for telemetry;
        the recursion runs through :meth:`_ite` uninstrumented.
        """
        _ITE_CALLS.inc()
        return self._ite(f, g, h)

    def _ite(self, f: int, g: int, h: int) -> int:
        if f == self.one:
            return g
        if f == self.zero:
            return h
        if g == h:
            return g
        key = ("ite", f, g, h)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        var = min(self._var[f], self._var[g], self._var[h])
        f0, f1 = self.cofactors(f, var)
        g0, g1 = self.cofactors(g, var)
        h0, h1 = self.cofactors(h, var)
        result = self.node(var, self._ite(f0, g0, h0), self._ite(f1, g1, h1))
        self._cache_put(key, result)
        return result

    # ------------------------------------------------------------------
    # Arithmetic operations (ADDs)
    # ------------------------------------------------------------------
    def add_plus(self, u: int, v: int) -> int:
        """Pointwise sum of two ADDs."""
        if u == self.zero:
            return v
        if v == self.zero:
            return u
        if u > v:
            u, v = v, u
        return self.apply("plus", lambda a, b: a + b, u, v)

    def add_minus(self, u: int, v: int) -> int:
        """Pointwise difference ``u - v``."""
        return self.apply("minus", lambda a, b: a - b, u, v)

    def add_times(self, u: int, v: int) -> int:
        """Pointwise product of two ADDs."""
        if u == self.zero or v == self.zero:
            return self.zero
        if u == self.one:
            return v
        if v == self.one:
            return u
        if u > v:
            u, v = v, u
        return self.apply("times", lambda a, b: a * b, u, v)

    def add_const_times(self, u: int, c: float) -> int:
        """Multiply an ADD by a scalar constant."""
        return self.add_times(u, self.terminal(c))

    def add_max(self, u: int, v: int) -> int:
        """Pointwise maximum of two ADDs."""
        if u == v:
            return u
        if u > v:
            u, v = v, u
        return self.apply("max", max, u, v)

    def add_min(self, u: int, v: int) -> int:
        """Pointwise minimum of two ADDs."""
        if u == v:
            return u
        if u > v:
            u, v = v, u
        return self.apply("min", min, u, v)

    def to_01(self, u: int, threshold: float = 0.5) -> int:
        """Threshold an ADD into a BDD: leaf >= threshold maps to 1."""
        return self.apply(
            f"ge{_canonical(threshold)}",
            lambda a, _: float(a >= threshold),
            u,
            self.zero,
        )

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def restrict(self, u: int, var: int, phase: bool) -> int:
        """Cofactor ``u`` with respect to ``var = phase``."""
        key = ("restrict", u, var * 2 + int(phase))
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        if self._var[u] > var:
            # u does not depend on var (terminals included).
            return u
        if self._var[u] == var:
            result = self._hi[u] if phase else self._lo[u]
        else:
            result = self.node(
                self._var[u],
                self.restrict(self._lo[u], var, phase),
                self.restrict(self._hi[u], var, phase),
            )
        self._cache_put(key, result)
        return result

    def rename(self, u: int, mapping: Dict[int, int]) -> int:
        """Rename variables of ``u`` according to ``mapping`` (old -> new).

        The mapping must be *monotone* on the support of ``u``: whenever
        ``a < b`` both in the support, ``mapping[a] < mapping[b]`` must
        hold, so the renamed diagram is still ordered and can be rebuilt in
        one traversal.  Variables not in the mapping are kept unchanged.
        A non-monotone mapping raises :class:`VariableOrderError`.
        """
        sup = sorted(self.support(u))
        images = [mapping.get(v, v) for v in sup]
        if any(b <= a for a, b in zip(images, images[1:])):
            raise VariableOrderError(
                f"rename mapping is not monotone on support {sup}"
            )
        memo: Dict[int, int] = {}

        def walk(n: int) -> int:
            if self.is_terminal(n):
                return n
            hit = memo.get(n)
            if hit is not None:
                return hit
            result = self.node(
                mapping.get(self._var[n], self._var[n]),
                walk(self._lo[n]),
                walk(self._hi[n]),
            )
            memo[n] = result
            return result

        return walk(u)

    def exists(self, u: int, variables: Iterable[int]) -> int:
        """Existential quantification of a BDD over ``variables``."""
        result = u
        for var in sorted(variables, reverse=True):
            result = self.bdd_or(
                self.restrict(result, var, False), self.restrict(result, var, True)
            )
        return result

    def forall(self, u: int, variables: Iterable[int]) -> int:
        """Universal quantification of a BDD over ``variables``."""
        result = u
        for var in sorted(variables, reverse=True):
            result = self.bdd_and(
                self.restrict(result, var, False), self.restrict(result, var, True)
            )
        return result

    # ------------------------------------------------------------------
    # Evaluation and counting
    # ------------------------------------------------------------------
    def evaluate(self, u: int, assignment: Sequence[int]) -> float:
        """Evaluate the diagram for a full variable assignment.

        ``assignment`` is indexed by variable index and holds 0/1 (or
        booleans).  Runs in time linear in the number of variables on the
        chosen path — this is the paper's "negligible" run-time model
        evaluation.
        """
        n = u
        while not self.is_terminal(n):
            var = self._var[n]
            try:
                bit = assignment[var]
            except IndexError:
                raise DDError(
                    f"assignment of length {len(assignment)} lacks variable {var}"
                ) from None
            n = self._hi[n] if bit else self._lo[n]
        return self._terminal_values[n]

    def compiled(self, u: int) -> "CompiledDD":
        """Array-form (compiled) view of the diagram rooted at ``u``.

        Compiled lazily and cached per root; the node store is append-only
        so cached forms never go stale.  See :mod:`repro.dd.compiled`.
        """
        cached = self._compiled_cache.get(u)
        if cached is None:
            from repro.dd.compiled import CompiledDD

            if len(self._compiled_cache) >= _COMPILED_CACHE_LIMIT:
                self._compiled_cache.clear()
            cached = CompiledDD.compile(self, u)
            self._compiled_cache[u] = cached
        return cached

    def evaluate_batch(self, u: int, assignments, kernel: str = "auto") -> "np.ndarray":
        """Evaluate many assignments at once.

        ``assignments`` is a ``(P, num_vars)`` 0/1 array.  Batches of at
        least :data:`BATCH_COMPILE_MIN_ROWS` rows are evaluated with the
        compiled array kernel (:meth:`compiled`), whose cost is
        O(P · depth) numpy element operations with zero per-row Python.
        Small batches use a frontier traversal instead: rows are routed
        through the diagram together, each node partitioning the row set
        it receives by its variable's column.

        ``kernel`` selects the compiled evaluation backend (see
        :meth:`CompiledDD.evaluate_batch`).  Any explicit name forces the
        compiled path regardless of batch height, so backends can be
        differenced against each other on arbitrarily small batches.

        The support of ``u`` is validated against the matrix width before
        any evaluation, so a too-narrow batch raises without producing
        partial results.
        """
        import numpy as np

        matrix = np.asarray(assignments)
        if matrix.ndim != 2:
            raise DDError("assignments must be a (P, num_vars) matrix")
        # Validate every support column up front: the old mid-traversal
        # check fired after part of the result was already assembled.
        support = self.support(u)
        if support and max(support) >= matrix.shape[1]:
            raise DDError(
                f"assignments lack variable column {max(support)}"
            )
        rows = matrix.shape[0]
        if rows == 0:
            return np.empty(0, dtype=float)
        if kernel != "auto" or rows >= BATCH_COMPILE_MIN_ROWS:
            return self.compiled(u).evaluate_batch(matrix, kernel=kernel)
        result = np.empty(rows, dtype=float)
        matrix = matrix.astype(bool)
        # Frontier: node -> array of row indices currently at that node.
        frontier: Dict[int, "np.ndarray"] = {u: np.arange(rows)}
        var, lo, hi = self._var, self._lo, self._hi
        values = self._terminal_values
        while frontier:
            next_frontier: Dict[int, "np.ndarray"] = {}
            for node, indices in frontier.items():
                if var[node] == TERMINAL_LEVEL:
                    result[indices] = values[node]
                    continue
                mask = matrix[indices, var[node]]
                for child, subset in (
                    (lo[node], indices[~mask]),
                    (hi[node], indices[mask]),
                ):
                    if subset.size == 0:
                        continue
                    existing = next_frontier.get(child)
                    if existing is None:
                        next_frontier[child] = subset
                    else:
                        next_frontier[child] = np.concatenate(
                            (existing, subset)
                        )
            frontier = next_frontier
        return result

    def sat_count(self, u: int, num_vars: int | None = None) -> float:
        """Number of satisfying assignments of a BDD over ``num_vars`` variables."""
        if not self.is_boolean(u):
            raise NotBooleanError("sat_count requires a 0/1 diagram")
        total_vars = self._num_vars if num_vars is None else num_vars
        memo: Dict[int, float] = {}

        def walk(n: int) -> float:
            """Count over the variables strictly below (and including) level of n."""
            if n == self.one:
                return 1.0
            if n == self.zero:
                return 0.0
            hit = memo.get(n)
            if hit is not None:
                return hit
            lo_n, hi_n = self._lo[n], self._hi[n]
            lo_count = walk(lo_n) * 2.0 ** (self._level_gap(n, lo_n))
            hi_count = walk(hi_n) * 2.0 ** (self._level_gap(n, hi_n))
            result = lo_count + hi_count
            memo[n] = result
            return result

        if self.is_terminal(u):
            return (2.0 ** total_vars) if u == self.one else 0.0
        # walk() counts over the manager's full variable range; rescale if the
        # caller declares a different universe size.
        base = walk(u) * 2.0 ** self._var[u]
        return base * 2.0 ** (total_vars - self._num_vars)

    def _level_gap(self, parent: int, child: int) -> int:
        """Number of skipped variable levels between parent and child."""
        child_level = self._var[child]
        if child_level == TERMINAL_LEVEL:
            child_level = self._num_vars
        return child_level - self._var[parent] - 1

    # ------------------------------------------------------------------
    # Constructors from truth data
    # ------------------------------------------------------------------
    def from_truth_table(self, variables: Sequence[int], values: Sequence[float]) -> int:
        """Build an ADD from an explicit truth table.

        ``values`` has ``2**len(variables)`` entries ordered with the first
        variable as the most-significant selector.  Intended for tests and
        tiny functions; symbolic construction should be used otherwise.
        """
        k = len(variables)
        if len(values) != 2 ** k:
            raise DDError(
                f"truth table needs {2 ** k} entries, got {len(values)}"
            )
        order = sorted(range(k), key=lambda i: variables[i])
        if [variables[i] for i in order] != list(variables):
            raise VariableOrderError(
                "truth-table variables must be listed in manager order"
            )

        def build(level: int, offset: int) -> int:
            if level == k:
                return self.terminal(values[offset])
            span = 2 ** (k - level - 1)
            lo = build(level + 1, offset)
            hi = build(level + 1, offset + span)
            return self.node(variables[level], lo, hi)

        return build(0, 0)

    def cube(self, literals: Dict[int, bool]) -> int:
        """BDD of a conjunction of literals, ``{var: phase}``."""
        result = self.one
        for var in sorted(literals, reverse=True):
            node_var = self.var(var) if literals[var] else self.nvar(var)
            result = self.bdd_and(node_var, result)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DDManager(num_vars={self._num_vars}, nodes={self.num_nodes}, "
            f"terminals={len(self._terminal_ids)})"
        )
