"""Variable-ordering support for transition functions.

The switching-capacitance function ``C(x_i, x_f)`` lives over two copies of
the primary inputs: their values before (``x_i``) and after (``x_f``) the
transition.  :class:`TransitionSpace` owns the manager for that doubled
variable set and fixes how the two copies are woven into one global order:

``interleaved`` (default)
    ``xi_1, xf_1, xi_2, xf_2, ...`` — keeps the factors of
    ``g'(x_i) · g(x_f)`` small because corresponding before/after bits sit
    next to each other.
``blocked``
    ``xi_1, ..., xi_n, xf_1, ..., xf_n`` — the naive order, kept for the
    ordering ablation (experiment E6 in DESIGN.md).

Also provided is the classic fanin-DFS static ordering heuristic for the
primary inputs of a netlist.
"""

from __future__ import annotations

from typing import Dict, List, Literal, Sequence

from repro.dd.manager import DDManager
from repro.errors import DDError

Scheme = Literal["interleaved", "blocked"]


class TransitionSpace:
    """Manager plus variable bookkeeping for ``(x_i, x_f)`` pairs.

    Parameters
    ----------
    input_names:
        Primary-input names in the order they should appear in the
        diagram (use :func:`fanin_dfs_input_order` for a good order).
    scheme:
        How the before/after copies interleave; see module docstring.
    """

    def __init__(self, input_names: Sequence[str], scheme: Scheme = "interleaved"):
        if scheme not in ("interleaved", "blocked"):
            raise DDError(f"unknown ordering scheme {scheme!r}")
        if len(set(input_names)) != len(input_names):
            raise DDError("input names must be unique")
        self.input_names: List[str] = list(input_names)
        self.scheme: Scheme = scheme
        n = len(self.input_names)
        names = [""] * (2 * n)
        for k, base in enumerate(self.input_names):
            names[self._xi_index(k, n)] = f"{base}@i"
            names[self._xf_index(k, n)] = f"{base}@f"
        self.manager = DDManager(2 * n, names)

    @property
    def num_inputs(self) -> int:
        """Number of primary inputs (half the number of DD variables)."""
        return len(self.input_names)

    def _xi_index(self, k: int, n: int) -> int:
        return 2 * k if self.scheme == "interleaved" else k

    def _xf_index(self, k: int, n: int) -> int:
        return 2 * k + 1 if self.scheme == "interleaved" else n + k

    def xi(self, k: int) -> int:
        """Variable index of input ``k`` in the *initial* vector."""
        self._check(k)
        return self._xi_index(k, self.num_inputs)

    def xf(self, k: int) -> int:
        """Variable index of input ``k`` in the *final* vector."""
        self._check(k)
        return self._xf_index(k, self.num_inputs)

    def _check(self, k: int) -> None:
        if not 0 <= k < self.num_inputs:
            raise DDError(f"input index {k} out of range")

    def i_to_f_mapping(self) -> Dict[int, int]:
        """Monotone rename mapping from xi-variables to xf-variables.

        Both schemes keep relative order between corresponding variables,
        so node functions can be built once over the ``x_i`` copy and
        renamed to the ``x_f`` copy in a single traversal.
        """
        n = self.num_inputs
        return {self.xi(k): self.xf(k) for k in range(n)}

    def assignment(self, initial: Sequence[int], final: Sequence[int]) -> List[int]:
        """Pack two input vectors into a full DD-variable assignment.

        ``initial[k]`` / ``final[k]`` are the 0/1 values of input ``k``
        before and after the transition, in ``input_names`` order.
        """
        n = self.num_inputs
        if len(initial) != n or len(final) != n:
            raise DDError(
                f"expected two vectors of length {n}, got {len(initial)} and {len(final)}"
            )
        packed = [0] * (2 * n)
        for k in range(n):
            packed[self.xi(k)] = int(initial[k])
            packed[self.xf(k)] = int(final[k])
        return packed


def fanin_dfs_input_order(
    outputs: Sequence[str],
    fanins: Dict[str, Sequence[str]],
    inputs: Sequence[str],
) -> List[str]:
    """Order primary inputs by depth-first traversal from the outputs.

    The classic static BDD-ordering heuristic: inputs encountered close
    together in a DFS of the circuit's fanin cones end up adjacent in the
    variable order, which keeps reconvergent functions small.

    Parameters
    ----------
    outputs:
        Signal names of the primary outputs, traversal roots.
    fanins:
        Map from signal name to the names it depends on (empty / missing
        for primary inputs).
    inputs:
        All primary-input names; any not reached by the traversal are
        appended in their given order.
    """
    input_set = set(inputs)
    order: List[str] = []
    seen = set()

    for out in outputs:
        # Iterative DFS so circuit depth cannot overflow the Python stack.
        stack = [out]
        while stack:
            signal = stack.pop()
            if signal in seen:
                continue
            seen.add(signal)
            if signal in input_set:
                order.append(signal)
                continue
            # Reversed so the first fanin is visited first (stack order).
            stack.extend(reversed(list(fanins.get(signal, ()))))
    for name in inputs:
        if name not in seen:
            order.append(name)
    return order
