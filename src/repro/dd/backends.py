"""Pluggable evaluation backends for :class:`~repro.dd.compiled.CompiledDD`.

`evaluate_batch` is a dispatch point, not an implementation: every way of
traversing a compiled diagram lives here as an :class:`EvalBackend`
registered by name.  Four backends ship with the library:

``pointer``
    The masked pointer-chasing numpy kernel — works on *every* diagram
    (no levelized plan required) and serves as the semantic reference.
``levelized``
    The two-pass-per-level numpy kernel over the pre-doubled slot table.
    The default workhorse; also the fallback target when fancier
    backends cannot run.
``bitparallel``
    Packs 64 patterns into each uint64 lane and traverses the levelized
    plan with bitwise ops — the same truth-table bitmask trick the
    differential oracle uses, applied to the level cut.  The traversal
    keeps one uint64 mask row per live slot ("which patterns sit in
    this slot"); descending a level is two AND-interleaves plus a
    grouped-OR scatter along a precomputed gather order.  For diagrams
    with at most :data:`TAB_MAX_SUPPORT` support variables the backend
    runs that traversal **once over the entire input cube** (the
    oracle's periodic variable masks enumerate all ``2^L`` assignments,
    64 per word), decodes the final masks into a value table, and then
    serves every batch by packing each row's support bits into a table
    index — a couple of streaming passes per batch regardless of
    diagram depth.  Wider-support diagrams pack the batch's own
    patterns into lanes and traverse per batch.
``codegen``
    Emits the levelized plan as C (level pairs fused into radix-4
    tables to halve the dependent-load chain, block-of-8 row unrolling
    so ~8 independent L1 load chains overlap), compiles it with the
    system C compiler and binds it via cffi in ABI mode.
    Compiled libraries are cached process-wide by source digest.  The
    same emitter produces **fused** libraries: one shared object holding
    several models' kernels plus an ``eval_fused`` entry point, so the
    serving micro-batcher evaluates many models in one foreign call
    (:class:`FusedKernel`).  When cffi or a C compiler is missing an
    optional numba path is tried; failing both, evaluation falls back
    to the levelized kernel (gracefully — the ``eval.codegen.
    compile_fail`` fault site provokes exactly this path in tests).

Selection
---------
``kernel="auto"`` resolves through :func:`select_backend`: an explicit
``REPRO_EVAL_BACKEND`` environment override wins (unknown names raise
:class:`~repro.errors.BackendError`), then a warm codegen kernel, then
bit-parallel for large batches on thin plans, then levelized, with
pointer as the universal fallback.  The chosen backend is logged once
per compiled diagram (and again on change) through ``repro.obs``.

Telemetry
---------
Every dispatched batch bumps ``eval.backend.<name>.batches`` and
``eval.backend.<name>.rows``; auto-selections bump
``eval.backend.selected.<name>``; codegen compilations run under an
``eval.codegen.compile`` tracer span and fallbacks count in
``eval.codegen.fallbacks``.
"""

from __future__ import annotations

import hashlib
import math
import os
import shutil
import subprocess
import tempfile
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import BackendError, DDError
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dd.compiled import CompiledDD

try:  # pragma: no cover - exercised implicitly on import
    import cffi
except ImportError:  # pragma: no cover - cffi is a baked-in dependency
    cffi = None

try:  # numba is optional and absent in the default environment
    from numba import njit as _njit
except ImportError:
    _njit = None

#: Environment variable overriding ``kernel="auto"`` selection.
ENV_BACKEND = "REPRO_EVAL_BACKEND"

#: Refuse to emit C for plans with more slot-table entries than this —
#: the generated source would be megabytes and compile time would dwarf
#: any evaluation win.
CODEGEN_SLOT_LIMIT = 200_000

#: Auto policy: bit-parallel needs enough rows to fill uint64 lanes.
BITPARALLEL_MIN_ROWS = 4_096
#: Tabulate the full input cube when the support is at most this wide
#: (``2^16`` doubles = a 512 KiB table, built once per diagram).
TAB_MAX_SUPPORT = 16

_MET = get_metrics()
_CODEGEN_FALLBACKS = _MET.counter("eval.codegen.fallbacks")
_CODEGEN_COMPILES = _MET.counter("eval.codegen.compiles")
_FUSED_CALLS = _MET.counter("eval.codegen.fused_calls")
_FUSED_SEGMENTS = _MET.counter("eval.codegen.fused_segments")

# Per-backend batch/row counters, created on first use so registering a
# custom backend needs no metrics boilerplate.
_BATCH_COUNTERS: Dict[str, tuple] = {}


def record_batch(name: str, rows: int) -> None:
    """Bump ``eval.backend.<name>.{batches,rows}`` for one batch."""
    pair = _BATCH_COUNTERS.get(name)
    if pair is None:
        pair = _BATCH_COUNTERS[name] = (
            _MET.counter(f"eval.backend.{name}.batches"),
            _MET.counter(f"eval.backend.{name}.rows"),
        )
    pair[0].inc()
    pair[1].inc(rows)


# ---------------------------------------------------------------------------
# Backend interface and registry
# ---------------------------------------------------------------------------
class EvalBackend:
    """One strategy for evaluating a compiled diagram on a batch.

    Implementations receive matrices already canonicalised by
    :func:`repro.dd.compiled.coerce_matrix` (bool, C-contiguous) with all
    support columns present and at least one row, and must return a
    ``(P,)`` float64 array bit-for-bit equal to the scalar walk.
    Per-diagram prepared state belongs in ``compiled._backend_state``
    under the backend's name, never on the backend object itself (one
    registered instance serves every diagram concurrently).
    """

    name: str = "abstract"

    def supports(self, compiled: "CompiledDD") -> bool:
        """Whether this backend can evaluate ``compiled`` at all."""
        return True

    def warm(self, compiled: "CompiledDD") -> None:
        """Build per-diagram state ahead of the first batch (optional)."""

    def evaluate(self, compiled: "CompiledDD", matrix: np.ndarray) -> np.ndarray:
        raise NotImplementedError


_REGISTRY: Dict[str, EvalBackend] = {}


def register(backend: EvalBackend) -> EvalBackend:
    """Register ``backend`` under its name (replacing any previous one)."""
    _REGISTRY[backend.name] = backend
    return backend


def registered_names() -> Tuple[str, ...]:
    """Sorted names of all registered backends."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> EvalBackend:
    """The backend registered as ``name``; typed error when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown evaluation backend {name!r} "
            f"(registered: {', '.join(registered_names())})"
        ) from None


def warm_backend(compiled: "CompiledDD", name: str) -> EvalBackend:
    """Resolve ``name`` and prepare its per-diagram state eagerly.

    Used by the serving layer to move codegen compilation (and the
    bit-parallel plan build) out of the first request's latency.
    """
    backend = get_backend(name)
    if backend.supports(compiled):
        backend.warm(compiled)
    return backend


def select_backend(compiled: "CompiledDD", rows: int) -> EvalBackend:
    """The ``kernel="auto"`` policy.

    1. ``REPRO_EVAL_BACKEND`` forces a backend by name (unknown names
       raise); a forced backend the diagram cannot use degrades to the
       best supported one rather than erroring, because the override is
       global across models of very different shapes.
    2. A diagram with no levelized plan can only be pointer-chased.
    3. A warm codegen kernel is already paid for — use it.
    4. Large batches on thin plans go bit-parallel.
    5. Everything else: levelized.
    """
    override = os.environ.get(ENV_BACKEND)
    if override:
        try:
            backend = get_backend(override)
        except BackendError as exc:
            raise BackendError(f"{ENV_BACKEND}={override!r}: {exc}") from None
        if backend.supports(compiled):
            _log_selection(compiled, backend, rows, forced=True)
            return backend
    if compiled._lev_children is None:
        backend = _REGISTRY["pointer"]
    else:
        state = compiled._backend_state.get("codegen")
        if state is not None and state.get("library") is not None:
            backend = _REGISTRY["codegen"]
        elif (
            rows >= BITPARALLEL_MIN_ROWS
            and len(compiled.support) <= TAB_MAX_SUPPORT
        ):
            backend = _REGISTRY["bitparallel"]
        else:
            backend = _REGISTRY["levelized"]
    _log_selection(compiled, backend, rows, forced=False)
    return backend


def _log_selection(
    compiled: "CompiledDD", backend: EvalBackend, rows: int, forced: bool
) -> None:
    """Log an auto-selection once per diagram (and again on change)."""
    state = compiled._backend_state
    if state.get("_selected") == backend.name:
        return
    state["_selected"] = backend.name
    _MET.counter(f"eval.backend.selected.{backend.name}").inc()
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "eval.backend.selected",
            backend=backend.name,
            rows=rows,
            forced=forced,
            nodes=compiled.num_nodes,
        )


# ---------------------------------------------------------------------------
# Reference backends (thin wrappers over the CompiledDD numpy kernels)
# ---------------------------------------------------------------------------
class PointerBackend(EvalBackend):
    """Masked pointer chasing — the universal reference kernel."""

    name = "pointer"

    def evaluate(self, compiled: "CompiledDD", matrix: np.ndarray) -> np.ndarray:
        return compiled._evaluate_pointer(matrix)


class LevelizedBackend(EvalBackend):
    """Two vectorised passes per support level over the slot table."""

    name = "levelized"

    def supports(self, compiled: "CompiledDD") -> bool:
        return compiled._lev_children is not None

    def evaluate(self, compiled: "CompiledDD", matrix: np.ndarray) -> np.ndarray:
        return compiled._evaluate_levelized(matrix)


# ---------------------------------------------------------------------------
# Bit-parallel backend
# ---------------------------------------------------------------------------
#: Word patterns of the first six cube variables — bit ``p`` of variable
#: ``t``'s mask is ``(p >> t) & 1``, exactly the truth-table masks the
#: differential oracle builds for its operand variables.
_CUBE_BASE = (
    0xAAAAAAAAAAAAAAAA,
    0xCCCCCCCCCCCCCCCC,
    0xF0F0F0F0F0F0F0F0,
    0xFF00FF00FF00FF00,
    0xFFFF0000FFFF0000,
    0xFFFFFFFF00000000,
)

#: Row-chunk size for the streaming lane pack: one chunk of the input
#: matrix stays cache-resident while all its support columns are sliced
#: out, instead of streaming the whole matrix once per column.
_PACK_CHUNK = 8_192


def _cube_lanes(num_levels: int, num_words: int) -> np.ndarray:
    """Packed input lanes enumerating the full ``2^L`` assignment cube."""
    lanes = np.empty((num_levels, num_words), dtype=np.uint64)
    for t in range(num_levels):
        if t < 6:
            lanes[t] = np.uint64(_CUBE_BASE[t])
        else:
            period = 1 << (t - 6)
            block = np.zeros(2 * period, dtype=np.uint64)
            block[period:] = ~np.uint64(0)
            lanes[t] = np.tile(block, num_words // (2 * period))
    return lanes


class BitParallelBackend(EvalBackend):
    """64 patterns per uint64 lane over the levelized plan.

    Traversal state per level is a ``(width, num_words)`` uint64 matrix:
    row ``s`` is the mask of patterns currently sitting in slot ``s``.
    One level of descent:

    - branch masks: ``masks[s] & ~bits`` and ``masks[s] & bits``
      (``bits`` = packed lanes of this level's input column), written as
      two contiguous ``(width, num_words)`` blocks;
    - scatter to successors: each next-level slot ORs together its
      source rows.  Group sizes are tiny (mean ~2), so the scatter is a
      base row-gather plus one ``|=`` pass per extra source rank — all
      precomputed into index arrays at plan-build time (measured ~6x
      faster than ``bitwise_or.reduceat`` on these shapes).

    Each pattern occupies exactly one slot per level, so the final masks
    partition the lanes; OR-ing the mask rows whose slot index has bit
    ``b`` set yields packed bit-planes of the terminal slot *index*,
    which unpack directly into a value-table gather.

    Diagrams with support of at most :data:`TAB_MAX_SUPPORT` variables
    are **tabulated**: the traversal runs once over the whole input cube
    (periodic constant lanes, no per-batch packing), the decoded values
    are cached as a ``2^L`` table, and batches are served by packing
    each row's support bits into an index — via a uint16 pair gather
    when the support pairs up with the interleaved (initial, final)
    column layout, which power-model diagrams almost always satisfy.
    """

    name = "bitparallel"

    def supports(self, compiled: "CompiledDD") -> bool:
        return compiled._lev_tables is not None

    def warm(self, compiled: "CompiledDD") -> None:
        state = self._plan(compiled)
        if len(compiled.support) <= TAB_MAX_SUPPORT:
            self._table(compiled, state)

    @staticmethod
    def _plan(compiled: "CompiledDD") -> dict:
        state = compiled._backend_state.get("bitparallel")
        if state is None:
            levels = []
            for table in compiled._lev_tables:
                width = len(table) // 2
                order = np.argsort(table, kind="stable")
                sorted_targets = table[order]
                next_width = int(sorted_targets[-1]) + 1
                # Every next-level slot is referenced at least once
                # (slots are created on first reference), so each group
                # is non-empty and ``starts`` indexes its first source.
                starts = np.searchsorted(sorted_targets, np.arange(next_width))
                sizes = np.diff(np.append(starts, len(table)))
                # Interleaved source row 2s+b lives at row b*width+s of
                # the two contiguous branch blocks.
                remap = (order & 1) * width + (order >> 1)
                base = remap[starts]
                extras = []
                for k in range(1, int(sizes.max())):
                    targets = np.flatnonzero(sizes > k)
                    extras.append((targets, remap[starts[targets] + k]))
                levels.append((width, base, extras))
            state = {"levels": levels, "table": None, "index_plan": None}
            compiled._backend_state["bitparallel"] = state
        return state

    @staticmethod
    def _traverse(state: dict, lanes: np.ndarray, num_words: int, count: int) -> np.ndarray:
        masks = np.empty((1, num_words), dtype=np.uint64)
        masks[0, :] = ~np.uint64(0)
        tail = count - (num_words - 1) * 64
        if tail < 64:  # zero the lanes past the last real pattern
            masks[0, -1] = np.uint64((1 << tail) - 1)
        for t, (width, base, extras) in enumerate(state["levels"]):
            bits = lanes[t]
            contrib = np.empty((2, width, num_words), dtype=np.uint64)
            np.bitwise_and(masks, ~bits, out=contrib[0])
            np.bitwise_and(masks, bits, out=contrib[1])
            flat = contrib.reshape(2 * width, num_words)
            nxt = flat[base]
            for targets, sources in extras:
                nxt[targets] |= flat[sources]
            masks = nxt
        return masks

    @staticmethod
    def _decode(compiled: "CompiledDD", masks: np.ndarray, count: int) -> np.ndarray:
        values = compiled._lev_final_values
        final_width = masks.shape[0]
        if final_width == 1:
            return np.full(count, values[0], dtype=np.float64)
        num_bits = (final_width - 1).bit_length()
        slot_ids = np.arange(final_width)
        packed_index = np.empty((num_bits, masks.shape[1]), dtype=np.uint64)
        for b in range(num_bits):
            np.bitwise_or.reduce(
                masks[(slot_ids >> b) & 1 == 1], axis=0, out=packed_index[b]
            )
        planes = np.unpackbits(
            packed_index.view(np.uint8), axis=1, bitorder="little", count=count
        )
        index = planes[0].astype(np.int32)
        for b in range(1, num_bits):
            index |= planes[b].astype(np.int32) << b
        return values[index]

    def _table(self, compiled: "CompiledDD", state: dict) -> np.ndarray:
        table = state["table"]
        if table is None:
            num_levels = len(compiled.support)
            count = 1 << num_levels
            num_words = max(1, count >> 6)
            lanes = _cube_lanes(num_levels, num_words)
            masks = self._traverse(state, lanes, num_words, count)
            table = self._decode(compiled, masks, count)
            state["table"] = table
        return table

    @staticmethod
    def _index_plan(compiled: "CompiledDD", state: dict, num_columns: int) -> dict:
        plan = state["index_plan"]
        if plan is None:
            support = compiled.support
            num_levels = len(support)
            packed_width = 8 if num_levels <= 8 else 16
            pairs = (
                num_levels % 2 == 0
                and num_columns % 2 == 0
                and bool((support[0::2] % 2 == 0).all())
                and bool((support[1::2] == support[0::2] + 1).all())
            )
            if pairs:
                columns = (support[0::2] // 2).astype(np.intp)
                pad = (packed_width - num_levels) // 2
            else:
                columns = support.astype(np.intp)
                pad = packed_width - num_levels
            if pad:  # repeat a real column; the stray high bits are masked
                columns = np.concatenate([columns, np.repeat(columns[:1], pad)])
            plan = {
                "pairs": pairs,
                "columns": columns,
                "view": "<u1" if packed_width == 8 else "<u2",
                "mask": (1 << num_levels) - 1 if pad else None,
            }
            state["index_plan"] = plan
        return plan

    def _indices(self, compiled: "CompiledDD", state: dict, matrix: np.ndarray) -> np.ndarray:
        """Each row's support bits packed into a table index."""
        plan = self._index_plan(compiled, state, matrix.shape[1])
        if plan["pairs"]:
            gathered = np.take(matrix.view(np.uint16), plan["columns"], axis=1)
            flat_bits = gathered.view(np.uint8).ravel()
        else:
            flat_bits = np.take(matrix, plan["columns"], axis=1).ravel()
        index = np.packbits(flat_bits, bitorder="little").view(plan["view"])
        if plan["mask"] is not None:
            index &= plan["mask"]
        return index

    def evaluate(self, compiled: "CompiledDD", matrix: np.ndarray) -> np.ndarray:
        state = self._plan(compiled)
        if len(compiled.support) <= TAB_MAX_SUPPORT:
            table = self._table(compiled, state)
            return np.take(table, self._indices(compiled, state, matrix))
        rows = matrix.shape[0]
        num_words = (rows + 63) >> 6
        support = compiled.support
        # Pack each support column into uint64 lanes: pattern p lands in
        # bit (p % 64) of word (p // 64), little-endian bit order.  The
        # chunked transpose keeps each slice of the row-major matrix
        # cache-resident across all column extractions.
        padded = np.zeros((len(support), num_words * 64), dtype=bool)
        for start in range(0, rows, _PACK_CHUNK):
            end = min(rows, start + _PACK_CHUNK)
            padded[:, start:end] = matrix[start:end].T[support]
        lanes = np.packbits(padded, axis=1, bitorder="little").view(np.uint64)
        masks = self._traverse(state, lanes, num_words, rows)
        return self._decode(compiled, masks, rows)


# ---------------------------------------------------------------------------
# Codegen backend (C via cc + cffi, optional numba path)
# ---------------------------------------------------------------------------
#: Rows evaluated per unrolled block: this many independent root-to-leaf
#: chains are in flight at once, hiding the slot table's L1 load latency.
_CODEGEN_BLOCK = 8

_CDEF_EVAL = "void {name}(const unsigned char *m, long rows, long stride, double *out);"
_CDEF_FUSED = (
    "void eval_fused(long nseg, const int32_t *ids, "
    "const unsigned char **mats, const long *rows, "
    "const long *strides, double **outs);"
)

#: Process-wide cache of compiled libraries, keyed by source digest.
_LIBRARY_CACHE: Dict[str, "_CodegenLibrary"] = {}


def _find_cc() -> str | None:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _c_double(value: float) -> str:
    """A C literal reproducing ``value`` bit-for-bit (hex float form)."""
    if math.isnan(value):
        return "0.0"  # only ever emitted for unreachable slots
    if math.isinf(value):
        return "INFINITY" if value > 0 else "-INFINITY"
    return float(value).hex()


def _plan_of(compiled: "CompiledDD") -> dict:
    """The codegen-relevant arrays of one compiled diagram."""
    return {
        "tables": compiled._lev_tables,
        "final_values": compiled._lev_final_values,
        "cols": compiled.support,
        # Flat radix-2 plan, for the numba fallback path only.
        "children": compiled._lev_children,
        "values": compiled._lev_values,
    }


def _fuse_radix4(tables: Sequence[np.ndarray], cols: np.ndarray):
    """Fuse level pairs into radix-4 tables with absolute slot ids.

    Two radix-2 levels become one table indexed by ``4*slot + 2*b0 +
    b1`` — one dependent load where the plain plan takes two, which
    halves the latency chain that dominates table-walk throughput.  A
    trailing odd level keeps radix 2.  Entries hold absolute,
    pre-multiplied indices into the concatenated table (``offset of
    next group + next_radix * local slot``); the *last* group's entries
    are final slot ids, indexing the terminal-value array directly.

    Returns ``(flat int32 table, [(radix, column indices), ...])``.
    """
    groups = []
    i = 0
    while i < len(tables):
        if i + 1 < len(tables):
            first, second = tables[i], tables[i + 1]
            fused = second[
                2 * np.repeat(first, 2) + np.tile([0, 1], len(first))
            ]
            groups.append((fused, 4, (int(cols[i]), int(cols[i + 1]))))
            i += 2
        else:
            groups.append((tables[i], 2, (int(cols[i]),)))
            i += 1
    offsets = np.concatenate(
        [[0], np.cumsum([len(t) for t, _, _ in groups])]
    )
    flat = np.empty(int(offsets[-1]), dtype=np.int32)
    for g, (table, _, _) in enumerate(groups):
        lo, hi = offsets[g], offsets[g + 1]
        if g < len(groups) - 1:
            flat[lo:hi] = hi + groups[g + 1][1] * table
        else:
            flat[lo:hi] = table
    return flat, [(radix, cl) for _, radix, cl in groups]


def _emit_eval(index: int, plan: dict, lines: List[str]) -> None:
    """Append one ``eval_<index>`` kernel plus its tables to ``lines``."""
    flat, steps = _fuse_radix4(plan["tables"], plan["cols"])
    ch = ",".join(map(str, flat.tolist()))
    vals = ",".join(_c_double(v) for v in plan["final_values"].tolist())
    b = _CODEGEN_BLOCK
    lines.append(f"static const int32_t CH_{index}[] = {{{ch}}};")
    lines.append(f"static const double VALS_{index}[] = {{{vals}}};")
    lines.append(
        f"void eval_{index}(const unsigned char *m, long rows, "
        "long stride, double *out)"
    )
    lines.append("{")
    lines.append("    long r = 0;")
    # Block of independent rows: the fully unrolled level steps advance
    # every chain one step per group, so the dependent CH loads of
    # different rows overlap in the load pipeline instead of
    # serialising.
    lines.append(f"    for (; r + {b} <= rows; r += {b}) {{")
    for k in range(b):
        lines.append(
            f"        const unsigned char *p{k} = m + (r + {k}) * stride;"
        )
    lines.append(
        "        " + " ".join(f"int32_t s{k} = 0;" for k in range(b))
    )
    for radix, cl in steps:
        for k in range(b):
            if radix == 4:
                lines.append(
                    f"        s{k} = CH_{index}[s{k} + 2 * p{k}[{cl[0]}] "
                    f"+ p{k}[{cl[1]}]];"
                )
            else:
                lines.append(f"        s{k} = CH_{index}[s{k} + p{k}[{cl[0]}]];")
    for k in range(b):
        lines.append(f"        out[r + {k}] = VALS_{index}[s{k}];")
    lines.append("    }")
    lines.append("    for (; r < rows; r++) {")
    lines.append("        const unsigned char *p = m + r * stride;")
    lines.append("        int32_t s = 0;")
    for radix, cl in steps:
        if radix == 4:
            lines.append(
                f"        s = CH_{index}[s + 2 * p[{cl[0]}] + p[{cl[1]}]];"
            )
        else:
            lines.append(f"        s = CH_{index}[s + p[{cl[0]}]];")
    lines.append(f"        out[r] = VALS_{index}[s];")
    lines.append("    }")
    lines.append("}")


def _emit_source(plans: Sequence[dict], fused: bool) -> Tuple[str, str]:
    """C source plus the matching cffi cdef block for ``plans``."""
    lines = ["#include <stdint.h>", "#include <math.h>", ""]
    decls = []
    for index, plan in enumerate(plans):
        _emit_eval(index, plan, lines)
        decls.append(_CDEF_EVAL.format(name=f"eval_{index}"))
    if fused:
        lines.append(
            "void eval_fused(long nseg, const int32_t *ids, "
            "const unsigned char **mats, const long *rows, "
            "const long *strides, double **outs)"
        )
        lines.append("{")
        lines.append("    for (long i = 0; i < nseg; i++) {")
        lines.append("        switch (ids[i]) {")
        for index in range(len(plans)):
            lines.append(
                f"        case {index}: eval_{index}(mats[i], rows[i], "
                f"strides[i], outs[i]); break;"
            )
        lines.append("        }")
        lines.append("    }")
        lines.append("}")
        decls.append(_CDEF_FUSED)
    return "\n".join(lines) + "\n", "\n".join(decls)


class _CodegenLibrary:
    """A loaded shared object holding one or more eval kernels."""

    def __init__(self, ffi, lib, count: int, fused: bool):
        self._ffi = ffi
        self._lib = lib
        self.count = count
        self.fused = fused

    def call(self, index: int, matrix: np.ndarray) -> np.ndarray:
        ffi = self._ffi
        rows, stride = matrix.shape
        out = np.empty(rows, dtype=np.float64)
        if rows:
            fn = getattr(self._lib, f"eval_{index}")
            fn(
                ffi.cast("const unsigned char *", ffi.from_buffer(matrix)),
                rows,
                stride,
                ffi.cast("double *", ffi.from_buffer(out, require_writable=True)),
            )
        return out

    def call_fused(
        self, segments: Sequence[Tuple[int, np.ndarray]]
    ) -> List[np.ndarray]:
        """Evaluate ``[(kernel index, matrix), ...]`` in one foreign call."""
        ffi = self._ffi
        outs = [np.empty(m.shape[0], dtype=np.float64) for _, m in segments]
        mat_buffers = [ffi.from_buffer(m) for _, m in segments]
        out_buffers = [
            ffi.from_buffer(o, require_writable=True) for o in outs
        ]
        ids = ffi.new("int32_t[]", [i for i, _ in segments])
        rows = ffi.new("long[]", [m.shape[0] for _, m in segments])
        strides = ffi.new("long[]", [m.shape[1] for _, m in segments])
        mats = ffi.new(
            "const unsigned char *[]",
            [ffi.cast("const unsigned char *", b) for b in mat_buffers],
        )
        optrs = ffi.new(
            "double *[]", [ffi.cast("double *", b) for b in out_buffers]
        )
        self._lib.eval_fused(len(segments), ids, mats, rows, strides, optrs)
        return outs


def _compile_library(plans: Sequence[dict], fused: bool) -> _CodegenLibrary:
    """Compile (or fetch from cache) the library for ``plans``.

    Raises :class:`BackendError` when no toolchain is available or the
    compiler fails; the ``eval.codegen.compile_fail`` fault site fires
    here so chaos tests can provoke the fallback path on demand.
    """
    from repro.testing.faults import maybe_fail

    maybe_fail("eval.codegen.compile_fail")
    source, decls = _emit_source(plans, fused)
    digest = hashlib.sha256(source.encode()).hexdigest()
    library = _LIBRARY_CACHE.get(digest)
    if library is not None:
        return library
    if cffi is None:
        raise BackendError("codegen backend needs cffi, which is unavailable")
    compiler = _find_cc()
    if compiler is None:
        raise BackendError("codegen backend found no C compiler (cc/gcc/clang)")
    with get_tracer().span(
        "eval.codegen.compile", kernels=len(plans), fused=fused
    ) as span:
        workdir = tempfile.mkdtemp(prefix="repro-codegen-")
        c_path = os.path.join(workdir, "kernel.c")
        so_path = os.path.join(workdir, "kernel.so")
        with open(c_path, "w") as handle:
            handle.write(source)
        proc = subprocess.run(
            [compiler, "-O3", "-shared", "-fPIC", "-o", so_path, c_path],
            capture_output=True,
        )
        if proc.returncode != 0:
            raise BackendError(
                "codegen C compilation failed: "
                + proc.stderr.decode(errors="replace")[:500]
            )
        ffi = cffi.FFI()
        ffi.cdef(decls)
        lib = ffi.dlopen(so_path)
        span.set("source_bytes", len(source))
    _CODEGEN_COMPILES.inc()
    library = _CodegenLibrary(ffi, lib, len(plans), fused)
    _LIBRARY_CACHE[digest] = library
    return library


def _numba_kernel(plan: dict):  # pragma: no cover - numba not installed
    """JIT the scalar levelized walk when C is unavailable but numba is."""
    children = plan["children"]
    values = plan["values"]
    cols = plan["cols"].astype(np.int64)

    @_njit(cache=False)
    def kernel(matrix, out):
        for r in range(matrix.shape[0]):
            state = 0
            for t in range(cols.shape[0]):
                if matrix[r, cols[t]]:
                    state += 1
                state = children[state]
            out[r] = values[state]

    return kernel


class CodegenBackend(EvalBackend):
    """The levelized plan compiled to native code.

    Per-diagram state (under ``_backend_state["codegen"]``):

    ``library``
        A :class:`_CodegenLibrary` (or a numba kernel wrapper), or None
        after a failed compilation — the failure is remembered so every
        subsequent batch falls back to levelized without re-invoking the
        compiler.
    """

    name = "codegen"

    def supports(self, compiled: "CompiledDD") -> bool:
        return (
            compiled._lev_tables is not None
            and len(compiled._lev_children) <= CODEGEN_SLOT_LIMIT
        )

    def warm(self, compiled: "CompiledDD") -> None:
        self._ensure(compiled)

    @staticmethod
    def _ensure(compiled: "CompiledDD") -> dict:
        state = compiled._backend_state.get("codegen")
        if state is not None:
            return state
        state = {"library": None, "numba": None}
        try:
            state["library"] = _compile_library([_plan_of(compiled)], fused=False)
        except Exception as exc:  # noqa: BLE001 - any failure => fallback
            if _njit is not None:  # pragma: no cover - numba not installed
                try:
                    state["numba"] = _numba_kernel(_plan_of(compiled))
                except Exception:
                    state["numba"] = None
            if state["numba"] is None:
                _CODEGEN_FALLBACKS.inc()
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "eval.codegen.fallback",
                        error=f"{type(exc).__name__}: {exc}",
                    )
        compiled._backend_state["codegen"] = state
        return state

    def evaluate(self, compiled: "CompiledDD", matrix: np.ndarray) -> np.ndarray:
        state = self._ensure(compiled)
        library = state["library"]
        if library is not None:
            return library.call(0, matrix)
        if state["numba"] is not None:  # pragma: no cover - numba absent
            out = np.empty(matrix.shape[0], dtype=np.float64)
            state["numba"](matrix, out)
            return out
        # Graceful degradation: compilation failed (toolchain missing or
        # the compile_fail fault site fired) — serve the batch anyway.
        return compiled._evaluate_levelized(matrix)


# ---------------------------------------------------------------------------
# Multi-model fusion
# ---------------------------------------------------------------------------
class FusedKernel:
    """Several models' codegen kernels in one shared object.

    Built from ``{key: CompiledDD}`` (a power-query server passes model
    names), it evaluates a heterogeneous list of ``(key, matrix)``
    segments with a single foreign call — one GIL release, one dispatch
    loop in C — instead of one Python->kernel round trip per model.

    Construction compiles eagerly and raises :class:`BackendError` if
    any diagram is codegen-ineligible or the toolchain is missing, so
    callers decide up front whether to fuse or fall back per model.
    """

    def __init__(self, diagrams: Dict[str, "CompiledDD"]):
        if not diagrams:
            raise BackendError("FusedKernel needs at least one diagram")
        codegen = get_backend("codegen")
        items = list(diagrams.items())
        for key, compiled in items:
            if not codegen.supports(compiled):
                raise BackendError(
                    f"model {key!r} is not codegen-eligible "
                    "(no levelized plan or plan over the slot limit)"
                )
        self._index = {key: i for i, (key, _) in enumerate(items)}
        self._diagrams = dict(items)
        self._library = _compile_library(
            [_plan_of(compiled) for _, compiled in items], fused=True
        )

    @property
    def keys(self) -> Tuple[str, ...]:
        return tuple(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def evaluate_many(
        self, segments: Iterable[Tuple[str, np.ndarray]]
    ) -> List[np.ndarray]:
        """Evaluate ``[(key, (P_i, n_i) matrix), ...]`` in one call."""
        from repro.dd.compiled import coerce_matrix

        prepared = []
        for key, matrix in segments:
            index = self._index.get(key)
            if index is None:
                raise BackendError(f"model {key!r} is not part of this fusion")
            matrix = np.asarray(matrix)
            if matrix.ndim != 2:
                raise DDError("assignments must be a (P, num_vars) matrix")
            compiled = self._diagrams[key]
            if matrix.shape[1] < compiled.min_width():
                raise DDError(
                    f"assignments for {key!r} lack variable column "
                    f"{compiled.min_width() - 1}"
                )
            prepared.append((index, coerce_matrix(matrix)))
        if not prepared:
            return []
        outs = self._library.call_fused(prepared)
        _FUSED_CALLS.inc()
        _FUSED_SEGMENTS.inc(len(prepared))
        total_rows = sum(m.shape[0] for _, m in prepared)
        record_batch("codegen", total_rows)
        return outs


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------
register(PointerBackend())
register(LevelizedBackend())
register(BitParallelBackend())
register(CodegenBackend())

__all__ = [
    "BITPARALLEL_MIN_ROWS",
    "CODEGEN_SLOT_LIMIT",
    "ENV_BACKEND",
    "TAB_MAX_SUPPORT",
    "BitParallelBackend",
    "CodegenBackend",
    "EvalBackend",
    "FusedKernel",
    "LevelizedBackend",
    "PointerBackend",
    "get_backend",
    "record_batch",
    "register",
    "registered_names",
    "select_backend",
    "warm_backend",
]
