"""Compiled (array-form) decision diagrams for batch evaluation.

Once a BDD/ADD is built, evaluating it is a pure table-indexing problem:
every node is a ``(var, lo, hi)`` triple and a root-to-leaf walk only
chases pointers.  :class:`CompiledDD` freezes the diagram rooted at one
node into contiguous numpy arrays (nodes relabeled to dense ids) so a
whole ``(P, num_vars)`` pattern batch is routed with vectorised gathers
instead of one Python loop iteration per pattern per level.

Evaluation strategies are pluggable :class:`~repro.dd.backends.EvalBackend`
implementations (see :mod:`repro.dd.backends`); this module provides the
compiled diagram itself plus the two numpy reference kernels every other
backend is differenced against:

- the **levelized plan** (default): at compile time the diagram is
  unrolled over its sorted support levels, inserting pass-through slots
  for skipped variables so every row takes exactly ``|support|`` steps.
  Slot ids are pre-doubled, which folds the branch select into the table
  index, so one level costs just two vectorised passes over the batch —
  ``state += bit; state = children[state]`` — with no masking, no
  compaction and no per-row Python;
- the **pointer-chasing kernel** (fallback for diagrams whose levelized
  table would be degenerate): follows ``lo``/``hi`` edges directly with
  an active-row mask, ``O(P · depth)`` element operations.

The registry adds a **bit-parallel** backend (64 patterns per uint64
lane) and a **codegen** backend (the levelized plan emitted as C and
compiled via cc/cffi); ``evaluate_batch(kernel=...)`` accepts any
registered backend name, ``"auto"`` applies the selection policy of
:func:`repro.dd.backends.select_backend`.

The node store of a :class:`~repro.dd.manager.DDManager` is append-only
(existing nodes are never mutated), so a compiled form stays valid for
the lifetime of the manager and can be cached freely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import time

import numpy as np

from repro.errors import BackendError, DDError
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dd.manager import DDManager

# Telemetry instruments: one counter bump per *batch* (never per row),
# so the default-off overhead stays in the noise.
_MET = get_metrics()
_COMPILE_COUNT = _MET.counter("compiled.compile.count")
_COMPILE_NODES = _MET.histogram(
    "compiled.compile.nodes", (8, 32, 128, 512, 2_048, 8_192, 32_768, 131_072)
)
_EVAL_BATCHES = _MET.counter("compiled.eval.batches")
_EVAL_ROWS = _MET.counter("compiled.eval.rows")
_EVAL_LEVELIZED = _MET.counter("compiled.eval.levelized_batches")
_EVAL_POINTER = _MET.counter("compiled.eval.pointer_batches")
_EVAL_SECONDS = _MET.histogram(
    "compiled.eval.seconds",
    (1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 10.0),
)
_EVAL_ROWS_PER_SEC = _MET.gauge("compiled.eval.rows_per_sec", kind="last")

#: Abandon the levelized plan when its slot table would exceed this many
#: entries (a pathological wide-cut diagram); the pointer kernel still
#: evaluates such diagrams correctly.
LEVELIZED_SLOT_LIMIT = 4_000_000


def coerce_matrix(matrix: np.ndarray) -> np.ndarray:
    """Canonicalise a pattern batch to a C-contiguous 0/1 bool matrix.

    Returns the input object itself when it is already clean (bool dtype,
    C-contiguous) — the serving hot path must not pay a copy per batch —
    and otherwise exactly one converted copy: ``!= 0`` maps any integer
    or float dtype (int8 wire payloads included) onto {False, True}, and
    sliced / transposed / Fortran-ordered views are compacted so the
    kernels can index without numpy's implicit casts.  A ``(0, n)``
    empty batch passes through with dtype and layout normalised but no
    special casing.
    """
    if matrix.dtype != np.bool_:
        matrix = matrix != 0
    if not matrix.flags.c_contiguous:
        matrix = np.ascontiguousarray(matrix)
    return matrix


class CompiledDD:
    """One diagram root flattened into dense, contiguous numpy tables.

    Attributes
    ----------
    var, lo, hi:
        Per-node int32 arrays.  Terminals self-loop (``lo == hi == id``)
        and carry a dummy variable index 0, so the traversal kernel needs
        no special casing: once a row hits a leaf, further steps keep it
        there.
    values:
        Per-node float64 array; terminal value at leaves, NaN elsewhere.
    is_leaf:
        Per-node bool mask of terminals.
    root:
        Dense id of the compiled root.
    depth:
        Longest root-to-leaf path (decision nodes on it) — the maximum
        number of kernel steps any row can need.
    support:
        Sorted int32 array of variable indices the function depends on.
    """

    __slots__ = (
        "var",
        "lo",
        "hi",
        "values",
        "is_leaf",
        "root",
        "depth",
        "support",
        "_lev_children",
        "_lev_values",
        "_lev_tables",
        "_lev_final_values",
        "_backend_state",
    )

    def __init__(
        self,
        var: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        values: np.ndarray,
        is_leaf: np.ndarray,
        root: int,
        depth: int,
        support: np.ndarray,
    ):
        self.var = var
        self.lo = lo
        self.hi = hi
        self.values = values
        self.is_leaf = is_leaf
        self.root = root
        self.depth = depth
        self.support = support
        self._lev_children: np.ndarray | None = None
        self._lev_values: np.ndarray | None = None
        self._lev_tables: list[np.ndarray] | None = None
        self._lev_final_values: np.ndarray | None = None
        # Per-backend prepared state (bit-parallel gather plans, compiled
        # codegen kernels, the last auto-selection logged) — owned by
        # :mod:`repro.dd.backends`, keyed by backend name.
        self._backend_state: dict = {}
        self._build_levelized()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def compile(cls, manager: "DDManager", root: int) -> "CompiledDD":
        """Flatten the diagram rooted at ``root`` into array form."""
        with get_tracer().span("compiled.compile") as span:
            compiled = cls._compile(manager, root)
            span.set("nodes", compiled.num_nodes)
            span.set("depth", compiled.depth)
        _COMPILE_COUNT.inc()
        _COMPILE_NODES.observe(compiled.num_nodes)
        return compiled

    @classmethod
    def _compile(cls, manager: "DDManager", root: int) -> "CompiledDD":
        order = list(manager.iter_nodes(root))
        index = {node: k for k, node in enumerate(order)}
        count = len(order)
        var = np.zeros(count, dtype=np.int32)
        lo = np.zeros(count, dtype=np.int32)
        hi = np.zeros(count, dtype=np.int32)
        values = np.full(count, np.nan, dtype=np.float64)
        is_leaf = np.zeros(count, dtype=bool)
        for node, k in index.items():
            if manager.is_terminal(node):
                is_leaf[k] = True
                values[k] = manager.value(node)
                lo[k] = hi[k] = k
            else:
                var[k] = manager.top_var(node)
                lo[k] = index[manager.lo(node)]
                hi[k] = index[manager.hi(node)]
        # Longest path: children always sit on strictly larger levels, so
        # sorting by level descending (terminals use a dummy level but are
        # depth 0 anyway) visits children before parents.
        levels = np.where(is_leaf, np.iinfo(np.int32).max, var)
        depth_of = np.zeros(count, dtype=np.int64)
        for k in np.argsort(-levels, kind="stable"):
            if not is_leaf[k]:
                depth_of[k] = 1 + max(depth_of[lo[k]], depth_of[hi[k]])
        support = np.unique(var[~is_leaf]).astype(np.int32)
        return cls(
            var,
            lo,
            hi,
            values,
            is_leaf,
            index[root],
            int(depth_of[index[root]]),
            support,
        )

    # ------------------------------------------------------------------
    # Levelized plan
    # ------------------------------------------------------------------
    def _build_levelized(self) -> None:
        """Unroll the diagram over its sorted support levels.

        At each level ``t`` (variable ``support[t]``) the set of *live*
        nodes is the cut of the diagram at that level: nodes testing the
        level's variable branch to their children, every other live node
        (a deeper node or a terminal) passes through unchanged.  Each
        live node gets a level-local slot; slot ids are stored
        pre-doubled so ``children[slot + bit]`` resolves the next level's
        (doubled, globally offset) slot in a single gather.  After the
        last level every live node is a terminal; ``_lev_values`` maps
        the final slots to their terminal values.
        """
        var, lo, hi, is_leaf = self.var, self.lo, self.hi, self.is_leaf
        if not self.support.size:
            return
        live: dict = {int(self.root): 0}
        tables = []
        total = 0
        for v in self.support:
            succ: dict = {}
            table = np.empty(2 * len(live), dtype=np.int32)
            for node, slot in live.items():
                if not is_leaf[node] and var[node] == v:
                    children = (int(lo[node]), int(hi[node]))
                else:
                    children = (node, node)
                for bit, child in enumerate(children):
                    nxt = succ.get(child)
                    if nxt is None:
                        nxt = succ[child] = len(succ)
                    table[2 * slot + bit] = nxt
            tables.append(table)
            live = succ
            total += len(table)
            if total + 2 * len(live) > LEVELIZED_SLOT_LIMIT:
                return  # degenerate width; keep the pointer kernel
        # Flatten: slot s of level t becomes global doubled id
        # offset[t] + 2*s, so table entries only need the next offset.
        flat = np.empty(total, dtype=np.int32)
        offset = 0
        for table in tables:
            end = offset + len(table)
            flat[offset:end] = end + 2 * table
            offset = end
        # Final ids land in [total, total + 2*len(live)); only that tail
        # of the value table is ever gathered.
        values = np.full(total + 2 * len(live), np.nan, dtype=np.float64)
        final_values = np.empty(len(live), dtype=np.float64)
        for node, slot in live.items():
            values[total + 2 * slot] = values[total + 2 * slot + 1] = self.values[node]
            final_values[slot] = self.values[node]
        self._lev_children = flat
        self._lev_values = values
        # Per-level *local* tables plus per-final-slot values: the
        # bit-parallel backend needs level granularity (one OR-scatter per
        # level) and the codegen backend needs the plan re-emittable, so
        # both views of the same plan are kept.
        self._lev_tables = tables
        self._lev_final_values = final_values

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Nodes in the compiled diagram (terminals included)."""
        return len(self.var)

    def min_width(self) -> int:
        """Smallest assignment width this diagram can be evaluated on."""
        return int(self.support[-1]) + 1 if self.support.size else 0

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate_batch(self, assignments, kernel: str = "auto") -> np.ndarray:
        """Evaluate a ``(P, num_vars)`` 0/1 batch; returns ``(P,)`` floats.

        All support columns are validated before any work happens, so a
        too-narrow matrix (or an unknown backend name) raises without
        producing partial results.

        ``kernel`` selects the traversal strategy: any name registered in
        :mod:`repro.dd.backends` (``"levelized"``, ``"pointer"``,
        ``"bitparallel"``, ``"codegen"``) forces that backend — used by
        the differential-testing harness to cross-check implementations
        on identical inputs — and ``"auto"`` (default) applies the
        selection policy of :func:`repro.dd.backends.select_backend`,
        honouring the ``REPRO_EVAL_BACKEND`` environment override.
        Unknown names raise :class:`~repro.errors.BackendError`.
        """
        from repro.dd import backends as _backends

        forced = None if kernel == "auto" else _backends.get_backend(kernel)
        matrix = np.asarray(assignments)
        if matrix.ndim != 2:
            raise DDError("assignments must be a (P, num_vars) matrix")
        if self.support.size and matrix.shape[1] <= int(self.support[-1]):
            raise DDError(
                f"assignments lack variable column {int(self.support[-1])}"
            )
        rows = matrix.shape[0]
        if rows == 0:
            return np.empty(0, dtype=np.float64)
        if not self.support.size:
            return np.full(rows, self.values[self.root], dtype=np.float64)
        if forced is not None:
            backend = forced
            if not backend.supports(self):
                raise BackendError(
                    f"backend {backend.name!r} cannot evaluate this diagram "
                    "(no levelized plan: width over the slot limit)"
                )
        else:
            backend = _backends.select_backend(self, rows)
        # Canonicalise dtype and layout once per batch (the serving hot
        # path calls this with whatever the wire format produced); the
        # backends then index without numpy's implicit casts/copies.
        matrix = coerce_matrix(matrix)
        started = time.perf_counter()
        result = backend.evaluate(self, matrix)
        elapsed = time.perf_counter() - started
        if backend.name == "levelized":
            _EVAL_LEVELIZED.inc()
        elif backend.name == "pointer":
            _EVAL_POINTER.inc()
        _backends.record_batch(backend.name, rows)
        _EVAL_BATCHES.inc()
        _EVAL_ROWS.inc(rows)
        _EVAL_SECONDS.observe(elapsed)
        if elapsed > 0.0:
            _EVAL_ROWS_PER_SEC.set(rows / elapsed)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "compiled.eval",
                rows=rows,
                kernel=backend.name,
                seconds=elapsed,
            )
        return result

    def _evaluate_levelized(self, matrix: np.ndarray) -> np.ndarray:
        """Two vectorised passes per support level, no masking.

        ``state`` holds pre-doubled slot ids, so selecting a branch is
        ``state += bit`` and descending one level is one table gather.
        Rows that reach a terminal early ride pass-through slots to the
        bottom, which keeps the kernel branch-free.
        """
        rows = matrix.shape[0]
        # (L, P) bit matrix, one contiguous row per support level
        # (evaluate_batch already canonicalised the input to bool).
        bits = matrix.T[self.support].astype(np.int32)
        children = self._lev_children
        state = np.zeros(rows, dtype=np.int32)  # root slot: global id 0
        scratch = np.empty(rows, dtype=np.int32)
        for t in range(len(self.support)):
            np.add(state, bits[t], out=state)
            np.take(children, state, out=scratch)
            state, scratch = scratch, state
        return self._lev_values[state]

    def _evaluate_pointer(self, matrix: np.ndarray) -> np.ndarray:
        """Masked pointer-chasing fallback, ``O(P · depth)`` element ops.

        Rows that reach a leaf drop out of the active set, so shallow
        paths are not charged for the full depth.
        """
        rows = matrix.shape[0]
        bits = matrix  # canonical bool, courtesy of evaluate_batch
        var, lo, hi, is_leaf = self.var, self.lo, self.hi, self.is_leaf
        state = np.full(rows, self.root, dtype=np.int32)
        active = np.arange(rows)
        if is_leaf[self.root]:
            active = active[:0]
        while active.size:
            current = state[active]
            chosen = bits[active, var[current]]
            current = np.where(chosen, hi[current], lo[current])
            state[active] = current
            active = active[~is_leaf[current]]
        return self.values[state]

    def evaluate(self, assignment) -> float:
        """Single-row convenience wrapper around :meth:`evaluate_batch`."""
        return float(self.evaluate_batch(np.asarray(assignment)[None, :])[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledDD(nodes={self.num_nodes}, depth={self.depth}, "
            f"support={self.support.size})"
        )


def compile_dd(manager: "DDManager", root: int) -> CompiledDD:
    """Functional alias for :meth:`CompiledDD.compile`."""
    return CompiledDD.compile(manager, root)
