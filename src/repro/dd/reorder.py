"""Variable reordering for decision diagrams.

The manager's node store is immutable and hash-consed, so reordering is
implemented as a *transfer*: the function is rebuilt into a fresh manager
whose variable indices follow the new order, via Shannon expansion with
memoisation on source nodes.  This matches the paper's remark that
"variable reordering" is one of the levers for keeping ADDs small; the
netlist-level heuristics (:mod:`repro.dd.ordering`) pick the initial
order, and the searches here refine it for a specific function.

Costs: one transfer is linear in the *result* size (which a bad order can
make exponential); the searches evaluate many transfers and are meant for
modest diagrams and offline experiments, like CUDD's reordering triggered
between operations.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dd.manager import DDManager
from repro.errors import DDError, VariableOrderError
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer

_MET = get_metrics()
_TRANSFERS = _MET.counter("reorder.transfers")
_PROBES = _MET.counter("reorder.probes")


def transfer(
    source: DDManager,
    root: int,
    order: Sequence[int],
    target: Optional[DDManager] = None,
) -> Tuple[DDManager, int]:
    """Rebuild ``root`` in a (new) manager under a different variable order.

    ``order`` lists *source* variable indices in their new sequence; it
    must cover the support of ``root``.  In the target manager, variable
    ``order[k]`` lives at index ``k`` (names are carried over).  Returns
    ``(target_manager, new_root)``.
    """
    _TRANSFERS.inc()
    support = source.support(root)
    missing = support - set(order)
    if missing:
        raise VariableOrderError(
            f"order does not cover support variables {sorted(missing)[:5]}"
        )
    if len(set(order)) != len(order):
        raise DDError("order contains duplicate variables")
    if target is None:
        target = DDManager(
            len(order), [source.var_names[v] for v in order]
        )
    elif target.num_vars < len(order):
        raise DDError("target manager has too few variables")

    memo: Dict[Tuple[int, int], int] = {}

    def build(node: int, level: int) -> int:
        """Rebuild ``node`` using new-order variables from ``level`` on."""
        if source.is_terminal(node):
            return target.terminal(source.value(node))
        key = (node, level)
        hit = memo.get(key)
        if hit is not None:
            return hit
        # Advance to the first new-order variable the function depends on.
        sup = None
        position = level
        while position < len(order):
            variable = order[position]
            lo = source.restrict(node, variable, False)
            hi = source.restrict(node, variable, True)
            if lo != hi:
                result = target.node(
                    position, build(lo, position + 1), build(hi, position + 1)
                )
                break
            position += 1
        else:
            # Independent of every remaining variable: must be terminal.
            if not source.is_terminal(node):
                raise DDError(
                    "function depends on a variable outside the given order"
                )
            result = target.terminal(source.value(node))
        memo[key] = result
        return result

    return target, build(root, 0)


def size_under_order(source: DDManager, root: int, order: Sequence[int]) -> int:
    """Node count the function would have under ``order``."""
    _PROBES.inc()
    target, new_root = transfer(source, root, order)
    return target.size(new_root)


def random_order_search(
    source: DDManager,
    root: int,
    iterations: int = 20,
    seed: int = 0,
) -> Tuple[List[int], int]:
    """Best order among random permutations of the support.

    Returns ``(order, size)``; the identity (support-sorted) order is
    always among the candidates, so the result never regresses.
    """
    support = sorted(source.support(root))
    if not support:
        return [], source.size(root)
    with get_tracer().span("reorder.random_search") as span:
        rng = random.Random(seed)
        best_order = list(support)
        best_size = size_under_order(source, root, best_order)
        for _ in range(iterations):
            candidate = list(support)
            rng.shuffle(candidate)
            size = size_under_order(source, root, candidate)
            if size < best_size:
                best_size = size
                best_order = candidate
        span.update(iterations=iterations, best_size=best_size)
    return best_order, best_size


def sift_order_search(
    source: DDManager,
    root: int,
    passes: int = 1,
) -> Tuple[List[int], int]:
    """Greedy adjacent-transposition (sifting-style) order improvement.

    Repeatedly tries swapping neighbouring variables in the current order
    and keeps any swap that shrinks the diagram, for ``passes`` sweeps.
    Each probe is a full transfer, so this is 'sifting in spirit' — same
    moves, offline cost model — rather than CUDD's in-place level swap.
    """
    order = sorted(source.support(root))
    if len(order) < 2:
        return list(order), source.size(root)
    with get_tracer().span("reorder.sift_search") as span:
        best_size = size_under_order(source, root, order)
        for _ in range(passes):
            improved = False
            for k in range(len(order) - 1):
                candidate = list(order)
                candidate[k], candidate[k + 1] = candidate[k + 1], candidate[k]
                size = size_under_order(source, root, candidate)
                if size < best_size:
                    order = candidate
                    best_size = size
                    improved = True
            if not improved:
                break
        span.update(passes=passes, best_size=best_size)
    return list(order), best_size
