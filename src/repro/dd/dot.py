"""Graphviz DOT export for decision diagrams.

Produces pictures in the style of the paper's Figures 3-5: variables on
ranked levels, dashed edges for the 0-branch, solid edges for the
1-branch, boxed leaves with their values.  Purely for inspection and
documentation; nothing in the library depends on this module.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dd.manager import DDManager


def to_dot(manager: DDManager, root: int, name: str = "dd") -> str:
    """Render the diagram rooted at ``root`` as a DOT graph string."""
    lines: List[str] = [
        f"digraph {name} {{",
        "  rankdir=TB;",
        '  node [shape=circle, fontsize=10];',
    ]
    levels: Dict[int, List[int]] = {}
    edges: List[str] = []
    for node in manager.iter_nodes(root):
        if manager.is_terminal(node):
            value = manager.value(node)
            label = f"{value:g}"
            lines.append(f'  n{node} [shape=box, label="{label}"];')
        else:
            var = manager.top_var(node)
            levels.setdefault(var, []).append(node)
            label = manager.var_names[var]
            lines.append(f'  n{node} [label="{label}"];')
            edges.append(f"  n{node} -> n{manager.lo(node)} [style=dashed];")
            edges.append(f"  n{node} -> n{manager.hi(node)};")
    for var in sorted(levels):
        same = "; ".join(f"n{n}" for n in levels[var])
        lines.append(f"  {{ rank=same; {same}; }}")
    lines.extend(edges)
    lines.append("}")
    return "\n".join(lines)


def write_dot(manager: DDManager, root: int, path: str, name: str = "dd") -> None:
    """Write :func:`to_dot` output to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(manager, root, name))
        handle.write("\n")
