"""ADD approximation by node collapsing (Section 3 of the paper).

Collapsing replaces the sub-ADD rooted at a node with a single constant
leaf.  The *strategy* decides which nodes to collapse and which constant to
write:

``avg``
    Collapse minimum-variance nodes to their average value.  Preserves the
    global average exactly (``avg(a) + avg(b) = avg(a + b)``) and minimises
    the mean square error for a given set of collapsed nodes — the paper's
    choice for accurate average-power models.
``max``
    Collapse minimum-``mse`` nodes (``mse = var + (max - avg)^2``, Eq. 8)
    to their maximum value.  Every collapsed model value only increases, so
    the result is a *conservative pattern-dependent upper bound*.
``min``
    Dual of ``max``: conservative lower bound.
``random``
    Random node selection with average replacement values; the ablation
    baseline showing that variance-guided selection matters.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, Iterable, List, Literal, Optional

from repro.dd.manager import DDManager
from repro.dd.stats import NodeStats, compute_stats, function_stats
from repro.errors import DDError
from repro.obs.metrics import ERROR_BUCKETS, get_metrics
from repro.obs.trace import get_tracer

Strategy = Literal["avg", "max", "min", "random"]

_MET = get_metrics()
_COLLAPSE_CALLS = _MET.counter("collapse.calls")
_COLLAPSE_NODES_REMOVED = _MET.counter("collapse.nodes_removed")
#: Absolute shift of the function's global average caused by one
#: ``approximate`` call — the collapse-induced error signal.  Computing
#: it costs two extra stats traversals, so it is only recorded when
#: detailed metrics are enabled.
_COLLAPSE_LEAF_ERROR = _MET.histogram("collapse.leaf_error", ERROR_BUCKETS)

_STRATEGIES = ("avg", "max", "min", "random")


def _score(strategy: str, stats: NodeStats, rng: Optional[random.Random]) -> float:
    if strategy == "avg":
        return stats.var
    if strategy == "max":
        return stats.mse_max
    if strategy == "min":
        return stats.mse_min
    assert rng is not None
    return rng.random()


def _replacement_value(strategy: str, stats: NodeStats) -> float:
    if strategy == "max":
        return stats.max
    if strategy == "min":
        return stats.min
    return stats.avg


def _snap(value: float, step: float, mode: str) -> float:
    """Round a replacement value onto a grid of pitch ``step``."""
    scaled = value / step
    if mode == "up":
        return math.ceil(scaled - 1e-12) * step
    if mode == "down":
        return math.floor(scaled + 1e-12) * step
    return round(scaled) * step


def rebuild_with_replacements(
    manager: DDManager, root: int, replacement: Dict[int, int]
) -> int:
    """Rebuild the diagram at ``root`` substituting some nodes.

    ``replacement`` maps node ids to the node that should stand in for
    them (typically terminals).  If both a node and one of its descendants
    are replaced, the ancestor wins — its subtree is never visited.
    Rebuilding is bottom-up and linear in the diagram size.
    """
    memo: Dict[int, int] = {}
    # Iterative DFS to keep stack depth independent of diagram depth.
    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if node in memo:
            continue
        target = replacement.get(node)
        if target is not None:
            memo[node] = target
            continue
        if manager.is_terminal(node):
            memo[node] = node
            continue
        lo, hi = manager.lo(node), manager.hi(node)
        if not expanded:
            stack.append((node, True))
            stack.append((lo, False))
            stack.append((hi, False))
            continue
        memo[node] = manager.node(manager.top_var(node), memo[lo], memo[hi])
    return memo[root]


def collapse_nodes(
    manager: DDManager,
    root: int,
    nodes: Iterable[int],
    strategy: Strategy = "avg",
) -> int:
    """Collapse an explicit set of nodes with the given strategy's values."""
    stats = compute_stats(manager, root)
    replacement = {
        n: manager.terminal(_replacement_value(strategy, stats[n]))
        for n in nodes
        if n in stats and not manager.is_terminal(n)
    }
    return rebuild_with_replacements(manager, root, replacement)


def node_weights(manager: DDManager, root: int) -> Dict[int, float]:
    """Fraction of the input space whose evaluation path crosses each node.

    ``weight(root) = 1``; each decision halves the mass along both edges.
    Shared nodes accumulate mass from all their parents.  The product
    ``weight(n) * var(n)`` is the exact global mean-square error incurred
    by collapsing the (path-disjoint) sub-ADD at ``n`` to its average.
    """
    nodes = [n for n in manager.iter_nodes(root) if not manager.is_terminal(n)]
    nodes.sort(key=manager.top_var)  # edges always point to larger levels
    weights: Dict[int, float] = {n: 0.0 for n in nodes}
    weights[root] = 1.0
    for node in nodes:
        half = weights[node] * 0.5
        for child in (manager.lo(node), manager.hi(node)):
            if child in weights:
                weights[child] += half
    return weights


#: Type of the optional weight callback: given (manager, root) it returns
#: a per-node mass used to scale collapse scores.
WeightFn = Callable[[DDManager, int], Dict[int, float]]


def approximate(
    manager: DDManager,
    root: int,
    max_size: int,
    strategy: Strategy = "avg",
    seed: int = 0,
    weighted: bool = True,
    weight_fn: Optional[WeightFn] = None,
) -> int:
    """Reduce the diagram at ``root`` to at most ``max_size`` nodes.

    This is the paper's ``add_approx``: nodes are collapsed in ascending
    order of score (variance for ``avg``, Eq. 8 mse for ``max``/``min``)
    until the size target is met.  Node count includes leaves, matching
    the MAX bounds reported in Table 1.

    With ``weighted=True`` (default) each node's score is multiplied by
    the fraction of the input space that reaches it, making the score the
    node's *actual* contribution to the global mean-square error.  The
    paper's plain unweighted criterion (``weighted=False``) can rank a
    moderately-varying root below high-variance deep nodes and collapse
    the whole diagram to a constant; the ablation benchmark E5 compares
    the two.  ``weight_fn`` overrides the mass computation entirely
    (e.g. with a non-uniform input-statistics measure — see
    :func:`repro.models.addmodel.mixture_weight_fn`).

    Returns the (possibly unchanged) root of the approximated diagram.
    """
    tracer = get_tracer()
    size_before = manager.size(root)
    # The average shift is the collapse-induced error signal; it costs two
    # extra stats traversals, so only detailed-metrics runs pay for it.
    avg_before = function_stats(manager, root).avg if _MET.detailed else None
    with tracer.span("dd.approximate", strategy=strategy) as span:
        result = _approximate(
            manager, root, max_size, strategy, seed, weighted, weight_fn
        )
        size_after = manager.size(result)
        if tracer.enabled:
            span.update(
                max_size=max_size,
                size_before=size_before,
                size_after=size_after,
            )
    _COLLAPSE_CALLS.inc()
    _COLLAPSE_NODES_REMOVED.inc(max(0, size_before - size_after))
    if avg_before is not None:
        _COLLAPSE_LEAF_ERROR.observe(
            abs(function_stats(manager, result).avg - avg_before)
        )
    return result


def _approximate(
    manager: DDManager,
    root: int,
    max_size: int,
    strategy: Strategy,
    seed: int,
    weighted: bool,
    weight_fn: Optional[WeightFn],
) -> int:
    if max_size < 1:
        raise DDError(f"max_size must be >= 1, got {max_size}")
    if strategy not in _STRATEGIES:
        raise DDError(f"unknown strategy {strategy!r}; expected one of {_STRATEGIES}")
    rng = random.Random(seed) if strategy == "random" else None

    current = root
    while True:
        size = manager.size(current)
        if size <= max_size:
            return current
        stats = compute_stats(manager, current)
        candidates: List[int] = [
            n for n in stats if not manager.is_terminal(n)
        ]
        if weighted and strategy != "random":
            resolver = weight_fn if weight_fn is not None else node_weights
            weights = resolver(manager, current)
            candidates.sort(
                key=lambda n: (
                    weights.get(n, 0.0) * _score(strategy, stats[n], rng),
                    n,
                )
            )
        else:
            candidates.sort(key=lambda n: (_score(strategy, stats[n], rng), n))

        def smallest_feasible(terminals: List[int]) -> Optional[int]:
            """Binary-search the shortest low-score prefix whose collapse
            meets the size target; None if even a full collapse misses.

            Collapsing as few (and lowest-score) nodes as possible keeps
            the approximation error minimal and lands the final size just
            under max_size (important for the Fig.-7b trade-off curve).
            Size is monotone non-increasing in the prefix length up to
            rare terminal-sharing effects, which the outer loop absorbs.
            """

            def rebuild_with_first(k: int) -> int:
                replacement = dict(zip(candidates[:k], terminals[:k]))
                return rebuild_with_replacements(manager, current, replacement)

            low, high = 1, len(candidates)
            best = rebuild_with_first(high)
            if manager.size(best) > max_size:
                return None
            while low < high:
                mid = (low + high) // 2
                attempt = rebuild_with_first(mid)
                if manager.size(attempt) <= max_size:
                    best = attempt
                    high = mid
                else:
                    low = mid + 1
            return best

        exact_terminals = [
            manager.terminal(_replacement_value(strategy, stats[n]))
            for n in candidates
        ]
        rebuilt = smallest_feasible(exact_terminals)

        # Exact replacement values are all distinct floats, so collapsing
        # many sub-ADDs can *add* one leaf per collapse and the size only
        # drops once a near-root node falls — a catastrophic loss of
        # pattern dependence.  When that happens, retry with replacement
        # values snapped to a coarse grid: collapsed leaves merge, far
        # fewer (and lower-score) nodes need to fall, and conservatism is
        # kept by rounding up for ``max`` / down for ``min``.
        degenerate = rebuilt is None or (
            manager.size(rebuilt) <= max(3, max_size // 4) and size > max_size
        )
        # The avg strategy never snaps: exact average values keep the
        # model's global average identical to the original function's, a
        # documented invariant.  Bound strategies trade that for tightness.
        if degenerate and strategy in ("max", "min"):
            root_stats = stats[current]
            span = root_stats.max - root_stats.min
            if span > 0.0:
                step = span / max(2.0, max_size / 2.0)
                mode = {"max": "up", "min": "down"}.get(strategy, "nearest")
                grid_terminals = [
                    manager.terminal(
                        _snap(_replacement_value(strategy, stats[n]), step, mode)
                    )
                    for n in candidates
                ]
                regridded = smallest_feasible(grid_terminals)
                if regridded is not None and (
                    rebuilt is None
                    or manager.size(regridded) > manager.size(rebuilt)
                ):
                    rebuilt = regridded
        if rebuilt is None:
            # Even a full collapse could not reach the target (an ocean of
            # distinct pre-existing leaves).  Merge leaves directly with a
            # coarsening grid until the budget is met.
            mode = {"max": "up", "min": "down"}.get(strategy, "nearest")
            root_stats = stats[current]
            step = max(root_stats.max - root_stats.min, 1.0) / max(
                2.0, max_size / 2.0
            )
            rebuilt = current
            while manager.size(rebuilt) > max_size:
                rebuilt = quantize_leaves(manager, current, step, mode)
                step *= 2.0
        if rebuilt == current:
            # No candidate collapse changed the diagram; cannot shrink
            # further (degenerate input) — stop safely.
            return current
        current = rebuilt
        if manager.is_terminal(current):
            return current


def collapse_by_threshold(
    manager: DDManager,
    root: int,
    threshold: float,
    strategy: Strategy = "avg",
) -> int:
    """Collapse every node whose score does not exceed ``threshold``.

    Unlike :func:`approximate`, this bounds the local approximation error
    instead of the diagram size: with the ``avg`` strategy the variance of
    every replaced sub-function is at most ``threshold``.
    """
    if strategy == "random":
        raise DDError("threshold collapsing is undefined for the random strategy")
    stats = compute_stats(manager, root)
    marked = [
        n
        for n, s in stats.items()
        if not manager.is_terminal(n) and _score(strategy, s, None) <= threshold
    ]
    return collapse_nodes(manager, root, marked, strategy)


def quantize_leaves(
    manager: DDManager,
    root: int,
    step: float,
    mode: Literal["nearest", "up", "down"] = "nearest",
) -> int:
    """Round every leaf value to a multiple of ``step``.

    A complementary approximation that merges nearby leaves (and thereby
    the nodes above them).  ``mode='up'`` preserves upper-bound
    conservatism, ``mode='down'`` lower-bound conservatism.
    """
    if step <= 0:
        raise DDError(f"step must be positive, got {step}")
    memo: Dict[int, int] = {}

    def quantize(value: float) -> float:
        scaled = value / step
        if mode == "up":
            return math.ceil(scaled - 1e-12) * step
        if mode == "down":
            return math.floor(scaled + 1e-12) * step
        return round(scaled) * step

    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if node in memo:
            continue
        if manager.is_terminal(node):
            memo[node] = manager.terminal(quantize(manager.value(node)))
            continue
        lo, hi = manager.lo(node), manager.hi(node)
        if not expanded:
            stack.append((node, True))
            stack.append((lo, False))
            stack.append((hi, False))
            continue
        memo[node] = manager.node(manager.top_var(node), memo[lo], memo[hi])
    return memo[root]
