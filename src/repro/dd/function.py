"""Operator-overloading wrapper around manager node ids.

:class:`DDFunction` is the user-facing handle for a decision diagram: it
pairs a node id with its :class:`~repro.dd.manager.DDManager` and provides
Python operators for the common Boolean and arithmetic combinations.  All
heavy algorithms in this package work on raw integer ids for speed; wrap
and unwrap at API boundaries.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Set

from repro.dd.manager import DDManager
from repro.errors import DDError


class DDFunction:
    """A decision diagram (BDD or ADD) bound to its manager.

    Instances are immutable value objects: operators return new
    instances, and equality is structural (same manager, same node id —
    which, by canonicity, means the same function).
    """

    __slots__ = ("manager", "node")

    def __init__(self, manager: DDManager, node: int):
        self.manager = manager
        self.node = node

    # -- helpers -------------------------------------------------------
    def _wrap(self, node: int) -> "DDFunction":
        return DDFunction(self.manager, node)

    def _unwrap(self, other: "DDFunction | float | int") -> int:
        if isinstance(other, DDFunction):
            if other.manager is not self.manager:
                raise DDError("cannot combine diagrams from different managers")
            return other.node
        return self.manager.terminal(float(other))

    # -- Boolean operators ----------------------------------------------
    def __and__(self, other: "DDFunction") -> "DDFunction":
        return self._wrap(self.manager.bdd_and(self.node, self._unwrap(other)))

    def __or__(self, other: "DDFunction") -> "DDFunction":
        return self._wrap(self.manager.bdd_or(self.node, self._unwrap(other)))

    def __xor__(self, other: "DDFunction") -> "DDFunction":
        return self._wrap(self.manager.bdd_xor(self.node, self._unwrap(other)))

    def __invert__(self) -> "DDFunction":
        return self._wrap(self.manager.bdd_not(self.node))

    def ite(self, then_dd: "DDFunction", else_dd: "DDFunction") -> "DDFunction":
        """``self ? then_dd : else_dd`` (self must be a BDD)."""
        return self._wrap(
            self.manager.ite(self.node, self._unwrap(then_dd), self._unwrap(else_dd))
        )

    # -- arithmetic operators ---------------------------------------------
    def __add__(self, other: "DDFunction | float") -> "DDFunction":
        return self._wrap(self.manager.add_plus(self.node, self._unwrap(other)))

    __radd__ = __add__

    def __sub__(self, other: "DDFunction | float") -> "DDFunction":
        return self._wrap(self.manager.add_minus(self.node, self._unwrap(other)))

    def __mul__(self, other: "DDFunction | float") -> "DDFunction":
        return self._wrap(self.manager.add_times(self.node, self._unwrap(other)))

    __rmul__ = __mul__

    def maximum(self, other: "DDFunction | float") -> "DDFunction":
        """Pointwise maximum with another diagram or constant."""
        return self._wrap(self.manager.add_max(self.node, self._unwrap(other)))

    def minimum(self, other: "DDFunction | float") -> "DDFunction":
        """Pointwise minimum with another diagram or constant."""
        return self._wrap(self.manager.add_min(self.node, self._unwrap(other)))

    # -- structural ------------------------------------------------------
    def restrict(self, var: int, phase: bool) -> "DDFunction":
        """Cofactor with respect to ``var = phase``."""
        return self._wrap(self.manager.restrict(self.node, var, phase))

    def rename(self, mapping: Dict[int, int]) -> "DDFunction":
        """Monotone variable rename (see :meth:`DDManager.rename`)."""
        return self._wrap(self.manager.rename(self.node, mapping))

    def exists(self, variables: Iterable[int]) -> "DDFunction":
        """Existential quantification over ``variables`` (BDDs only)."""
        return self._wrap(self.manager.exists(self.node, variables))

    def forall(self, variables: Iterable[int]) -> "DDFunction":
        """Universal quantification over ``variables`` (BDDs only)."""
        return self._wrap(self.manager.forall(self.node, variables))

    # -- queries ---------------------------------------------------------
    def evaluate(self, assignment: Sequence[int]) -> float:
        """Evaluate for a 0/1 assignment indexed by variable index."""
        return self.manager.evaluate(self.node, assignment)

    def __call__(self, assignment: Sequence[int]) -> float:
        return self.evaluate(assignment)

    @property
    def size(self) -> int:
        """Number of nodes (internal + leaves) in this diagram."""
        return self.manager.size(self.node)

    @property
    def support(self) -> Set[int]:
        """Variable indices this function depends on."""
        return self.manager.support(self.node)

    @property
    def leaves(self) -> Set[float]:
        """Distinct terminal values of this diagram."""
        return self.manager.leaves(self.node)

    @property
    def is_boolean(self) -> bool:
        """True if all leaves are 0/1."""
        return self.manager.is_boolean(self.node)

    @property
    def is_constant(self) -> bool:
        """True if this diagram is a single leaf."""
        return self.manager.is_terminal(self.node)

    def constant_value(self) -> float:
        """Value of a constant diagram (raises if not constant)."""
        return self.manager.value(self.node)

    def sat_count(self, num_vars: int | None = None) -> float:
        """Satisfying-assignment count of a BDD."""
        return self.manager.sat_count(self.node, num_vars)

    # -- dunder plumbing ---------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DDFunction)
            and other.manager is self.manager
            and other.node == self.node
        )

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "BDD" if self.is_boolean else "ADD"
        return f"<{kind} node={self.node} size={self.size}>"
