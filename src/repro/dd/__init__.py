"""Decision-diagram engine: ROBDDs and ADDs with approximation.

This subpackage replaces the CUDD library the paper built on.  The main
entry points are:

- :class:`~repro.dd.manager.DDManager` — hash-consed node store with
  Boolean (BDD) and arithmetic (ADD) operations;
- :class:`~repro.dd.function.DDFunction` — operator-overloading wrapper;
- :func:`~repro.dd.approx.approximate` — size-targeted node collapsing
  (the paper's ``add_approx``);
- :mod:`~repro.dd.stats` — per-node average / variance / max recursions
  (Eq. 5-8);
- :class:`~repro.dd.ordering.TransitionSpace` — variable bookkeeping for
  the doubled ``(x_i, x_f)`` input space.
"""

from repro.dd.approx import (
    approximate,
    collapse_by_threshold,
    collapse_nodes,
    node_weights,
    quantize_leaves,
    rebuild_with_replacements,
)
from repro.dd.reorder import (
    random_order_search,
    sift_order_search,
    size_under_order,
    transfer,
)
from repro.dd.backends import (
    EvalBackend,
    FusedKernel,
    get_backend,
    registered_names,
    select_backend,
    warm_backend,
)
from repro.dd.compiled import CompiledDD, compile_dd
from repro.dd.dot import to_dot, write_dot
from repro.dd.function import DDFunction
from repro.dd.manager import TERMINAL_LEVEL, CacheStats, DDManager
from repro.dd.ordering import TransitionSpace, fanin_dfs_input_order
from repro.dd.stats import (
    NodeStats,
    average,
    compute_stats,
    expected_value_biased,
    function_stats,
    leaf_histogram,
    maximum,
    minimum,
    variance,
)

__all__ = [
    "DDManager",
    "DDFunction",
    "CacheStats",
    "CompiledDD",
    "compile_dd",
    "EvalBackend",
    "FusedKernel",
    "get_backend",
    "registered_names",
    "select_backend",
    "warm_backend",
    "TERMINAL_LEVEL",
    "TransitionSpace",
    "fanin_dfs_input_order",
    "NodeStats",
    "compute_stats",
    "function_stats",
    "average",
    "variance",
    "maximum",
    "minimum",
    "leaf_histogram",
    "expected_value_biased",
    "approximate",
    "collapse_nodes",
    "collapse_by_threshold",
    "quantize_leaves",
    "rebuild_with_replacements",
    "to_dot",
    "write_dot",
    "node_weights",
    "transfer",
    "size_under_order",
    "random_order_search",
    "sift_order_search",
]
