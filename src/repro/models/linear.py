"""``Lin`` — the characterized linear model (paper Section 4).

Estimates capacitance as a linear function of the per-input transition
activities:

    C = c0 + c1*a1 + ... + cn*an,   a_j = x_i_j XOR x_f_j

The coefficients are fitted by least squares against golden-model samples.
With ``n`` inputs the model has ``n + 1`` fitting coefficients — the
"linear model with 12 fitting coefficients" the paper mentions for cm85
(11 inputs).  It is pattern-dependent (unlike ``Con``) but its accuracy
still hinges on the training statistics, as Figure 7a shows.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import CharacterizationError
from repro.models.base import PowerModel
from repro.models.characterize import TrainingData, generate_training_data
from repro.netlist.netlist import Netlist


class LinearModel(PowerModel):
    """Linear-in-activity capacitance estimator."""

    def __init__(
        self,
        macro_name: str,
        input_names: Sequence[str],
        intercept_fF: float,
        coefficients_fF: Sequence[float],
    ):
        super().__init__(macro_name, input_names)
        if len(coefficients_fF) != len(input_names):
            raise CharacterizationError(
                f"{len(coefficients_fF)} coefficients for "
                f"{len(input_names)} inputs"
            )
        self.intercept_fF = float(intercept_fF)
        self.coefficients_fF = np.asarray(coefficients_fF, dtype=float)

    @classmethod
    def characterize(
        cls, netlist: Netlist, training: TrainingData | None = None
    ) -> "LinearModel":
        """Least-squares fit on golden-model training transitions."""
        if training is None:
            training = generate_training_data(netlist)
        if training.num_inputs != netlist.num_inputs:
            raise CharacterizationError(
                "training data width does not match the netlist"
            )
        activities = training.activities
        design = np.hstack(
            [np.ones((training.num_samples, 1)), activities]
        )
        solution, *_ = np.linalg.lstsq(design, training.capacitances, rcond=None)
        return cls(netlist.name, netlist.inputs, solution[0], solution[1:])

    @property
    def num_coefficients(self) -> int:
        """Fitting-parameter count (n + 1), as reported by the paper."""
        return 1 + len(self.coefficients_fF)

    def switching_capacitance(
        self, initial: Sequence[int], final: Sequence[int]
    ) -> float:
        activity = np.asarray(initial, dtype=bool) ^ np.asarray(final, dtype=bool)
        return float(self.intercept_fF + activity @ self.coefficients_fF)

    def pair_capacitances(self, initial, final) -> np.ndarray:
        initial = self._check_width(initial)
        final = self._check_width(final)
        activity = (initial ^ final).astype(float)
        return self.intercept_fF + activity @ self.coefficients_fF
