"""The paper's contribution: analytical ADD-based power models.

:func:`build_add_model` implements the iterative symbolic construction of
Figure 6: for each gate ``g_j`` of the golden netlist it forms the BDD
product ``g_j'(x_i) * g_j(x_f)`` (a rising-output indicator), scales it by
the gate's load ``C_j``, and accumulates the result into the switching-
capacitance ADD ``C(x_i, x_f)``.  Whenever an intermediate ADD exceeds the
size budget ``MAX``, it is compressed by node collapsing
(:func:`repro.dd.approx.approximate`) with the chosen strategy:

- ``avg``  — average-preserving approximation (accurate average power);
- ``max``  — conservative approximation (pattern-dependent upper bound);
- ``min``  — conservative lower bound (dual extension);
- ``None`` max_nodes — exact model, bit-true to gate-level simulation.

No simulation is involved anywhere: the model is *characterization-free*.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from collections import deque
from multiprocessing import connection as _mp_connection
from dataclasses import dataclass, field
from typing import Dict, List, Literal, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dd.approx import Strategy, WeightFn, approximate, node_weights
from repro.dd.compiled import CompiledDD
from repro.dd.manager import DDManager
from repro.dd.ordering import Scheme, TransitionSpace, fanin_dfs_input_order
from repro.dd.stats import compute_stats, function_stats
from repro.errors import (
    BuildTimeoutError,
    ModelError,
    WorkerCrashError,
)
from repro.models.base import PowerModel
from repro.netlist.netlist import Netlist
from repro.netlist.symbolic import build_node_functions
from repro.obs.metrics import SIZE_BUCKETS, TIME_BUCKETS, get_metrics
from repro.obs.report import BuildTelemetry
from repro.obs.trace import get_tracer
from repro.testing import faults

_LOG = logging.getLogger("repro.models.addmodel")

_MET = get_metrics()
_BUILD_COUNT = _MET.counter("add.build.count")
_BUILD_GATES = _MET.counter("add.build.gates")
_BUILD_APPROX = _MET.counter("add.build.approximations")
_BUILD_SECONDS = _MET.histogram("add.build.seconds", TIME_BUCKETS)
_BUILD_NODES_FINAL = _MET.histogram("add.build.nodes_final", SIZE_BUCKETS)
_BUILD_NODES_PEAK = _MET.gauge("add.build.nodes_peak")
_CACHE_HITS = _MET.counter("dd.apply.cache_hits")
_CACHE_MISSES = _MET.counter("dd.apply.cache_misses")
_CACHE_EVICTIONS = _MET.counter("dd.apply.cache_evictions")
_MANAGER_MEMORY = _MET.gauge("dd.manager.memory_bytes_peak")
_WORKER_CRASHES = _MET.counter("build.worker.crashes")
_WORKER_TIMEOUTS = _MET.counter("build.worker.timeouts")
_WORKER_RETRIES = _MET.counter("build.worker.retries")
_INPROCESS_FALLBACKS = _MET.counter("build.inprocess_fallbacks")
_POOL_FALLBACKS = _MET.counter("build.pool_fallbacks")
_DEGRADED_BUILDS = _MET.counter("build.degraded.count")


def markov_node_weights(
    manager: DDManager,
    root: int,
    space: TransitionSpace,
    sp: float,
    st: float,
) -> Dict[int, float]:
    """Per-node visit mass under independent per-bit Markov input statistics.

    The uniform :func:`repro.dd.approx.node_weights` weighs every branch
    1/2; here ``x_i`` branches carry probability ``sp`` and ``x_f``
    branches the chain's conditional toggle probabilities, so a node's
    weight is the fraction of *operating* transitions that reach it.
    Requires the interleaved variable order (the ``x_f`` conditional
    needs its ``x_i`` partner to sit directly above).
    """
    if space.scheme != "interleaved":
        raise ModelError("markov weights require the interleaved order")
    p01 = st / (2.0 * (1.0 - sp)) if sp < 1.0 else 0.0
    p10 = st / (2.0 * sp) if sp > 0.0 else 0.0
    n = space.num_inputs
    xi_position = {space.xi(k): k for k in range(n)}

    nodes = [u for u in manager.iter_nodes(root) if not manager.is_terminal(u)]
    nodes.sort(key=manager.top_var)
    # Mass per (node, pending-xi-bit) state; -1 = no pending conditioning.
    mass: Dict[tuple, float] = {(root, -1): 1.0}
    weights: Dict[int, float] = {u: 0.0 for u in nodes}
    for node in nodes:
        var = manager.top_var(node)
        lo, hi = manager.lo(node), manager.hi(node)
        for pending in (-1, 0, 1):
            amount = mass.pop((node, pending), 0.0)
            if amount == 0.0:
                continue
            weights[node] += amount
            if var in xi_position:
                xf_var = space.xf(xi_position[var])
                lo_state = 0 if manager.top_var(lo) == xf_var else -1
                hi_state = 1 if manager.top_var(hi) == xf_var else -1
                branches = (
                    (lo, lo_state, 1.0 - sp),
                    (hi, hi_state, sp),
                )
            else:
                if pending == 1:
                    p_one = 1.0 - p10
                elif pending == 0:
                    p_one = p01
                else:
                    p_one = sp
                branches = ((lo, -1, 1.0 - p_one), (hi, -1, p_one))
            for child, state, probability in branches:
                if not manager.is_terminal(child):
                    key = (child, state)
                    mass[key] = mass.get(key, 0.0) + amount * probability
    return weights


def mixture_weight_fn(
    space: TransitionSpace,
    components: Sequence[tuple] = ((0.5, 0.5), (0.5, 0.15), (0.5, 0.05)),
) -> WeightFn:
    """Weight callback for :func:`repro.dd.approx.approximate`.

    Averages node masses over several ``(sp, st)`` operating points, so
    collapse selection minimises the approximation error across the whole
    statistics range instead of only the uniform point.  The default
    mixture of the uniform point and a low-activity point is what keeps
    the Fig.-7a error curve flat at small ``st`` (where the true power is
    tiny and uniform weighting would sacrifice exactly that region).
    """

    def compute(manager: DDManager, root: int) -> Dict[int, float]:
        combined: Dict[int, float] = {}
        share = 1.0 / len(components)
        for sp, st in components:
            for node, weight in markov_node_weights(
                manager, root, space, sp, st
            ).items():
                combined[node] = combined.get(node, 0.0) + share * weight
        return combined

    return compute


#: Compat alias: the per-build record moved to the telemetry subsystem as
#: :class:`repro.obs.report.BuildTelemetry`.  Existing imports
#: (``from repro.models import BuildReport``) keep working unchanged.
BuildReport = BuildTelemetry


class AddPowerModel(PowerModel):
    """Pattern-dependent RTL power model backed by one ADD.

    Evaluation is a root-to-leaf walk — linear in the number of inputs,
    the "negligible time" run-time cost the paper advertises.
    """

    def __init__(
        self,
        macro_name: str,
        space: TransitionSpace,
        root: int,
        strategy: str = "avg",
        report: Optional[BuildReport] = None,
        input_names: Optional[Sequence[str]] = None,
    ):
        """``input_names`` fixes the *external* pattern convention (the
        netlist's primary-input order); the transition space may hold the
        same inputs in a different (DD-ordering-heuristic) order."""
        external = list(input_names) if input_names is not None else list(space.input_names)
        if sorted(external) != sorted(space.input_names):
            raise ModelError(
                "input_names must be a permutation of the space's inputs"
            )
        super().__init__(macro_name, external)
        self.space = space
        self.manager = space.manager
        self.root = root
        self.strategy = strategy
        self.report = report
        position = {name: k for k, name in enumerate(space.input_names)}
        # External input index -> position inside the transition space.
        self._space_position = [position[name] for name in external]
        #: Weight callback used for any further shrinking of this model.
        self.weight_fn: Optional[WeightFn] = None
        #: Default evaluation backend for :meth:`pair_capacitances` calls
        #: that do not force one ("auto" defers to the compiled layer's
        #: selection policy; see :mod:`repro.dd.backends`).
        self.eval_kernel: str = "auto"
        #: Content hash of the netlist this model was built from (see
        #: :meth:`repro.netlist.netlist.Netlist.content_hash`); rides
        #: through serialisation so the model store can verify that a
        #: cached payload matches the netlist it is being requested for.
        self.source_hash: Optional[str] = None
        # Lazily-built array form of the ADD, keyed by the root it was
        # compiled from so reapproximating (rebinding self.root) invalidates.
        self._compiled: Optional[CompiledDD] = None
        self._compiled_root: Optional[int] = None

    # ------------------------------------------------------------------
    # PowerModel interface
    # ------------------------------------------------------------------
    def switching_capacitance(
        self, initial: Sequence[int], final: Sequence[int]
    ) -> float:
        if len(initial) != self.num_inputs or len(final) != self.num_inputs:
            raise ModelError(
                f"patterns must have {self.num_inputs} bits"
            )
        packed = [0] * (2 * self.num_inputs)
        for k, pos in enumerate(self._space_position):
            packed[self.space.xi(pos)] = int(initial[k])
            packed[self.space.xf(pos)] = int(final[k])
        return self.manager.evaluate(self.root, packed)

    def compiled(self) -> CompiledDD:
        """Array form of the model's ADD (lazy; cached until the root changes)."""
        if self._compiled is None or self._compiled_root != self.root:
            self._compiled = CompiledDD.compile(self.manager, self.root)
            self._compiled_root = self.root
        return self._compiled

    def _pack_batch(self, initial, final) -> np.ndarray:
        """Weave (P, n) initial/final batches into (P, 2n) DD assignments."""
        initial = self._check_width(initial)
        final = self._check_width(final)
        if initial.shape != final.shape:
            raise ModelError("initial and final batches differ in shape")
        packed = np.empty((initial.shape[0], 2 * self.num_inputs), dtype=bool)
        xi_cols = [self.space.xi(pos) for pos in self._space_position]
        xf_cols = [self.space.xf(pos) for pos in self._space_position]
        packed[:, xi_cols] = initial
        packed[:, xf_cols] = final
        return packed

    def pair_capacitances(self, initial, final, kernel: Optional[str] = None) -> np.ndarray:
        """Model capacitance for a batch of ``(initial, final)`` pattern pairs.

        ``kernel`` selects the compiled evaluation backend (see
        :meth:`CompiledDD.evaluate_batch`); ``None`` defers to the model's
        :attr:`eval_kernel` default.  Forcing a named backend always
        compiles, even for tiny batches, so backends can be differenced
        against each other in tests.
        """
        if kernel is None:
            kernel = self.eval_kernel
        packed = self._pack_batch(initial, final)
        # Tiny batches before the first compilation are not worth the
        # O(model size) flattening; everything else goes through the
        # compiled pointer-chasing kernel (O(P · depth) numpy ops).
        if kernel == "auto" and self._compiled is None and packed.shape[0] < 16:
            evaluate = self.manager.evaluate
            root = self.root
            return np.array([evaluate(root, row) for row in packed], dtype=float)
        return self.compiled().evaluate_batch(packed, kernel=kernel)

    def warm_eval_backend(self, kernel: Optional[str] = None) -> str:
        """Pre-pay a backend's one-time setup cost (compile / pack tables).

        Long-lived consumers (the power-query server, sweep runners) call
        this once at load time so the first real batch is served at full
        speed.  Returns the name of the backend that was warmed.  With
        ``kernel=None`` the model's :attr:`eval_kernel` is warmed;
        ``"auto"`` warms the backend the selection policy would pick for a
        large batch.
        """
        from repro.dd import backends as _backends

        if kernel is None:
            kernel = self.eval_kernel
        compiled = self.compiled()
        if kernel == "auto":
            backend = _backends.select_backend(compiled, rows=1 << 20)
        else:
            backend = _backends.get_backend(kernel)
        backend.warm(compiled)
        return backend.name

    # ------------------------------------------------------------------
    # Analytic queries (no simulation needed)
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Node count of the model (leaves included), the paper's size metric."""
        return self.manager.size(self.root)

    @property
    def is_upper_bound(self) -> bool:
        """True if built with the conservative ``max`` strategy."""
        return self.strategy == "max"

    @property
    def is_lower_bound(self) -> bool:
        """True if built with the conservative ``min`` strategy."""
        return self.strategy == "min"

    def global_maximum(self) -> float:
        """Largest capacitance the model can report.

        For a ``max``-strategy model this is a conservative worst case
        over *all* transitions — the paper's constant bound baseline.
        """
        return function_stats(self.manager, self.root).max

    def global_minimum(self) -> float:
        """Smallest capacitance the model can report."""
        return function_stats(self.manager, self.root).min

    def average_capacitance_uniform(self) -> float:
        """Exact average under uniform independent inputs (Eq. 6 at the root)."""
        return function_stats(self.manager, self.root).avg

    def expected_capacitance(self, sp: float, st: float) -> float:
        """Closed-form expected capacitance under ``(sp, st)`` input statistics.

        Assumes independent per-bit stationary Markov inputs (the
        distribution :func:`repro.sim.sequences.markov_sequence` draws
        from) and walks the ADD once, weighting branches with the chain's
        marginal and conditional probabilities.  An analytical average-
        power predictor with *no* simulation — an extension enabled by the
        white-box model.
        """
        if self.space.scheme != "interleaved":
            raise ModelError(
                "expected_capacitance requires the interleaved variable order"
            )
        from repro.sim.sequences import feasible_st_range

        low, high = feasible_st_range(sp)
        if not low <= st <= high + 1e-12:
            raise ModelError(f"st={st} infeasible for sp={sp}")
        p01 = st / (2.0 * (1.0 - sp)) if sp < 1.0 else 0.0
        p10 = st / (2.0 * sp) if sp > 0.0 else 0.0
        manager = self.manager
        n = self.num_inputs
        # xi variable index -> input position k (to locate its xf partner).
        xi_position = {self.space.xi(k): k for k in range(n)}

        memo: Dict[tuple, float] = {}

        def walk(node: int, pending_bit: int) -> float:
            """Expected value below ``node``.

            ``pending_bit`` is -1 if no xi-branch is awaiting its xf
            partner, else the 0/1 value just taken by the partner xi
            variable of the *next* xf level.
            """
            key = (node, pending_bit)
            hit = memo.get(key)
            if hit is not None:
                return hit
            if manager.is_terminal(node):
                result = manager.value(node)
            else:
                var = manager.top_var(node)
                lo, hi = manager.lo(node), manager.hi(node)
                if var in xi_position:
                    k = xi_position[var]
                    xf_var = self.space.xf(k)
                    lo_pending = 0 if manager.top_var(lo) == xf_var else -1
                    hi_pending = 1 if manager.top_var(hi) == xf_var else -1
                    result = (1.0 - sp) * walk(lo, lo_pending) + sp * walk(
                        hi, hi_pending
                    )
                else:
                    if pending_bit == 1:
                        p_one = 1.0 - p10
                    elif pending_bit == 0:
                        p_one = p01
                    else:
                        # xi partner skipped: function independent of it,
                        # so the marginal P(xf = 1) = sp applies.
                        p_one = sp
                    result = (1.0 - p_one) * walk(lo, -1) + p_one * walk(hi, -1)
            memo[key] = result
            return result

        # A root testing an xf variable has its xi partner skipped, so the
        # marginal branch (pending = -1) is the right entry state.
        return walk(self.root, -1)

    def leaf_values(self) -> List[float]:
        """Sorted distinct capacitance levels the model distinguishes."""
        return sorted(self.manager.leaves(self.root))

    def to_dot(self, name: str | None = None) -> str:
        """Graphviz DOT rendering of the model's ADD (Fig. 3b-style)."""
        from repro.dd.dot import to_dot

        safe = (name or self.macro_name).replace("-", "_")
        return to_dot(self.manager, self.root, safe)

    def worst_case_transition(self) -> tuple:
        """A transition attaining the model's global maximum.

        Returns ``(initial, final, capacitance_fF)`` with the patterns in
        this model's external input order.  For an exact model this is a
        true maximum-power vector pair — the answer to the exhaustive
        search the paper calls "unfeasible", extracted from the ADD in
        time linear in its size; for a ``max``-strategy model it is the
        pattern at which the *bound* peaks (a stress-test candidate).
        """
        manager = self.manager
        stats = compute_stats(manager, self.root)
        assignment: Dict[int, int] = {}
        node = self.root
        while not manager.is_terminal(node):
            lo, hi = manager.lo(node), manager.hi(node)
            branch = int(stats[hi].max >= stats[lo].max)
            assignment[manager.top_var(node)] = branch
            node = hi if branch else lo
        initial = [0] * self.num_inputs
        final = [0] * self.num_inputs
        for k, pos in enumerate(self._space_position):
            initial[k] = assignment.get(self.space.xi(pos), 0)
            final[k] = assignment.get(self.space.xf(pos), 0)
        return initial, final, manager.value(node)

    def quietest_transition(self) -> tuple:
        """A transition attaining the model's global minimum (dual query)."""
        manager = self.manager
        stats = compute_stats(manager, self.root)
        assignment: Dict[int, int] = {}
        node = self.root
        while not manager.is_terminal(node):
            lo, hi = manager.lo(node), manager.hi(node)
            branch = int(stats[hi].min < stats[lo].min)
            assignment[manager.top_var(node)] = branch
            node = hi if branch else lo
        initial = [0] * self.num_inputs
        final = [0] * self.num_inputs
        for k, pos in enumerate(self._space_position):
            initial[k] = assignment.get(self.space.xi(pos), 0)
            final[k] = assignment.get(self.space.xf(pos), 0)
        return initial, final, manager.value(node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AddPowerModel macro={self.macro_name!r} strategy={self.strategy} "
            f"size={self.size}>"
        )


def build_add_model(
    netlist: Netlist,
    max_nodes: Optional[int] = None,
    strategy: Strategy = "avg",
    scheme: Scheme = "interleaved",
    input_order: Optional[Sequence[str]] = None,
    accumulation: Literal["tree", "linear"] = "tree",
) -> AddPowerModel:
    """Analytically construct the switching-capacitance ADD (paper Fig. 6).

    Parameters
    ----------
    netlist:
        Golden model: mapped gate-level netlist with load capacitances.
    max_nodes:
        The paper's ``MAX``: intermediate and final ADDs are compressed by
        node collapsing whenever they exceed this node count.  ``None``
        builds the exact model (gate-level-simulation accuracy).
    strategy:
        Collapse strategy; ``avg`` for average-accurate models, ``max``
        for conservative upper bounds, ``min`` for lower bounds.
    scheme:
        Variable interleaving for the doubled input space.
    input_order:
        Optional explicit primary-input order; defaults to the fanin-DFS
        heuristic over the netlist.
    accumulation:
        ``"tree"`` (default) sums the per-gate contributions pairwise in a
        balanced tree; ``"linear"`` follows the paper's Fig.-6 loop
        verbatim.  Both compute the same function and preserve the same
        conservatism/average invariants; the tree is asymptotically
        cheaper under a size budget.

    Returns the model; build metadata is attached as ``model.report``.
    """
    if max_nodes is not None and max_nodes < 1:
        raise ModelError(f"max_nodes must be >= 1, got {max_nodes}")
    if accumulation not in ("tree", "linear"):
        raise ModelError(f"unknown accumulation mode {accumulation!r}")
    if netlist.num_inputs == 0:
        raise ModelError("cannot model a netlist with no inputs")
    if max_nodes is None:
        # Chaos hook: an unbudgeted exact construction is where hostile
        # netlists blow up; the injected failure stands in for that.
        faults.maybe_fail("build.blowup")
    started = time.perf_counter()
    tracer = get_tracer()

    if input_order is None:
        order = fanin_dfs_input_order(
            netlist.outputs, netlist.fanin_map(), netlist.inputs
        )
    else:
        if sorted(input_order) != sorted(netlist.inputs):
            raise ModelError(
                "input_order must be a permutation of the netlist inputs"
            )
        order = list(input_order)

    with tracer.span(
        "add.build", macro=netlist.name, strategy=strategy
    ) as build_span:
        space = TransitionSpace(order, scheme)
        manager = space.manager
        cache_before = manager.cache_stats()
        position = {name: k for k, name in enumerate(order)}
        xi_vars = {name: space.xi(position[name]) for name in netlist.inputs}
        xf_vars = {name: space.xf(position[name]) for name in netlist.inputs}

        # Two symbolic sweeps: node functions over the x_i copy and the x_f
        # copy of the inputs (equivalent to the paper's g(x_i) / g(x_f)).
        with tracer.span("add.build.functions", copy="xi"):
            functions_i = build_node_functions(netlist, manager, xi_vars)
        with tracer.span("add.build.functions", copy="xf"):
            functions_f = build_node_functions(netlist, manager, xf_vars)

        loads = netlist.load_capacitances()
        peak = 1
        num_approx = 0
        # Hysteresis: compress below the budget so the very next addition does
        # not immediately trigger another approximation round.  The model still
        # never exceeds max_nodes; it just is not re-approximated every sum.
        compress_target = max(1, (3 * max_nodes) // 4) if max_nodes is not None else None

        # Collapse selection minimises error over a mixture of operating
        # statistics (uniform + low activity) rather than the uniform point
        # alone; see mixture_weight_fn.  Blocked-order models fall back to
        # uniform weights.
        weight_fn = mixture_weight_fn(space) if scheme == "interleaved" else None

        def bounded(node: int, limit: Optional[int]) -> int:
            nonlocal peak, num_approx
            if max_nodes is None:
                return node
            size = manager.size(node)
            peak = max(peak, size)
            if size > max_nodes:
                node = approximate(manager, node, limit, strategy, weight_fn=weight_fn)
                num_approx += 1
            return node

        # Per-gate contributions g_j'(x_i) * g_j(x_f) * C_j (paper Fig. 6).
        deltas = []
        with tracer.span("add.build.deltas"):
            for gate in netlist.topological_order():
                load = loads[gate.name]
                if load == 0.0:
                    continue  # gate with no fanout cannot draw structural power
                g_i = functions_i[gate.output]
                g_f = functions_f[gate.output]
                rising = manager.bdd_and(manager.bdd_not(g_i), g_f)
                deltas.append(
                    bounded(manager.add_const_times(rising, load), max_nodes)
                )

        with tracer.span("add.build.accumulate", mode=accumulation):
            if accumulation == "linear":
                # Verbatim Fig.-6 loop: one running sum, compressed on overflow.
                total = manager.zero
                for delta in deltas:
                    total = bounded(manager.add_plus(total, delta), compress_target)
            else:
                # Balanced-tree accumulation: algebraically identical (addition is
                # associative, and the collapse strategies commute with addition:
                # avg(a)+avg(b) = avg(a+b), max(a)+max(b) >= max(a+b)), but only
                # O(log N) of the partial sums are budget-sized instead of O(N),
                # which is what makes 1000-gate circuits tractable in pure Python.
                layer: List[int] = deltas if deltas else [manager.zero]
                while len(layer) > 1:
                    next_layer: List[int] = []
                    for k in range(0, len(layer) - 1, 2):
                        merged = manager.add_plus(layer[k], layer[k + 1])
                        next_layer.append(bounded(merged, compress_target))
                    if len(layer) % 2:
                        next_layer.append(layer[-1])
                    layer = next_layer
                total = layer[0]
        final_size = manager.size(total)
        peak = max(peak, final_size)
        cache_after = manager.cache_stats()
        if tracer.enabled:
            build_span.update(
                num_gates=netlist.num_gates,
                final_nodes=final_size,
                peak_nodes=peak,
                approximations=num_approx,
                cache=cache_after.summary(),
            )
    elapsed = time.perf_counter() - started
    report = BuildTelemetry(
        macro_name=netlist.name,
        strategy=strategy,
        max_nodes=max_nodes,
        final_nodes=final_size,
        peak_nodes=peak,
        num_approximations=num_approx,
        cpu_seconds=elapsed,
        num_gates=netlist.num_gates,
        cache_hits=cache_after.hits - cache_before.hits,
        cache_misses=cache_after.misses - cache_before.misses,
    )
    _BUILD_COUNT.inc()
    _BUILD_GATES.inc(netlist.num_gates)
    _BUILD_APPROX.inc(num_approx)
    _BUILD_SECONDS.observe(elapsed)
    _BUILD_NODES_FINAL.observe(final_size)
    _BUILD_NODES_PEAK.update_max(peak)
    _CACHE_HITS.inc(report.cache_hits)
    _CACHE_MISSES.inc(report.cache_misses)
    _CACHE_EVICTIONS.inc(
        max(0, cache_after.evictions - cache_before.evictions)
    )
    if _MET.detailed:
        _MANAGER_MEMORY.update_max(manager.memory_estimate_bytes())
    model = AddPowerModel(
        netlist.name, space, total, strategy, report, input_names=netlist.inputs
    )
    model.weight_fn = weight_fn
    model.source_hash = netlist.content_hash()
    return model


def shrink_model(model: AddPowerModel, max_nodes: int) -> AddPowerModel:
    """Further compress an existing model to a smaller size budget.

    Reuses the model's own strategy, so bound models stay conservative.
    Used by the size/accuracy trade-off experiment (Fig. 7b) to derive a
    whole family of models from one exact construction.
    """
    if model.strategy == "random":
        raise ModelError("cannot meaningfully shrink a random-strategy model")
    root = approximate(
        model.manager,
        model.root,
        max_nodes,
        model.strategy,
        weight_fn=model.weight_fn,
    )
    shrunk = AddPowerModel(
        model.macro_name,
        model.space,
        root,
        model.strategy,
        model.report,
        input_names=model.input_names,
    )
    shrunk.weight_fn = model.weight_fn
    shrunk.source_hash = model.source_hash
    return shrunk


# ---------------------------------------------------------------------------
# Parallel model construction
# ---------------------------------------------------------------------------
#: One parallel-build job: a netlist, optionally paired with per-job
#: keyword overrides for :func:`build_add_model`.
BuildJob = Union[Netlist, Tuple[Netlist, dict]]


def _parallel_build_worker(payload: Tuple[Netlist, dict]) -> dict:
    """Build one model in a worker process and ship it back as JSON data.

    ``DDManager`` node ids are process-local, so the model cannot cross
    the process boundary directly; the serialisation round trip through
    :mod:`repro.models.serialize` rebuilds an identical canonical diagram
    in the parent's manager.  The worker's metric increments are likewise
    process-local, so the per-build delta of the worker registry rides
    along and is merged into the parent registry by the caller.
    """
    from repro.models.serialize import model_to_dict

    netlist, kwargs = payload
    before = _MET.snapshot()
    model_dict = model_to_dict(build_add_model(netlist, **kwargs))
    return {
        "model": model_dict,
        "metrics": _MET.diff(before, _MET.snapshot()),
    }


def _restore_weight_fn(model: AddPowerModel) -> AddPowerModel:
    """Reattach the (unpicklable) collapse-weight callback after transfer."""
    if model.space.scheme == "interleaved":
        model.weight_fn = mixture_weight_fn(model.space)
    return model


@dataclass
class BuildOutcome:
    """Per-job result of a supervised parallel build.

    ``status`` records how the model was obtained:

    - ``"ok"`` — built by a worker (or directly, in sequential mode);
    - ``"fallback"`` — the worker failed but an in-process rebuild with
      the *same* configuration succeeded;
    - ``"degraded"`` — only a ``max_nodes``-collapsed build succeeded;
      ``effective_kwargs`` holds the configuration actually used;
    - ``"failed"`` — every rung of the ladder failed; ``model`` is None.
    """

    index: int
    model: Optional[AddPowerModel]
    status: str
    attempts: int = 1
    error: Optional[str] = None
    failure_kind: Optional[str] = None
    exception: Optional[BaseException] = None
    effective_kwargs: Dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.model is not None

    def raise_error(self) -> None:
        """Raise the typed error for a failed outcome (no-op when ok)."""
        if self.model is not None:
            return
        if self.exception is not None:
            raise self.exception
        message = self.error or "parallel model build failed"
        if self.failure_kind == "timeout":
            raise BuildTimeoutError(message)
        if self.failure_kind == "crash":
            raise WorkerCrashError(message)
        raise ModelError(message)


def _supervised_entry(conn, payload: Tuple[Netlist, dict], attempt: int) -> None:
    """Child-process entry point for one supervised build job.

    Ships ``("ok", worker_result)`` or ``("error", message)`` back over
    the pipe; a crash (or injected ``os._exit``) surfaces to the
    supervisor as EOF on the pipe instead.
    """
    try:
        faults.maybe_delay("build.worker.hang", token=attempt)
        if faults.fires("build.worker.crash", token=attempt):
            os._exit(1)
        result = _parallel_build_worker(payload)
    except BaseException as exc:  # noqa: BLE001 - must cross the pipe
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - parent already gone
            pass
    else:
        conn.send(("ok", result))
    finally:
        conn.close()


def _stop_worker(process) -> None:
    """Terminate a worker, escalating to SIGKILL if it ignores SIGTERM."""
    process.terminate()
    process.join(1.0)
    if process.is_alive():  # pragma: no cover - SIGTERM normally suffices
        process.kill()
        process.join()


def _supervise_jobs(
    normalized: Sequence[Tuple[Netlist, dict]],
    processes: int,
    job_timeout_s: Optional[float],
    max_retries: int,
    context,
) -> Dict[int, Tuple[str, object, int]]:
    """Dispatch jobs to per-job worker processes under supervision.

    Each job gets its own process and pipe, a wall-time budget, and up to
    ``max_retries`` relaunches after a crash or timeout.  Returns, per
    job index, ``(kind, payload, attempts)`` where kind is ``"ok"``
    (payload = worker result dict), ``"error"`` (the build itself raised;
    not retried — it is deterministic), ``"crash"`` or ``"timeout"``.

    Raises OSError only if the *first* worker cannot be started at all
    (no fork/spawn available), so the caller can fall back wholesale to
    sequential building; later launch failures are treated as crashes.
    """
    faults.maybe_fail("build.pool.unavailable")
    pending = deque((index, 1) for index in range(len(normalized)))
    running: Dict[object, Tuple[int, int, object, Optional[float]]] = {}
    results: Dict[int, Tuple[str, object, int]] = {}
    launched_any = False

    def launch(index: int, attempt: int) -> None:
        nonlocal launched_any
        recv_conn, send_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_supervised_entry,
            args=(send_conn, normalized[index], attempt),
            daemon=True,
        )
        try:
            process.start()
        except OSError:
            recv_conn.close()
            send_conn.close()
            raise
        launched_any = True
        send_conn.close()
        deadline = (
            None if job_timeout_s is None else time.monotonic() + job_timeout_s
        )
        running[recv_conn] = (index, attempt, process, deadline)

    def record_failure(index: int, attempt: int, kind: str, message: str) -> None:
        if kind == "crash":
            _WORKER_CRASHES.inc()
        elif kind == "timeout":
            _WORKER_TIMEOUTS.inc()
        if attempt <= max_retries:
            _WORKER_RETRIES.inc()
            pending.append((index, attempt + 1))
        else:
            results[index] = (kind, message, attempt)

    try:
        while pending or running:
            while pending and len(running) < processes:
                index, attempt = pending.popleft()
                try:
                    launch(index, attempt)
                except OSError as exc:
                    if not launched_any:
                        raise
                    record_failure(
                        index,
                        attempt,
                        "crash",
                        f"worker for job {index} could not start: {exc}",
                    )
            if not running:
                continue
            timeout = None
            deadlines = [
                deadline for (_, _, _, deadline) in running.values()
                if deadline is not None
            ]
            if deadlines:
                timeout = max(0.0, min(deadlines) - time.monotonic())
            ready = _mp_connection.wait(list(running), timeout=timeout)
            for conn in ready:
                index, attempt, process, _ = running.pop(conn)
                try:
                    kind, payload = conn.recv()
                except (EOFError, OSError):
                    kind, payload = "crash", (
                        f"worker for job {index} died before returning "
                        f"(attempt {attempt})"
                    )
                finally:
                    conn.close()
                process.join()
                if kind == "ok":
                    results[index] = ("ok", payload, attempt)
                elif kind == "crash":
                    record_failure(index, attempt, "crash", payload)
                else:
                    # The build itself raised: deterministic, not worth a
                    # worker retry — the in-process ladder handles it.
                    results[index] = ("error", payload, attempt)
            if not ready:
                now = time.monotonic()
                expired = [
                    conn
                    for conn, (_, _, _, deadline) in running.items()
                    if deadline is not None and deadline <= now
                ]
                for conn in expired:
                    index, attempt, process, _ = running.pop(conn)
                    conn.close()
                    _stop_worker(process)
                    record_failure(
                        index,
                        attempt,
                        "timeout",
                        f"worker for job {index} exceeded its "
                        f"{job_timeout_s:g}s budget (attempt {attempt})",
                    )
    finally:
        for conn, (_, _, process, _) in running.items():
            conn.close()
            _stop_worker(process)
    return results


def _try_degraded_build(
    index: int,
    netlist: Netlist,
    kwargs: dict,
    degrade_max_nodes: Optional[int],
    attempts: int,
) -> Optional[BuildOutcome]:
    """Last ladder rung: retry with a (tighter) ``max_nodes`` budget."""
    if degrade_max_nodes is None:
        return None
    current = kwargs.get("max_nodes")
    if current is not None and current <= degrade_max_nodes:
        return None
    degraded_kwargs = dict(kwargs)
    degraded_kwargs["max_nodes"] = degrade_max_nodes
    try:
        model = build_add_model(netlist, **degraded_kwargs)
    except Exception:
        return None
    _DEGRADED_BUILDS.inc()
    return BuildOutcome(
        index,
        model,
        "degraded",
        attempts=attempts,
        effective_kwargs=degraded_kwargs,
    )


def _build_with_ladder(
    index: int,
    netlist: Netlist,
    kwargs: dict,
    degrade_max_nodes: Optional[int],
    *,
    attempts: int = 1,
    failure_kind: Optional[str] = None,
    worker_error: Optional[str] = None,
    skip_exact: bool = False,
) -> BuildOutcome:
    """Run the in-process recovery ladder for one job.

    Used both for plain sequential building (``failure_kind=None``) and
    to recover a job whose supervised worker failed.  A timed-out job
    skips the exact in-process attempt — whatever hung the worker would
    hang the parent too — and goes straight to the degraded budget.
    """
    exception: Optional[BaseException] = None
    if not skip_exact:
        try:
            model = build_add_model(netlist, **kwargs)
        except Exception as exc:  # noqa: BLE001 - ladder decides
            exception = exc
        else:
            status = "ok"
            if failure_kind is not None:
                status = "fallback"
                _INPROCESS_FALLBACKS.inc()
            return BuildOutcome(
                index,
                model,
                status,
                attempts=attempts,
                effective_kwargs=dict(kwargs),
            )
    degraded = _try_degraded_build(
        index, netlist, kwargs, degrade_max_nodes, attempts
    )
    if degraded is not None:
        return degraded
    return BuildOutcome(
        index,
        None,
        "failed",
        attempts=attempts,
        error=worker_error if exception is None else str(exception),
        failure_kind=failure_kind if exception is None else failure_kind or "error",
        exception=exception,
        effective_kwargs=dict(kwargs),
    )


_POOL_FALLBACK_LOGGED = False


def _note_pool_fallback(exc: BaseException) -> None:
    """Count a wholesale pool→sequential fallback; log the first one."""
    global _POOL_FALLBACK_LOGGED
    _POOL_FALLBACKS.inc()
    if not _POOL_FALLBACK_LOGGED:
        _POOL_FALLBACK_LOGGED = True
        _LOG.warning(
            "parallel build worker pool unavailable (%s); "
            "building sequentially in-process", exc,
        )


def build_add_models_parallel(
    jobs: Sequence[BuildJob],
    processes: Optional[int] = None,
    *,
    job_timeout_s: Optional[float] = None,
    max_retries: int = 1,
    degrade_max_nodes: Optional[int] = None,
    raise_on_error: bool = True,
    **common_kwargs,
) -> Union[List[AddPowerModel], List[BuildOutcome]]:
    """Construct many ADD models concurrently under supervision.

    Parameters
    ----------
    jobs:
        Netlists to model, each optionally a ``(netlist, overrides)`` pair
        whose dict overrides ``common_kwargs`` for that job — e.g. build
        the same macro under several strategies, or many macros at once.
    processes:
        Worker count; defaults to ``min(len(jobs), cpu_count)``.
        ``1`` (or a single job) builds sequentially in-process.
    job_timeout_s:
        Per-job wall-time budget.  A worker that exceeds it is killed and
        the job retried, then degraded (None = no budget).
    max_retries:
        How many times a crashed or timed-out job is relaunched in a
        fresh worker before the in-process recovery ladder takes over.
    degrade_max_nodes:
        Last rung of the recovery ladder: when a job cannot be built
        exactly, retry with this ``max_nodes`` collapse budget (only if
        tighter than the job's own).  None disables degradation.
    raise_on_error:
        When True (default) return ``List[AddPowerModel]`` and raise the
        first failure (:class:`BuildTimeoutError`,
        :class:`WorkerCrashError`, or the build's own error).  When
        False, return a :class:`BuildOutcome` per job so one failure
        cannot lose its siblings' results.
    common_kwargs:
        Keyword arguments forwarded to :func:`build_add_model`.

    Results are in job order.  Each parallel-built model lives in its own
    fresh manager (the JSON round trip used for transfer rebuilds the
    canonical diagram), so results are structurally identical — same node
    count, same evaluations — to a sequential :func:`build_add_model`
    call.  Every job is dispatched to its own supervised worker process;
    a crashed or hung worker is detected, retried, and finally recovered
    in-process, with a wholesale sequential fallback when no worker can
    be started at all (e.g. sandboxed environments).
    """
    normalized: List[Tuple[Netlist, dict]] = []
    for job in jobs:
        if isinstance(job, Netlist):
            netlist, overrides = job, {}
        else:
            netlist, overrides = job
            if not isinstance(netlist, Netlist):
                raise ModelError(
                    "each job must be a Netlist or a (Netlist, kwargs) pair"
                )
        kwargs = dict(common_kwargs)
        kwargs.update(overrides)
        normalized.append((netlist, kwargs))
    if not normalized:
        return []
    if processes is None:
        processes = min(len(normalized), os.cpu_count() or 1)

    def sequential() -> List[BuildOutcome]:
        return [
            _build_with_ladder(index, netlist, kwargs, degrade_max_nodes)
            for index, (netlist, kwargs) in enumerate(normalized)
        ]

    if processes <= 1 or len(normalized) == 1:
        outcomes = sequential()
    else:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform without fork
            context = multiprocessing.get_context()
        try:
            results = _supervise_jobs(
                normalized, processes, job_timeout_s, max_retries, context
            )
        except OSError as exc:
            _note_pool_fallback(exc)
            outcomes = sequential()
        else:
            from repro.models.serialize import model_from_dict

            outcomes = []
            for index, (netlist, kwargs) in enumerate(normalized):
                kind, payload, attempts = results[index]
                if kind == "ok":
                    # Fold the worker's per-build metric deltas into this
                    # process's registry, so parallel builds account like
                    # sequential ones.
                    _MET.merge(payload["metrics"])
                    model = _restore_weight_fn(model_from_dict(payload["model"]))
                    outcomes.append(
                        BuildOutcome(
                            index,
                            model,
                            "ok",
                            attempts=attempts,
                            effective_kwargs=dict(kwargs),
                        )
                    )
                else:
                    outcomes.append(
                        _build_with_ladder(
                            index,
                            netlist,
                            kwargs,
                            degrade_max_nodes,
                            attempts=attempts,
                            failure_kind=kind,
                            worker_error=str(payload),
                            skip_exact=(kind == "timeout"),
                        )
                    )
    if not raise_on_error:
        return outcomes
    models: List[AddPowerModel] = []
    for outcome in outcomes:
        if not outcome.ok:
            outcome.raise_error()
        models.append(outcome.model)
    return models
