"""Abstract interface shared by all RTL power models.

A *power model* maps an input transition ``(x_i, x_f)`` of a combinational
macro to an estimate of its switching capacitance in fF (energy follows as
``Vdd^2 * C``, Eq. 1).  Pattern-dependent models (ADD, Lin) implement
:meth:`PowerModel.switching_capacitance`; pattern-independent models (Con,
the statistics LUT) additionally override the sequence-average hook, which
is what the paper's accuracy experiments ultimately measure.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.errors import ModelError
from repro.sim.power_sim import DEFAULT_VDD


class PowerModel(ABC):
    """Estimator of per-transition switching capacitance for one macro."""

    def __init__(self, macro_name: str, input_names: Sequence[str]):
        self.macro_name = macro_name
        self.input_names = list(input_names)

    @property
    def num_inputs(self) -> int:
        """Number of primary inputs of the modeled macro."""
        return len(self.input_names)

    # ------------------------------------------------------------------
    # Pattern-level interface
    # ------------------------------------------------------------------
    @abstractmethod
    def switching_capacitance(
        self, initial: Sequence[int], final: Sequence[int]
    ) -> float:
        """Estimated ``C(x_i, x_f)`` in fF for one transition."""

    def energy_fJ(
        self,
        initial: Sequence[int],
        final: Sequence[int],
        vdd: float = DEFAULT_VDD,
    ) -> float:
        """Estimated supply energy in fJ (Eq. 1)."""
        return self.switching_capacitance(initial, final) * vdd * vdd

    def _check_width(self, patterns: np.ndarray) -> np.ndarray:
        patterns = np.atleast_2d(np.asarray(patterns, dtype=bool))
        if patterns.shape[1] != self.num_inputs:
            raise ModelError(
                f"model {self.macro_name!r} expects {self.num_inputs}-bit "
                f"patterns, got width {patterns.shape[1]}"
            )
        return patterns

    # ------------------------------------------------------------------
    # Batch interface (default: per-pattern loop; override when vectorisable)
    # ------------------------------------------------------------------
    def pair_capacitances(
        self, initial: np.ndarray, final: np.ndarray
    ) -> np.ndarray:
        """Estimates for a batch of independent transitions."""
        initial = self._check_width(initial)
        final = self._check_width(final)
        if initial.shape != final.shape:
            raise ModelError("initial and final batches differ in shape")
        return np.array(
            [
                self.switching_capacitance(initial[k], final[k])
                for k in range(initial.shape[0])
            ]
        )

    def sequence_capacitances(self, sequence: np.ndarray) -> np.ndarray:
        """Per-cycle estimates along a vector sequence (length - 1 values)."""
        sequence = self._check_width(sequence)
        if sequence.shape[0] < 2:
            raise ModelError("sequence must hold at least two vectors")
        return self.pair_capacitances(sequence[:-1], sequence[1:])

    # ------------------------------------------------------------------
    # Sequence-level summaries (what the paper's RE/ARE metrics consume)
    # ------------------------------------------------------------------
    def average_capacitance(self, sequence: np.ndarray) -> float:
        """Average estimated C over a sequence (pattern-independent models
        override this to return their closed-form value)."""
        return float(np.mean(self.sequence_capacitances(sequence)))

    def maximum_capacitance(self, sequence: np.ndarray) -> float:
        """Maximum estimated C over a sequence (peak-power estimation)."""
        return float(np.max(self.sequence_capacitances(sequence)))

    def sequence_summary(self, sequence: np.ndarray) -> "tuple[float, float]":
        """``(average, maximum)`` estimate over a sequence in one batch pass.

        The default walks the sequence once and derives both summaries
        from the same per-cycle estimates — half the work of calling
        :meth:`average_capacitance` and :meth:`maximum_capacitance`
        separately.  Models that override either hook (pattern-independent
        closed forms like ``Con`` or the statistics LUT) are dispatched to
        their overrides so their semantics are preserved.
        """
        cls = type(self)
        if (
            cls.average_capacitance is not PowerModel.average_capacitance
            or cls.maximum_capacitance is not PowerModel.maximum_capacitance
        ):
            return (
                self.average_capacitance(sequence),
                self.maximum_capacitance(sequence),
            )
        capacitances = self.sequence_capacitances(sequence)
        return float(np.mean(capacitances)), float(np.max(capacitances))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} macro={self.macro_name!r}>"
