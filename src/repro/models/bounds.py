"""Conservative worst-case power estimation (paper Sections 1.2 / 3).

A ``max``-strategy :class:`~repro.models.addmodel.AddPowerModel` is a
*pattern-dependent upper bound*: for every transition its estimate is at
least the true switching capacitance.  From it derive:

- the paper's constant bound baseline (the model's global maximum — a
  single worst-case number valid for all patterns), and
- composed bounds for multi-macro RTL designs, where summing per-macro
  pattern-dependent bounds stays conservative
  (``max(a) + max(b) >= max(a + b)``) but is far tighter than summing
  the per-macro global worst cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.dd.approx import approximate
from repro.errors import ModelError
from repro.models.addmodel import AddPowerModel, build_add_model
from repro.models.constant import ConstantModel
from repro.netlist.netlist import Netlist
from repro.sim.power_sim import pair_switching_capacitances


def build_upper_bound_model(
    netlist: Netlist, max_nodes: Optional[int] = None
) -> AddPowerModel:
    """Pattern-dependent conservative upper bound for one macro."""
    return build_add_model(netlist, max_nodes=max_nodes, strategy="max")


def build_lower_bound_model(
    netlist: Netlist, max_nodes: Optional[int] = None
) -> AddPowerModel:
    """Pattern-dependent conservative lower bound (dual extension)."""
    return build_add_model(netlist, max_nodes=max_nodes, strategy="min")


def constant_bound_from_model(model: AddPowerModel) -> ConstantModel:
    """The paper's constant worst-case baseline.

    "As a constant estimator we used the maximum value of the
    pattern-dependent upper bound" — i.e. the global maximum of the ADD
    bound, reported for every pattern.
    """
    if not model.is_upper_bound:
        raise ModelError(
            "constant bound must derive from a max-strategy (upper bound) model"
        )
    return ConstantModel(
        model.macro_name, model.input_names, model.global_maximum()
    )


@dataclass(frozen=True)
class BoundCheck:
    """Result of sampling-based conservatism verification.

    ``violations`` should be zero for any correctly built bound; the
    ``max_violation_fF`` field quantifies a failure if one ever appears.
    """

    num_samples: int
    violations: int
    max_violation_fF: float
    mean_slack_fF: float
    max_slack_fF: float

    @property
    def conservative(self) -> bool:
        """True if no sampled transition exceeded its bound."""
        return self.violations == 0


def verify_upper_bound(
    model: AddPowerModel,
    netlist: Netlist,
    initial: np.ndarray,
    final: np.ndarray,
    tolerance_fF: float = 1e-6,
) -> BoundCheck:
    """Check ``model >= golden`` on a sample of transitions.

    Also reports the *slack* (bound minus truth), the tightness measure
    the upper-bound ARE of Table 1 summarises.
    """
    estimates = model.pair_capacitances(initial, final)
    truths = pair_switching_capacitances(netlist, initial, final)
    gaps = estimates - truths
    violating = gaps < -tolerance_fF
    return BoundCheck(
        num_samples=len(gaps),
        violations=int(np.sum(violating)),
        max_violation_fF=float(-gaps.min()) if violating.any() else 0.0,
        mean_slack_fF=float(np.mean(gaps)),
        max_slack_fF=float(np.max(gaps)),
    )


def summed_constant_bound(models: Sequence[AddPowerModel]) -> float:
    """Worst-case bound for a design: sum of per-macro global maxima.

    This is the loose classical composition the paper criticises — "no
    compensation occurs when adding conservative estimates".
    """
    return sum(m.global_maximum() for m in models)


def summed_pattern_bound(
    models: Sequence[AddPowerModel],
    initial_patterns: Sequence[Sequence[int]],
    final_patterns: Sequence[Sequence[int]],
) -> float:
    """Pattern-dependent composed bound: sum of per-macro bound evaluations.

    Given the actual input transition seen by each macro, the sum of the
    pattern-dependent bounds is still conservative but much tighter than
    :func:`summed_constant_bound`.
    """
    if not (len(models) == len(initial_patterns) == len(final_patterns)):
        raise ModelError("one pattern pair per model is required")
    return sum(
        model.switching_capacitance(xi, xf)
        for model, xi, xf in zip(models, initial_patterns, final_patterns)
    )
