"""RTL power models: the paper's analytical ADD model and its baselines.

- :func:`~repro.models.addmodel.build_add_model` /
  :class:`~repro.models.addmodel.AddPowerModel` — the characterization-free
  contribution (exact, average-approximated, upper- or lower-bound);
- :class:`~repro.models.constant.ConstantModel` (``Con``) and
  :class:`~repro.models.linear.LinearModel` (``Lin``) — the characterized
  baselines of Section 4;
- :class:`~repro.models.lut.StatsLUTModel` — the [5]-style LUT baseline;
- :class:`~repro.models.hybrid.HybridModel` — analytical structural core
  plus characterized parasitic residual (Section 2 remark);
- :mod:`~repro.models.bounds` — conservative worst-case utilities.
"""

from repro.models.addmodel import (
    AddPowerModel,
    BuildReport,
    BuildTelemetry,
    build_add_model,
    build_add_models_parallel,
    shrink_model,
)
from repro.models.base import PowerModel
from repro.models.bounds import (
    BoundCheck,
    build_lower_bound_model,
    build_upper_bound_model,
    constant_bound_from_model,
    summed_constant_bound,
    summed_pattern_bound,
    verify_upper_bound,
)
from repro.models.characterize import (
    TrainingData,
    characterization_sequence,
    generate_training_data,
)
from repro.models.accuracy import (
    ErrorReport,
    exact_error_report,
    sampled_error_report,
)
from repro.models.addmodel import markov_node_weights, mixture_weight_fn
from repro.models.constant import ConstantModel
from repro.models.hybrid import HybridModel
from repro.models.linear import LinearModel
from repro.models.lut import StatsLUTModel
from repro.models.serialize import (
    dump_model,
    load_model,
    model_from_dict,
    model_to_dict,
    read_model,
    save_model,
)

__all__ = [
    "PowerModel",
    "AddPowerModel",
    "BuildReport",
    "BuildTelemetry",
    "build_add_model",
    "build_add_models_parallel",
    "shrink_model",
    "ConstantModel",
    "LinearModel",
    "StatsLUTModel",
    "HybridModel",
    "TrainingData",
    "generate_training_data",
    "characterization_sequence",
    "build_upper_bound_model",
    "build_lower_bound_model",
    "constant_bound_from_model",
    "verify_upper_bound",
    "BoundCheck",
    "summed_constant_bound",
    "summed_pattern_bound",
    "markov_node_weights",
    "mixture_weight_fn",
    "model_to_dict",
    "model_from_dict",
    "dump_model",
    "load_model",
    "save_model",
    "read_model",
    "ErrorReport",
    "exact_error_report",
    "sampled_error_report",
]
