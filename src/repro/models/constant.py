"""``Con`` — the characterized constant estimator (paper Section 4).

Predicts the same switching capacitance for every input transition: the
average observed during characterization.  In-sample it is unbiased by
construction; out of sample its error tracks how far the actual input
statistics drift from the training statistics — exactly the failure mode
Figure 7a demonstrates.

A constant model around a *maximum* is also the paper's baseline for
worst-case bounds (Table 1, column "Con" under Upper bounds).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import CharacterizationError
from repro.models.base import PowerModel
from repro.models.characterize import TrainingData, generate_training_data
from repro.netlist.netlist import Netlist


class ConstantModel(PowerModel):
    """Pattern-independent constant capacitance estimator."""

    def __init__(self, macro_name: str, input_names: Sequence[str], value_fF: float):
        super().__init__(macro_name, input_names)
        if value_fF < 0:
            raise CharacterizationError(
                f"constant capacitance must be non-negative, got {value_fF}"
            )
        self.value_fF = float(value_fF)

    @classmethod
    def characterize(
        cls, netlist: Netlist, training: TrainingData | None = None
    ) -> "ConstantModel":
        """Fit to the mean golden-model capacitance of a training sample.

        With no sample given, the paper's default stimulus
        (random, sp = st = 0.5) is generated.
        """
        if training is None:
            training = generate_training_data(netlist)
        return cls(
            netlist.name, netlist.inputs, float(np.mean(training.capacitances))
        )

    @classmethod
    def worst_case(
        cls, netlist: Netlist, training: TrainingData
    ) -> "ConstantModel":
        """Constant estimator of the *maximum* observed capacitance.

        Note this is NOT conservative: simulation can only lower-bound the
        true worst case.  The paper's conservative constant bound instead
        takes the global maximum of the ADD upper bound — see
        :func:`repro.models.bounds.constant_bound_from_model`.
        """
        return cls(
            netlist.name, netlist.inputs, float(np.max(training.capacitances))
        )

    def switching_capacitance(
        self, initial: Sequence[int], final: Sequence[int]
    ) -> float:
        return self.value_fF

    # Closed forms: no need to walk the sequence.
    def pair_capacitances(self, initial, final) -> np.ndarray:
        initial = self._check_width(initial)
        return np.full(initial.shape[0], self.value_fF)

    def average_capacitance(self, sequence: np.ndarray) -> float:
        return self.value_fF

    def maximum_capacitance(self, sequence: np.ndarray) -> float:
        return self.value_fF
