"""Exact and sampled accuracy certification for ADD power models.

Because both the exact switching-capacitance function and its
approximation live in one decision-diagram manager, their *difference* is
itself an ADD — so the approximation error can be characterised exactly:
mean shift, RMS error, and worst over/under-estimate over the entire
``4^n`` transition space, with no sampling at all.  This turns the
paper's qualitative "the error induced to the model can be always
controlled" into checkable numbers.

The symbolic product ``(f - g)^2`` can be as large as ``|f| * |g|`` nodes,
so for very large exact models a sampled estimate is provided as well.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dd.stats import function_stats
from repro.errors import ModelError
from repro.models.addmodel import AddPowerModel
from repro.netlist.netlist import Netlist
from repro.sim.power_sim import pair_switching_capacitances
from repro.sim.sequences import uniform_pairs


@dataclass(frozen=True)
class ErrorReport:
    """Error of an estimate ``g`` against a reference ``f`` (both in fF).

    ``max_overestimate`` is ``max(g - f)`` and ``max_underestimate`` is
    ``max(f - g)``; a conservative upper bound has
    ``max_underestimate <= 0`` (never below the truth).
    """

    mean_shift_fF: float
    rms_error_fF: float
    max_overestimate_fF: float
    max_underestimate_fF: float

    @property
    def is_upper_bound(self) -> bool:
        """True if the estimate never undershoots the reference."""
        return self.max_underestimate_fF <= 1e-9

    @property
    def is_lower_bound(self) -> bool:
        """True if the estimate never overshoots the reference."""
        return self.max_overestimate_fF <= 1e-9


def exact_error_report(
    reference: AddPowerModel, estimate: AddPowerModel
) -> ErrorReport:
    """Exact error statistics over the full transition space (symbolic).

    Both models must share one manager (e.g. a model and its
    :func:`~repro.models.addmodel.shrink_model` descendants).  Cost is up
    to the product of the two diagram sizes; fine for the model sizes the
    experiments use, prohibitive for six-digit exact models — use
    :func:`sampled_error_report` there.
    """
    if reference.manager is not estimate.manager:
        raise ModelError(
            "exact comparison requires models sharing one DD manager"
        )
    manager = reference.manager
    difference = manager.add_minus(estimate.root, reference.root)
    stats = function_stats(manager, difference)
    squared = manager.apply("times", lambda a, b: a * b, difference, difference)
    mse = function_stats(manager, squared).avg
    return ErrorReport(
        mean_shift_fF=stats.avg,
        rms_error_fF=float(np.sqrt(max(mse, 0.0))),
        max_overestimate_fF=max(stats.max, 0.0),
        max_underestimate_fF=max(-stats.min, 0.0),
    )


def sampled_error_report(
    model: AddPowerModel,
    netlist: Netlist,
    num_samples: int = 2000,
    seed: int = 0,
) -> ErrorReport:
    """Monte-Carlo error statistics against the gate-level golden model.

    Unlike :func:`exact_error_report` this compares with the *netlist*
    (so it also certifies exactness of unapproximated models) and scales
    to any circuit the simulator handles.  Over/under-estimates are
    sample maxima, hence lower bounds on the true worst cases.
    """
    if netlist.num_inputs != model.num_inputs:
        raise ModelError("model and netlist disagree on the input count")
    initial, final = uniform_pairs(netlist.num_inputs, num_samples, seed=seed)
    golden = pair_switching_capacitances(netlist, initial, final)
    estimates = model.pair_capacitances(initial, final)
    gaps = estimates - golden
    return ErrorReport(
        mean_shift_fF=float(np.mean(gaps)),
        rms_error_fF=float(np.sqrt(np.mean(gaps ** 2))),
        max_overestimate_fF=float(max(np.max(gaps), 0.0)),
        max_underestimate_fF=float(max(np.max(-gaps), 0.0)),
    )
