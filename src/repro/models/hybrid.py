"""Hybrid model: analytical structural core + characterized parasitic residual.

Section 2 of the paper argues its approach *partitions* the modeling task
rather than replacing characterization: the ADD captures the zero-delay
structural power exactly (or conservatively), while parasitic phenomena —
glitches, short-circuit currents — have a smoother statistics dependence
and are "much simpler" to characterize on top.

:class:`HybridModel` realises that partition against this package's
event-driven glitch simulator: the residual between glitch-aware power and
the structural ADD estimate is fitted with a small linear-in-activity
correction (or a constant, when ``linear_residual=False``).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import CharacterizationError
from repro.models.addmodel import AddPowerModel, build_add_model
from repro.models.base import PowerModel
from repro.netlist.netlist import Netlist
from repro.sim.glitch_sim import sequence_glitch_capacitances
from repro.sim.sequences import markov_sequence


class HybridModel(PowerModel):
    """ADD structural model plus characterized residual correction."""

    def __init__(
        self,
        structural: AddPowerModel,
        residual_intercept_fF: float,
        residual_coefficients_fF: np.ndarray,
    ):
        super().__init__(structural.macro_name, structural.input_names)
        if len(residual_coefficients_fF) != structural.num_inputs:
            raise CharacterizationError(
                "one residual coefficient per input is required"
            )
        self.structural = structural
        self.residual_intercept_fF = float(residual_intercept_fF)
        self.residual_coefficients_fF = np.asarray(
            residual_coefficients_fF, dtype=float
        )

    @classmethod
    def characterize(
        cls,
        netlist: Netlist,
        structural: Optional[AddPowerModel] = None,
        training_length: int = 300,
        linear_residual: bool = True,
        seed: int = 20211,
    ) -> "HybridModel":
        """Fit the parasitic residual on glitch-aware simulation data.

        The structural part is never fitted — it comes from the analytical
        construction.  Only the (small, smooth) difference between the
        event-driven total and the structural estimate is regressed.
        """
        if structural is None:
            structural = build_add_model(netlist)
        sequence = markov_sequence(
            netlist.num_inputs, training_length, sp=0.5, st=0.5, seed=seed
        )
        total = sequence_glitch_capacitances(netlist, sequence)
        structural_estimates = structural.sequence_capacitances(sequence)
        residual = total - structural_estimates
        if linear_residual:
            activities = (sequence[:-1] ^ sequence[1:]).astype(float)
            design = np.hstack([np.ones((len(residual), 1)), activities])
            solution, *_ = np.linalg.lstsq(design, residual, rcond=None)
            return cls(structural, solution[0], solution[1:])
        return cls(
            structural,
            float(np.mean(residual)),
            np.zeros(netlist.num_inputs),
        )

    def switching_capacitance(
        self, initial: Sequence[int], final: Sequence[int]
    ) -> float:
        """Structural estimate plus the characterized glitch correction."""
        structural = self.structural.switching_capacitance(initial, final)
        activity = np.asarray(initial, dtype=bool) ^ np.asarray(final, dtype=bool)
        residual = self.residual_intercept_fF + float(
            activity @ self.residual_coefficients_fF
        )
        return structural + residual

    def pair_capacitances(self, initial, final) -> np.ndarray:
        initial = self._check_width(initial)
        final = self._check_width(final)
        structural = self.structural.pair_capacitances(initial, final)
        activities = (initial ^ final).astype(float)
        residual = (
            self.residual_intercept_fF
            + activities @ self.residual_coefficients_fF
        )
        return structural + residual
