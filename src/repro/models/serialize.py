"""Persistence of ADD power models (JSON).

This is what makes the paper's IP argument practical: a macro vendor
builds the model once from the confidential netlist, serialises it, and
ships *only the model*.  The JSON carries the ADD graph (variables, node
triples, leaf values), the input names and ordering scheme, and the build
metadata — everything needed to evaluate, shrink or compose the model,
and nothing that reveals the gate-level implementation beyond the
aggregate switching-capacitance function itself.

The format is versioned; loaders reject unknown versions instead of
guessing.
"""

from __future__ import annotations

import json
from typing import Dict, List, TextIO

from repro.dd.manager import DDManager
from repro.dd.ordering import TransitionSpace
from repro.errors import ModelError
from repro.models.addmodel import AddPowerModel, BuildReport

FORMAT_NAME = "repro-add-power-model"
#: Version 2 added the explicit ``format_version`` field and the
#: ``source_netlist_sha256`` content hash (both required by the model
#: store's content addressing); version-1 payloads still load.
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)


def model_to_dict(model: AddPowerModel) -> dict:
    """Serialise a model to a JSON-compatible dictionary.

    Nodes are emitted in topological (parents-first) order and renumbered
    densely; leaves carry their float value, internal nodes the variable
    index plus child references.
    """
    manager = model.manager
    order: List[int] = list(manager.iter_nodes(model.root))
    index = {node: k for k, node in enumerate(order)}
    nodes = []
    for node in order:
        if manager.is_terminal(node):
            nodes.append({"leaf": manager.value(node)})
        else:
            nodes.append(
                {
                    "var": manager.top_var(node),
                    "lo": index[manager.lo(node)],
                    "hi": index[manager.hi(node)],
                }
            )
    payload = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "format_version": FORMAT_VERSION,
        "macro_name": model.macro_name,
        "strategy": model.strategy,
        "scheme": model.space.scheme,
        "space_inputs": list(model.space.input_names),
        "input_names": list(model.input_names),
        "root": index[model.root],
        "nodes": nodes,
    }
    if model.source_hash is not None:
        payload["source_netlist_sha256"] = model.source_hash
    if model.report is not None:
        report = model.report
        payload["report"] = {
            "macro_name": report.macro_name,
            "strategy": report.strategy,
            "max_nodes": report.max_nodes,
            "final_nodes": report.final_nodes,
            "peak_nodes": report.peak_nodes,
            "num_approximations": report.num_approximations,
            "cpu_seconds": report.cpu_seconds,
            "num_gates": report.num_gates,
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
        }
    return payload


def model_from_dict(payload: dict) -> AddPowerModel:
    """Reconstruct a model from :func:`model_to_dict` output."""
    if payload.get("format") != FORMAT_NAME:
        raise ModelError(
            f"not a {FORMAT_NAME} payload (format={payload.get('format')!r})"
        )
    declared = {
        payload[key]
        for key in ("format_version", "version")
        if key in payload
    }
    if not declared:
        raise ModelError("model payload carries no format version")
    unsupported = [v for v in declared if v not in SUPPORTED_VERSIONS]
    if unsupported:
        raise ModelError(
            f"unsupported model format version {unsupported[0]!r} "
            f"(this build reads versions {list(SUPPORTED_VERSIONS)})"
        )
    space = TransitionSpace(payload["space_inputs"], payload["scheme"])
    manager = space.manager
    raw_nodes = payload["nodes"]
    rebuilt: Dict[int, int] = {}

    # Resolve children before parents with an explicit stack: the
    # serialised order is DFS preorder, which is not topological for
    # shared nodes.  A bounded iteration count rejects cyclic payloads.
    stack = [int(payload["root"])]
    steps = 0
    limit = 10 * len(raw_nodes) + 16
    while stack:
        steps += 1
        if steps > limit:
            raise ModelError("malformed model payload: node graph is cyclic")
        position = stack[-1]
        if position in rebuilt:
            stack.pop()
            continue
        try:
            raw = raw_nodes[position]
        except IndexError:
            raise ModelError(
                f"malformed model payload: node reference {position} out of range"
            ) from None
        if "leaf" in raw:
            rebuilt[position] = manager.terminal(float(raw["leaf"]))
            stack.pop()
            continue
        children = [int(raw["lo"]), int(raw["hi"])]
        unresolved = [c for c in children if c not in rebuilt]
        if unresolved:
            stack.extend(unresolved)
            continue
        rebuilt[position] = manager.node(
            int(raw["var"]), rebuilt[children[0]], rebuilt[children[1]]
        )
        stack.pop()
    root = rebuilt[int(payload["root"])]

    report = None
    if "report" in payload:
        raw_report = payload["report"]
        report = BuildReport(
            macro_name=raw_report["macro_name"],
            strategy=raw_report["strategy"],
            max_nodes=raw_report["max_nodes"],
            final_nodes=raw_report["final_nodes"],
            peak_nodes=raw_report["peak_nodes"],
            num_approximations=raw_report["num_approximations"],
            cpu_seconds=raw_report["cpu_seconds"],
            num_gates=raw_report["num_gates"],
            cache_hits=raw_report.get("cache_hits", 0),
            cache_misses=raw_report.get("cache_misses", 0),
        )
    model = AddPowerModel(
        payload["macro_name"],
        space,
        root,
        payload["strategy"],
        report,
        input_names=payload["input_names"],
    )
    model.source_hash = payload.get("source_netlist_sha256")
    return model


def dump_model(model: AddPowerModel, stream: TextIO) -> None:
    """Write a model as JSON to an open text stream."""
    json.dump(model_to_dict(model), stream)


def load_model(stream: TextIO) -> AddPowerModel:
    """Read a model from an open JSON text stream."""
    return model_from_dict(json.load(stream))


def save_model(model: AddPowerModel, path: str) -> None:
    """Write a model to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        dump_model(model, handle)


def read_model(path: str) -> AddPowerModel:
    """Load a model from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return load_model(handle)
