"""Statistics-indexed look-up-table model (Gupta-Najm style, ref. [5]).

The second characterized baseline family the paper discusses: instead of a
single constant, a table of constant estimators is pre-characterized under
a grid of input conditions — here ``(sp, st)`` cells — and the estimate
for a sequence interpolates the table at the sequence's *measured*
statistics.  It repairs much of ``Con``'s out-of-sample error at the price
of a much longer characterization (one simulation per grid cell), and it
remains a black-box average model: per-pattern estimates are just the
interpolated cell value.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import CharacterizationError
from repro.models.base import PowerModel
from repro.netlist.netlist import Netlist
from repro.sim.power_sim import sequence_switching_capacitances
from repro.sim.sequences import feasible_st_range, markov_sequence, measure


class StatsLUTModel(PowerModel):
    """LUT of constant estimators indexed by ``(sp, st)``."""

    def __init__(
        self,
        macro_name: str,
        input_names: Sequence[str],
        sp_grid: np.ndarray,
        st_grid: np.ndarray,
        table_fF: np.ndarray,
    ):
        super().__init__(macro_name, input_names)
        sp_grid = np.asarray(sp_grid, dtype=float)
        st_grid = np.asarray(st_grid, dtype=float)
        table_fF = np.asarray(table_fF, dtype=float)
        if table_fF.shape != (len(sp_grid), len(st_grid)):
            raise CharacterizationError(
                f"table shape {table_fF.shape} does not match grid "
                f"({len(sp_grid)}, {len(st_grid)})"
            )
        if len(sp_grid) < 2 or len(st_grid) < 2:
            raise CharacterizationError("grids need at least two points each")
        self.sp_grid = sp_grid
        self.st_grid = st_grid
        self.table_fF = table_fF

    @classmethod
    def characterize(
        cls,
        netlist: Netlist,
        sp_grid: Sequence[float] = (0.2, 0.35, 0.5, 0.65, 0.8),
        st_grid: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5),
        sequence_length: int = 600,
        seed: int = 777,
    ) -> "StatsLUTModel":
        """Simulate one training sequence per feasible grid cell.

        Infeasible cells (``st > 2 min(sp, 1-sp)``) are filled with the
        value at the largest feasible ``st`` for that ``sp`` row.
        """
        table = np.zeros((len(sp_grid), len(st_grid)))
        for i, sp in enumerate(sp_grid):
            _, st_max = feasible_st_range(sp)
            last = 0.0
            for j, st in enumerate(st_grid):
                effective_st = min(st, st_max)
                sequence = markov_sequence(
                    netlist.num_inputs,
                    sequence_length,
                    sp=sp,
                    st=effective_st,
                    seed=seed + 31 * i + j,
                )
                value = float(
                    np.mean(sequence_switching_capacitances(netlist, sequence))
                )
                table[i, j] = value
                last = value
        return cls(netlist.name, netlist.inputs, np.asarray(sp_grid),
                   np.asarray(st_grid), table)

    def lookup(self, sp: float, st: float) -> float:
        """Bilinear interpolation of the table, clamped at the grid edges."""
        return float(_bilinear(self.sp_grid, self.st_grid, self.table_fF, sp, st))

    def switching_capacitance(
        self, initial: Sequence[int], final: Sequence[int]
    ) -> float:
        """Per-pattern estimate: the cell value at the pair's own statistics.

        A transition pair carries ``sp = mean(bits)`` and
        ``st = mean(activity)`` — coarse, but the best a statistics-indexed
        black box can do pattern by pattern.
        """
        initial = np.asarray(initial, dtype=bool)
        final = np.asarray(final, dtype=bool)
        sp = float((initial.mean() + final.mean()) / 2.0)
        st = float((initial ^ final).mean())
        return self.lookup(sp, st)

    def average_capacitance(self, sequence: np.ndarray) -> float:
        """Interpolate at the sequence's measured ``(sp, st)``."""
        stats = measure(np.asarray(sequence, dtype=bool))
        return self.lookup(stats.signal_probability, stats.transition_probability)


def _bilinear(
    xs: np.ndarray, ys: np.ndarray, table: np.ndarray, x: float, y: float
) -> float:
    x = float(np.clip(x, xs[0], xs[-1]))
    y = float(np.clip(y, ys[0], ys[-1]))
    i = int(np.clip(np.searchsorted(xs, x) - 1, 0, len(xs) - 2))
    j = int(np.clip(np.searchsorted(ys, y) - 1, 0, len(ys) - 2))
    tx = (x - xs[i]) / (xs[i + 1] - xs[i])
    ty = (y - ys[j]) / (ys[j + 1] - ys[j])
    top = table[i, j] * (1 - ty) + table[i, j + 1] * ty
    bottom = table[i + 1, j] * (1 - ty) + table[i + 1, j + 1] * ty
    return top * (1 - tx) + bottom * tx
