"""Simulation-based characterization harness.

The paper's baselines (``Con``, ``Lin``) are *characterized*: their
parameters are fitted to golden-model power samples from a training
sequence — here, as in the paper, a random sequence with 0.5 signal and
transition probabilities.  :class:`TrainingData` packages such a sample;
the model classes consume it in their ``characterize`` constructors.

The same machinery supports the paper's Section-2 remark that the
analytical model *composes* with characterization: a hybrid model (see
:class:`~repro.models.hybrid.HybridModel`) keeps the ADD for the
structural component and characterizes only the parasitic residual.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CharacterizationError
from repro.netlist.netlist import Netlist
from repro.sim.power_sim import sequence_switching_capacitances
from repro.sim.sequences import markov_sequence


@dataclass(frozen=True)
class TrainingData:
    """A characterization sample: transitions plus golden-model answers.

    Attributes
    ----------
    initial, final:
        ``(P, n)`` boolean matrices of transition endpoints.
    capacitances:
        ``(P,)`` golden-model switching capacitances in fF.
    """

    initial: np.ndarray
    final: np.ndarray
    capacitances: np.ndarray

    def __post_init__(self) -> None:
        if self.initial.shape != self.final.shape:
            raise CharacterizationError("initial/final shapes differ")
        if self.initial.ndim != 2:
            raise CharacterizationError("patterns must be (P, n) matrices")
        if len(self.capacitances) != self.initial.shape[0]:
            raise CharacterizationError(
                "one capacitance per transition required"
            )
        if self.initial.shape[0] == 0:
            raise CharacterizationError("empty training set")

    @property
    def num_samples(self) -> int:
        """Number of training transitions."""
        return self.initial.shape[0]

    @property
    def num_inputs(self) -> int:
        """Width of the training patterns."""
        return self.initial.shape[1]

    @property
    def activities(self) -> np.ndarray:
        """Per-bit transition activities ``a_j = x_i_j XOR x_f_j`` (P, n)."""
        return (self.initial ^ self.final).astype(float)

    def model_estimates(self, model) -> np.ndarray:
        """A model's predictions on this sample, via one batch call.

        ``model`` is any :class:`~repro.models.base.PowerModel`; the whole
        sample goes through :meth:`~repro.models.base.PowerModel.pair_capacitances`
        (for ADD models, the compiled array kernel) instead of a
        per-pattern Python loop.
        """
        return np.asarray(
            model.pair_capacitances(self.initial, self.final), dtype=float
        )

    def model_residuals(self, model) -> np.ndarray:
        """Golden-minus-model errors on this sample (what hybrids fit)."""
        return self.capacitances - self.model_estimates(model)


def characterization_sequence(
    netlist: Netlist,
    length: int = 2000,
    sp: float = 0.5,
    st: float = 0.5,
    seed: int = 12345,
) -> np.ndarray:
    """The paper's training stimulus: random vectors with sp = st = 0.5."""
    return markov_sequence(netlist.num_inputs, length, sp=sp, st=st, seed=seed)


def generate_training_data(
    netlist: Netlist,
    length: int = 2000,
    sp: float = 0.5,
    st: float = 0.5,
    seed: int = 12345,
) -> TrainingData:
    """Simulate the golden model on a training sequence.

    This is the (expensive, statistics-bound) step the paper's approach
    eliminates; it exists here to characterize the comparison baselines.
    """
    sequence = characterization_sequence(netlist, length, sp, st, seed)
    capacitances = sequence_switching_capacitances(netlist, sequence)
    return TrainingData(
        initial=sequence[:-1],
        final=sequence[1:],
        capacitances=np.asarray(capacitances, dtype=float),
    )
