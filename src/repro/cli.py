"""Command-line interface: ``python -m repro`` / ``repro-power``.

Subcommands
-----------
``info <circuit|file.blif>``
    Print netlist statistics (inputs, gates, depth, capacitance).
``build <circuit|file.blif>``
    Build an ADD power model and report its size, leaves and build cost.
``evaluate <circuit|file.blif>``
    Run the (sp, st) accuracy sweep against Con/Lin baselines.
``bound <circuit|file.blif>``
    Build a conservative upper-bound model and verify it on samples.
``worst-case <circuit|file.blif>``
    Extract a maximum-power input transition from the exact model.
``activity <circuit|file.blif>``
    Analytic per-net switching activity and average power.
``save-model <circuit|file.blif> <model.json>`` / ``eval-model <model.json>``
    Serialise a model to JSON; evaluate a shipped model without the netlist.
``fuzz``
    Differentially fuzz the whole pipeline against the independent oracle
    (random netlists, every implementation pair cross-checked), shrinking
    any failure to a minimal reproducer; ``--corpus`` replays a saved
    corpus instead of generating.
``stats <circuit|file.blif>`` / ``stats --input <metrics.json>``
    Exercise the build / evaluate / golden-simulation pipeline once and
    print the telemetry report (metric instruments + span profile) — or
    render a previously saved metrics snapshot (``--metrics FILE`` or
    ``cluster-stats --output FILE``) without running anything.
``serve <circuit> [<circuit> ...]``
    Start the power-query service: build (or load from a model store)
    one model per circuit and answer JSON-lines ``evaluate`` queries over
    TCP, micro-batching concurrent requests into single kernel calls.
``query <model> [<2n-bits> ...]``
    Talk to a running server: evaluate transitions, or ``--ping`` /
    ``--models`` / ``--server-stats`` / ``--slowlog`` / ``--shutdown``.
``trace-merge <trace.json|dir> [...] -o merged.json``
    Merge per-process Chrome-trace exports (written by ``--trace-dir``
    deployments) onto one wall-clock-aligned timeline, optionally
    filtered to a single distributed ``trace_id``.
``top``
    Live terminal dashboard of a running cluster: req/s, shed rate,
    per-shard p99 latency and batch occupancy, refreshed from the
    router's pushed metrics snapshots.
``store ls|gc|prefetch|sync``
    Inspect, maintain and replicate a content-addressed model store —
    a local directory or a remote ``obj://host:port`` object store.
``serve-objects`` / ``queue serve|worker|stats``
    The distributed build pipeline: an S3-style object server, the
    build-queue broker, and farm workers that claim jobs under leases
    and publish models through a shared store backend.
``list``
    Show the available Table-1 benchmark circuits.

Every subcommand accepts ``--trace FILE`` (write a Chrome trace-event
timeline, loadable in ``chrome://tracing`` / Perfetto) and
``--metrics FILE`` (write a JSON metrics snapshot); see
:mod:`repro.obs`.

Circuits are referenced by benchmark name (see ``list``), or by a path to
a ``.blif`` or ISCAS-85 ``.isc`` file.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.circuits import available_circuits, load_circuit
from repro.errors import ReproError
from repro.eval import SweepConfig, ascii_table, run_sweep
from repro.models import (
    ConstantModel,
    LinearModel,
    build_add_model,
    constant_bound_from_model,
    generate_training_data,
    verify_upper_bound,
)
from repro.netlist import Netlist, read_blif
from repro.sim import uniform_pairs


def _load(identifier: str) -> Netlist:
    if identifier.endswith(".blif"):
        return read_blif(identifier)
    if identifier.endswith(".isc"):
        from repro.netlist import read_iscas

        return read_iscas(identifier)
    return load_circuit(identifier)


def _cmd_list(_: argparse.Namespace) -> int:
    for name in available_circuits():
        print(name)
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    netlist = _load(args.circuit)
    stats = netlist.stats()
    print(f"name:        {stats.name}")
    print(f"inputs:      {stats.num_inputs}")
    print(f"outputs:     {stats.num_outputs}")
    print(f"gates:       {stats.num_gates}")
    print(f"depth:       {stats.depth}")
    print(f"total load:  {stats.total_load_capacitance_fF:.1f} fF")
    for cell, count in sorted(netlist.counts_by_cell().items()):
        print(f"  {cell:8s} x {count}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    netlist = _load(args.circuit)
    model = build_add_model(
        netlist, max_nodes=args.max_nodes, strategy=args.strategy
    )
    report = model.report
    assert report is not None
    print(f"macro:        {report.macro_name}")
    print(f"strategy:     {report.strategy}")
    print(f"MAX:          {report.max_nodes}")
    print(f"final nodes:  {report.final_nodes}")
    print(f"peak nodes:   {report.peak_nodes}")
    print(f"approx calls: {report.num_approximations}")
    print(f"build time:   {report.cpu_seconds:.2f} s")
    print(
        f"op-cache:     {report.cache_hits} hits / "
        f"{report.cache_misses} misses "
        f"(hit rate {report.cache_hit_rate:.2f})"
    )
    print(f"avg C (unif): {model.average_capacitance_uniform():.2f} fF")
    print(f"max C:        {model.global_maximum():.2f} fF")
    print(f"leaf count:   {len(model.leaf_values())}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    netlist = _load(args.circuit)
    training = generate_training_data(netlist, length=args.train_length)
    models = {
        "Con": ConstantModel.characterize(netlist, training),
        "Lin": LinearModel.characterize(netlist, training),
        "ADD": build_add_model(netlist, max_nodes=args.max_nodes),
    }
    config = SweepConfig(
        sequence_length=args.sequence_length, kernel=args.kernel
    )
    result = run_sweep(netlist, models, config)
    rows = [
        [name, 100.0 * result.are_average(name)] for name in models
    ]
    print(ascii_table(["model", "ARE avg (%)"], rows))
    return 0


def _cmd_bound(args: argparse.Namespace) -> int:
    netlist = _load(args.circuit)
    model = build_add_model(
        netlist, max_nodes=args.max_nodes, strategy="max"
    )
    constant = constant_bound_from_model(model)
    initial, final = uniform_pairs(
        netlist.num_inputs, args.samples, seed=2024
    )
    check = verify_upper_bound(model, netlist, initial, final)
    print(f"bound nodes:     {model.size}")
    print(f"global max:      {constant.value_fF:.2f} fF")
    print(f"samples checked: {check.num_samples}")
    print(f"violations:      {check.violations}")
    print(f"mean slack:      {check.mean_slack_fF:.2f} fF")
    print(f"max slack:       {check.max_slack_fF:.2f} fF")
    return 0 if check.conservative else 1


def _cmd_worst_case(args: argparse.Namespace) -> int:
    netlist = _load(args.circuit)
    model = build_add_model(netlist, max_nodes=args.max_nodes)
    initial, final, value = model.worst_case_transition()
    print(f"x_i:        {''.join(str(b) for b in initial)}")
    print(f"x_f:        {''.join(str(b) for b in final)}")
    print(f"C:          {value:.2f} fF")
    if args.max_nodes is None:
        from repro.sim import switching_capacitance

        check = switching_capacitance(netlist, initial, final)
        print(f"gate-level: {check:.2f} fF (exact model: values must match)")
    return 0


def _cmd_activity(args: argparse.Namespace) -> int:
    from repro.sim import exact_activity

    netlist = _load(args.circuit)
    report = exact_activity(netlist, sp=args.sp, st=args.st)
    print(f"inputs sp={args.sp} st={args.st}")
    print(f"average switching capacitance: "
          f"{report.average_capacitance_fF:.2f} fF/cycle")
    busiest = sorted(
        report.rising_probability.items(), key=lambda kv: -kv[1]
    )[: args.top]
    print(f"top {len(busiest)} nets by P(rising):")
    for net, probability in busiest:
        print(f"  {net:16s} {probability:.4f}")
    return 0


def _cmd_save_model(args: argparse.Namespace) -> int:
    from repro.models import save_model

    netlist = _load(args.circuit)
    model = build_add_model(
        netlist, max_nodes=args.max_nodes, strategy=args.strategy
    )
    save_model(model, args.output)
    print(f"wrote {args.output} ({model.size} nodes, strategy {model.strategy})")
    return 0


def _cmd_eval_model(args: argparse.Namespace) -> int:
    from repro.models import read_model

    model = read_model(args.model)
    print(f"macro:    {model.macro_name} ({model.num_inputs} inputs)")
    print(f"strategy: {model.strategy}  nodes: {model.size}")
    print(f"max C:    {model.global_maximum():.2f} fF")
    print(f"avg C:    {model.average_capacitance_uniform():.2f} fF (uniform)")
    if args.transition:
        bits = args.transition
        if len(bits) != 2 * model.num_inputs or set(bits) - {"0", "1"}:
            print(
                f"error: transition must be {2 * model.num_inputs} bits "
                "(x_i then x_f)",
                file=sys.stderr,
            )
            return 2
        initial = [int(b) for b in bits[: model.num_inputs]]
        final = [int(b) for b in bits[model.num_inputs:]]
        print(f"C(x_i, x_f) = "
              f"{model.switching_capacitance(initial, final):.2f} fF")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.testing import (
        FuzzConfig,
        replay_corpus,
        resolve_checks,
        run_fuzz,
        save_case,
    )
    from repro.testing.corpus import default_note, unique_path

    checks = tuple(args.checks.split(",")) if args.checks else None
    resolve_checks(checks)  # fail fast on typos

    if args.corpus is not None and not args.generate:
        failures = replay_corpus(args.corpus, checks)
        total = len(list(Path(args.corpus).glob("*.json")))
        if failures:
            for path, mismatch in failures:
                print(f"FAIL {path}: {mismatch}", file=sys.stderr)
                for key, value in mismatch.witness.items():
                    print(f"      {key} = {value}", file=sys.stderr)
            print(f"{len(failures)} failure(s) in {total} corpus case(s)")
            return 1
        print(f"corpus OK: {total} case(s) replayed, no mismatches")
        return 0

    config = FuzzConfig(
        seed=args.seed,
        iterations=args.iterations,
        time_budget_seconds=args.time_budget,
        max_inputs=args.max_inputs,
        max_gates=args.max_gates,
        checks=checks,
        shrink=not args.no_shrink,
        max_failures=args.max_failures,
    )
    report = run_fuzz(config)
    print(report.summary())
    for failure in report.failures:
        print(
            f"FAIL iteration {failure.iteration} (case seed "
            f"{failure.seed:#010x}): {failure.mismatch}",
            file=sys.stderr,
        )
        for key, value in failure.mismatch.witness.items():
            print(f"      {key} = {value}", file=sys.stderr)
        netlist = failure.case.netlist
        print(
            f"      shrunk to {netlist.num_inputs} inputs / "
            f"{netlist.num_gates} gates (from {failure.original_gates})",
            file=sys.stderr,
        )
        if args.save_failures is not None:
            path = unique_path(
                args.save_failures,
                f"{failure.mismatch.check}-{failure.seed:08x}",
            )
            save_case(
                failure.case,
                path,
                note=default_note(failure.case, failure.mismatch.check),
            )
            print(f"      reproducer written to {path}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.obs import enable_tracing, disable_tracing, get_metrics, get_tracer
    from repro.obs.report import format_metrics, format_report
    from repro.sim import pair_switching_capacitances, uniform_pairs

    if args.input is not None:
        import json

        with open(args.input, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("format") != "repro-metrics":
            print(
                f"error: {args.input} is not a repro-metrics snapshot "
                f"(format={payload.get('format')!r})",
                file=sys.stderr,
            )
            return 2
        title = f"saved metrics snapshot: {args.input}"
        print(title)
        print("=" * len(title))
        print(format_metrics(payload.get("metrics", {})))
        return 0
    if args.circuit is None:
        print(
            "error: provide a circuit, or --input METRICS.json to render "
            "a saved snapshot",
            file=sys.stderr,
        )
        return 2
    netlist = _load(args.circuit)
    registry = get_metrics()
    registry.detailed = True
    installed_tracer = not get_tracer().enabled
    if installed_tracer:
        enable_tracing()
    try:
        # One representative pass through every pipeline layer, so the
        # report covers dd.*, add.build.*, compiled.eval.* and sim.*.
        model = build_add_model(
            netlist, max_nodes=args.max_nodes, strategy=args.strategy
        )
        initial, final = uniform_pairs(
            netlist.num_inputs, args.pairs, seed=2024
        )
        estimates = model.pair_capacitances(initial, final)
        golden = pair_switching_capacitances(netlist, initial, final)
        rollup = get_tracer().aggregate()
        report = model.report
        assert report is not None
        print(report.summary())
        print(
            f"checked {len(estimates)} transitions against the golden "
            f"model: max |ADD - gate-level| = "
            f"{float(np.max(np.abs(estimates - golden))):.4g} fF"
        )
        print()
        print(
            format_report(
                registry.snapshot(),
                rollup,
                title=f"telemetry: {netlist.name}",
            )
        )
    finally:
        if installed_tracer and not getattr(args, "trace", None):
            disable_tracing()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ModelStore, PowerQueryServer, ServerConfig, open_backend

    netlists = [_load(identifier) for identifier in args.circuits]
    names = [netlist.name for netlist in netlists]
    if len(set(names)) != len(names):
        print("error: served circuits must have distinct names", file=sys.stderr)
        return 2
    build_kwargs = {"max_nodes": args.max_nodes, "strategy": args.strategy}
    if args.store is not None:
        store = ModelStore(open_backend(args.store))
        models = store.get_or_build_many(netlists, **build_kwargs)
    else:
        from repro.models import build_add_models_parallel

        models = build_add_models_parallel(netlists, **build_kwargs)
    server_config = ServerConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        request_timeout_s=args.request_timeout,
        batching=not args.no_batching,
        max_connections=args.max_connections,
        max_parked_rows=args.max_parked_rows,
        kernel=args.kernel,
        fused=args.fused,
        slowlog_threshold_ms=args.slowlog_threshold_ms,
        slowlog_rate=args.slowlog_rate,
        slowlog_capacity=args.slowlog_capacity,
        trace_dir=args.trace_dir,
    )
    if args.trace_dir is not None:
        # Collect spans in this process too (single server: the request
        # path; cluster: the router) so a trace file is written at stop.
        from repro.obs import enable_tracing

        enable_tracing()

    if args.workers > 1:
        from repro.serve import Cluster, ClusterConfig

        cluster = Cluster(
            dict(zip(names, models)),
            ClusterConfig(
                host=args.host,
                router_port=args.port,
                workers=args.workers,
                replication=args.replication,
                restart_failed=args.restart_failed,
                metrics_push_interval_s=args.push_interval,
                prometheus_port=args.prometheus_port,
                server=server_config,
            ),
        ).start()
        shards = ", ".join(
            f"{shard}:{cluster.shard_port(shard)}"
            for shard in cluster.shard_ids
        )
        prometheus = (
            f", prometheus on :{cluster.prometheus_port}"
            if cluster.prometheus_port is not None
            else ""
        )
        print(
            f"cluster of {args.workers} shards serving {len(models)} "
            f"model(s) [{', '.join(sorted(names))}] — router on "
            f"{cluster.host}:{cluster.router_port}, shards [{shards}], "
            f"replication={args.replication}{prometheus}",
            flush=True,
        )
        try:
            cluster.wait()
        except KeyboardInterrupt:
            pass
        finally:
            # Also runs after a protocol-initiated shutdown op: stop()
            # is idempotent, and it is what writes the router's trace
            # file (and the workers' files on ctrl-C).
            cluster.stop()
        return 0

    server = PowerQueryServer(dict(zip(names, models)), server_config)

    async def _run() -> None:
        await server.start()
        mode = (
            f"micro-batching (max_batch={args.max_batch}, "
            f"max_wait={args.max_wait_ms}ms)"
            if not args.no_batching
            else "unbatched"
        )
        print(
            f"serving {len(models)} model(s) "
            f"[{', '.join(sorted(server.models))}] on "
            f"{server.config.host}:{server.port} — {mode}",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    from repro.serve import PowerQueryClient, ResponseError

    client = PowerQueryClient(args.host, args.port, timeout=args.timeout)
    try:
        if args.ping:
            print("pong" if client.ping() else "no response")
            return 0
        if args.models:
            for summary in client.models():
                print(
                    f"{summary['name']:16s} inputs={summary['inputs']:3d} "
                    f"nodes={summary['nodes']:6d} strategy={summary['strategy']}"
                )
            return 0
        if args.server_stats:
            print(json.dumps(client.stats(), indent=1, sort_keys=True))
            return 0
        if args.slowlog:
            report = client.slowlog()
            entries = report.get("entries", [])
            print(
                f"slow-query log: threshold={report.get('threshold_ms')}ms "
                f"rate={report.get('rate')} "
                f"capacity={report.get('capacity')} "
                f"sampled_out={report.get('sampled_out')}"
            )
            for entry in entries:
                print(json.dumps(entry, sort_keys=True))
            if not entries:
                print("(empty)")
            return 0
        if args.shutdown:
            client.shutdown()
            print("server stopping")
            return 0
        if args.model is None or not args.transitions:
            print(
                "error: provide MODEL and at least one 2n-bit transition "
                "(or --ping/--models/--server-stats/--shutdown)",
                file=sys.stderr,
            )
            return 2
        summaries = {s["name"]: s for s in client.models()}
        summary = summaries.get(args.model)
        if summary is None:
            print(
                f"error: server holds no model {args.model!r} "
                f"(available: {sorted(summaries)})",
                file=sys.stderr,
            )
            return 2
        width = summary["inputs"]
        pairs = []
        for bits in args.transitions:
            if len(bits) != 2 * width or set(bits) - {"0", "1"}:
                print(
                    f"error: transition must be {2 * width} bits "
                    "(x_i then x_f)",
                    file=sys.stderr,
                )
                return 2
            pairs.append((bits[:width], bits[width:]))
        for (initial, final), value in zip(
            pairs, client.evaluate_pairs(args.model, pairs)
        ):
            print(f"C({initial} -> {final}) = {value:.2f} fF")
        return 0
    except ResponseError as exc:
        print(f"error: server replied {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()


def _cmd_cluster_stats(args: argparse.Namespace) -> int:
    import json

    from repro.serve import ClusterClient, ResponseError

    client = ClusterClient(args.host, args.port, timeout=args.timeout)
    try:
        if args.output is not None:
            stats = client.cluster_stats()
            payload = {
                "format": "repro-metrics",
                "version": 1,
                "source": f"cluster {args.host}:{args.port}",
                "metrics": stats.get("metrics", {}),
                "router_metrics": stats.get("router_metrics", {}),
                "shards": stats.get("shards", {}),
            }
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=1, default=str)
                handle.write("\n")
            print(
                f"wrote {args.output} "
                f"({len(payload['metrics'])} merged instruments, "
                f"{len(payload['shards'])} shards) — render it with "
                f"'repro-power stats --input {args.output}'"
            )
            return 0
        if args.json:
            print(json.dumps(client.cluster_stats(), indent=1, sort_keys=True))
            return 0
        health = client.healthz()
        stats = client.cluster_stats()
        print(
            f"cluster {args.host}:{args.port} — status {health['status']}, "
            f"ring v{health['ring_version']}"
        )
        for shard, info in sorted(stats["shards"].items()):
            if not info.get("reachable"):
                print(f"  {shard:4s} port={info['port']:5d}  UNREACHABLE")
                continue
            p99 = info.get("latency_p99_ms")
            print(
                f"  {shard:4s} port={info['port']:5d}  "
                f"requests={info['requests']:8.0f}  "
                f"p99={p99:7.2f}ms  "
                f"up={info['uptime_seconds']:7.1f}s  "
                f"models={len(info['models'])}"
                if p99 is not None
                else f"  {shard:4s} port={info['port']:5d}  "
                f"requests={info['requests']:8.0f}  "
                f"p99=     --  "
                f"up={info['uptime_seconds']:7.1f}s  "
                f"models={len(info['models'])}"
            )
        merged = stats["metrics"]
        for name in sorted(merged):
            state = merged[name]
            if state["type"] == "counter" and state["value"]:
                print(f"  {name:40s} {state['value']:12.0f}")
        for name, state in sorted(stats["router_metrics"].items()):
            if state["value"]:
                print(f"  {name:40s} {state['value']:12.0f}")
        return 0
    except ResponseError as exc:
        print(f"error: router replied {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()


def _cmd_trace_merge(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs import merge_chrome_traces

    paths: List[Path] = []
    for item in args.inputs:
        path = Path(item)
        if path.is_dir():
            paths.extend(sorted(path.glob("trace-*.json")))
        elif path.exists():
            paths.append(path)
        else:
            print(f"error: no such trace file {item}", file=sys.stderr)
            return 2
    if not paths:
        print("error: no trace files found", file=sys.stderr)
        return 2
    payloads = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payloads.append(json.load(handle))
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
    merged = merge_chrome_traces(payloads, trace_id=args.trace_id)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=1, default=str)
        handle.write("\n")
    events = merged["traceEvents"]
    pids = merged["metadata"]["pids"]
    trace_ids = {
        (event.get("args") or {}).get("trace_id")
        for event in events
        if (event.get("args") or {}).get("trace_id")
    }
    scope = (
        f"trace {args.trace_id}" if args.trace_id
        else f"{len(trace_ids)} distinct trace id(s)"
    )
    print(
        f"merged {len(paths)} file(s) -> {args.output}: "
        f"{len(events)} events from {len(pids)} process(es), {scope}"
    )
    return 0


def format_top(
    stats: dict,
    health: dict,
    previous_stats: Optional[dict] = None,
    dt: Optional[float] = None,
) -> str:
    """One frame of the ``repro-power top`` dashboard (pure, testable).

    Rates (req/s, shed/s) need a ``previous_stats`` report and the
    ``dt`` seconds between the two samples; the first frame shows
    totals only.
    """
    merged = stats.get("metrics", {})

    def counter(snapshot: dict, name: str) -> float:
        return snapshot.get(name, {}).get("value", 0)

    def rate(name: str) -> Optional[float]:
        if previous_stats is None or not dt or dt <= 0:
            return None
        delta = counter(merged, name) - counter(
            previous_stats.get("metrics", {}), name
        )
        return max(0.0, delta / dt)

    total = counter(merged, "serve.requests")
    shed = counter(merged, "serve.shed.requests") + counter(
        merged, "serve.shed.connections"
    )
    rps = rate("serve.requests")
    shed_rate = rate("serve.shed.requests")
    batch = merged.get("serve.batch.rows", {})
    occupancy = (
        batch["sum"] / batch["count"] if batch.get("count") else None
    )
    router = stats.get("router_metrics", {})

    def router_value(name: str) -> Optional[float]:
        series = router.get(name)
        return None if series is None else series.get("value")

    queue_depth = router_value("queue.depth")
    active_leases = router_value("queue.leases.active")
    breakers_open = router_value("serve.breaker.open_count")
    lines = [
        f"cluster status={health.get('status', '?')} "
        f"ring=v{stats.get('ring_version', '?')} "
        f"shards={len(stats.get('shards', {}))} routed",
        "requests={:.0f}  req/s={}  shed={:.0f}  shed/s={}  "
        "batch-occupancy={}".format(
            total,
            f"{rps:.1f}" if rps is not None else "--",
            shed,
            f"{shed_rate:.1f}" if shed_rate is not None else "--",
            f"{occupancy:.1f} rows" if occupancy is not None else "--",
        ),
        "queue-depth={}  active-leases={}  breakers-open={}".format(
            f"{queue_depth:.0f}" if queue_depth is not None else "--",
            f"{active_leases:.0f}" if active_leases is not None else "--",
            f"{breakers_open:.0f}" if breakers_open is not None else "--",
        ),
        "",
        f"{'shard':6s} {'state':8s} {'port':>6s} {'requests':>10s} "
        f"{'p99 ms':>8s} {'uptime s':>9s}",
    ]
    shard_health = health.get("shards", {})
    for shard_id, info in sorted(stats.get("shards", {}).items()):
        port = info.get("port", 0)
        if not info.get("reachable"):
            alive = shard_health.get(shard_id, {}).get("alive")
            state = "no-push" if alive else "DOWN"
            lines.append(
                f"{shard_id:6s} {state:8s} {port:>6d} "
                f"{'-':>10s} {'-':>8s} {'-':>9s}"
            )
            continue
        p99 = info.get("latency_p99_ms")
        lines.append(
            f"{shard_id:6s} {'up':8s} {port:>6d} "
            f"{info.get('requests', 0):>10.0f} "
            + (f"{p99:>8.2f}" if p99 is not None else f"{'-':>8s}")
            + f" {info.get('uptime_seconds', 0.0):>9.1f}"
        )
    for shard_id, info in sorted(shard_health.items()):
        # Shards the router knows about but no longer routes (killed,
        # drained): keep them visible so a failure is impossible to miss.
        if shard_id in stats.get("shards", {}):
            continue
        state = "unrouted" if info.get("alive") else "DOWN"
        lines.append(
            f"{shard_id:6s} {state:8s} {info.get('port', 0):>6d} "
            f"{'-':>10s} {'-':>8s} {'-':>9s}"
        )
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    from repro.serve import ClusterClient, ResponseError

    client = ClusterClient(args.host, args.port, timeout=args.timeout)
    previous: Optional[tuple] = None
    frames = 0
    try:
        while True:
            stats = client.cluster_stats()
            health = client.healthz()
            now = _time.monotonic()
            if previous is None:
                frame = format_top(stats, health)
            else:
                frame = format_top(
                    stats, health, previous[1], now - previous[0]
                )
            if not args.no_clear:
                print("\x1b[2J\x1b[H", end="")
            print(frame, flush=True)
            previous = (now, stats)
            frames += 1
            if args.iterations and frames >= args.iterations:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except ResponseError as exc:
        print(f"error: router replied {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.serve import ModelStore, open_backend, sync_stores

    store = ModelStore(open_backend(args.store))
    if args.action == "ls":
        entries = store.ls()
        if not entries:
            print("store is empty")
            return 0
        print(
            f"{'key':16s} {'macro':12s} {'strategy':8s} {'MAX':>6s} "
            f"{'nodes':>7s} {'bytes':>9s}"
        )
        for entry in entries:
            max_nodes = "-" if entry.max_nodes is None else str(entry.max_nodes)
            print(
                f"{entry.key[:16]:16s} {entry.macro_name:12s} "
                f"{entry.strategy:8s} {max_nodes:>6s} "
                f"{entry.nodes:7d} {entry.payload_bytes:9d}"
            )
        print(f"total: {len(entries)} entries, {store.disk_bytes()} bytes")
        return 0
    if args.action == "gc":
        max_age = (
            args.max_age_days * 86400.0 if args.max_age_days is not None else None
        )
        removed = store.gc(max_bytes=args.max_bytes, max_age_seconds=max_age)
        for entry in removed:
            print(f"removed {entry.key[:16]} ({entry.macro_name}, "
                  f"{entry.payload_bytes} bytes)")
        print(f"gc: removed {len(removed)} entries, "
              f"{store.disk_bytes()} bytes remain")
        return 0
    if args.action == "sync":
        if args.dest is None:
            print("error: sync needs --dest", file=sys.stderr)
            return 2
        report = sync_stores(store.backend, open_backend(args.dest))
        for line in report.errors:
            print(f"error: {line}", file=sys.stderr)
        print(report.summary())
        return 0 if report.ok else 1
    # prefetch
    if not args.circuits:
        print("error: prefetch needs at least one circuit", file=sys.stderr)
        return 2
    netlists = [_load(identifier) for identifier in args.circuits]
    report = store.prefetch(
        netlists,
        max_nodes=args.max_nodes,
        strategy=args.strategy,
        queue=args.queue,
    )
    for netlist, key in zip(netlists, report.keys):
        print(f"{netlist.name:12s} -> {key[:16]}")
    print(report.summary())
    return 0


def _cmd_serve_objects(args: argparse.Namespace) -> int:
    """Run the S3-style object server until interrupted."""
    import asyncio

    from repro.serve import ObjectStoreConfig, ObjectStoreServer

    server = ObjectStoreServer(
        ObjectStoreConfig(host=args.host, port=args.port, root=args.root)
    )

    async def _run() -> None:
        await server.start()
        where = args.root or "memory"
        print(
            f"object store listening on obj://{args.host}:{server.port} "
            f"(objects in {where})",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_queue(args: argparse.Namespace) -> int:
    """Build-queue service: serve / worker / stats."""
    from repro.obs import get_metrics
    from repro.serve import BuildQueueClient, QueueConfig, run_worker
    from repro.serve.queue import BuildQueueServer

    if args.action == "serve":
        import asyncio

        server = BuildQueueServer(
            QueueConfig(
                host=args.host,
                port=args.port,
                lease_s=args.lease_s,
                max_attempts=args.max_attempts,
                wal_dir=args.wal_dir,
                wal_fsync=args.wal_fsync,
                wal_compact_every=args.wal_compact_every,
            )
        )

        async def _run() -> None:
            await server.start()
            durability = (
                f"WAL {args.wal_dir}"
                + ("" if args.wal_fsync else " [no fsync]")
                if args.wal_dir
                else "in-memory"
            )
            print(
                f"build queue listening on {args.host}:{server.port} "
                f"(lease {args.lease_s:g}s, {args.max_attempts} attempts, "
                f"{durability})",
                flush=True,
            )
            recovered = get_metrics().counter("queue.recovery.jobs").value
            if recovered:
                print(
                    f"recovered {recovered:g} jobs from the journal",
                    flush=True,
                )
            await server.serve_forever()

        try:
            asyncio.run(_run())
        except KeyboardInterrupt:
            pass
        return 0
    if args.queue is None:
        print(f"error: {args.action} needs --queue host:port", file=sys.stderr)
        return 2
    host, _, port = args.queue.rpartition(":")
    if not host or not port.isdigit():
        print(f"error: malformed --queue {args.queue!r}", file=sys.stderr)
        return 2
    if args.action == "worker":
        if args.store is None:
            print("error: worker needs --store", file=sys.stderr)
            return 2
        worker_id = args.id or f"worker-{os.getpid()}"
        print(
            f"worker {worker_id} building from {args.queue} "
            f"into {args.store}",
            flush=True,
        )
        try:
            run_worker(host, int(port), args.store, worker_id)
        except KeyboardInterrupt:
            pass
        return 0
    # stats
    import json as _json

    with BuildQueueClient(host, int(port)) as client:
        print(_json.dumps(client.stats(), indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-power",
        description="Characterization-free RTL power modeling (DATE 1998 reproduction)",
    )
    # Global observability flags, attached to every subcommand (argparse
    # only applies them after the subcommand token when defined through a
    # parent parser, hence not on the root parser).
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a Chrome trace-event timeline of this run",
    )
    obs_flags.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="write a JSON metrics snapshot of this run",
    )

    sub = parser.add_subparsers(dest="command", required=True)

    def add_command(name: str, **kwargs) -> argparse.ArgumentParser:
        return sub.add_parser(name, parents=[obs_flags], **kwargs)

    add_command("list", help="list benchmark circuits").set_defaults(
        func=_cmd_list
    )

    info = add_command("info", help="print netlist statistics")
    info.add_argument("circuit", help="benchmark name or BLIF path")
    info.set_defaults(func=_cmd_info)

    build = add_command("build", help="build an ADD power model")
    build.add_argument("circuit", help="benchmark name or BLIF path")
    build.add_argument("--max-nodes", type=int, default=1000)
    build.add_argument(
        "--strategy", choices=("avg", "max", "min"), default="avg"
    )
    build.set_defaults(func=_cmd_build)

    evaluate = add_command(
        "evaluate", help="accuracy sweep vs Con/Lin baselines"
    )
    evaluate.add_argument("circuit", help="benchmark name or BLIF path")
    evaluate.add_argument("--max-nodes", type=int, default=1000)
    evaluate.add_argument("--sequence-length", type=int, default=1500)
    evaluate.add_argument("--train-length", type=int, default=1500)
    evaluate.add_argument(
        "--kernel",
        default=None,
        help="force an evaluation backend for the sweep "
        "(pointer, levelized, bitparallel, codegen)",
    )
    evaluate.set_defaults(func=_cmd_evaluate)

    bound = add_command("bound", help="build and verify an upper bound")
    bound.add_argument("circuit", help="benchmark name or BLIF path")
    bound.add_argument("--max-nodes", type=int, default=1000)
    bound.add_argument("--samples", type=int, default=500)
    bound.set_defaults(func=_cmd_bound)

    worst = add_command(
        "worst-case", help="extract a maximum-power transition"
    )
    worst.add_argument("circuit", help="benchmark name or netlist path")
    worst.add_argument("--max-nodes", type=int, default=None)
    worst.set_defaults(func=_cmd_worst_case)

    activity = add_command(
        "activity", help="analytic switching activity per net"
    )
    activity.add_argument("circuit", help="benchmark name or netlist path")
    activity.add_argument("--sp", type=float, default=0.5)
    activity.add_argument("--st", type=float, default=0.5)
    activity.add_argument("--top", type=int, default=10)
    activity.set_defaults(func=_cmd_activity)

    save = add_command("save-model", help="serialise a model to JSON")
    save.add_argument("circuit", help="benchmark name or netlist path")
    save.add_argument("output", help="output JSON path")
    save.add_argument("--max-nodes", type=int, default=1000)
    save.add_argument(
        "--strategy", choices=("avg", "max", "min"), default="avg"
    )
    save.set_defaults(func=_cmd_save_model)

    evaluate_model = add_command(
        "eval-model", help="inspect / evaluate a shipped model JSON"
    )
    evaluate_model.add_argument("model", help="model JSON path")
    evaluate_model.add_argument(
        "--transition",
        help="2n bits: x_i concatenated with x_f",
        default=None,
    )
    evaluate_model.set_defaults(func=_cmd_eval_model)

    fuzz = add_command(
        "fuzz", help="differentially fuzz the pipeline against the oracle"
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--iterations", type=int, default=200)
    fuzz.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop early after this much wall-clock time",
    )
    fuzz.add_argument("--max-inputs", type=int, default=7)
    fuzz.add_argument("--max-gates", type=int, default=28)
    fuzz.add_argument(
        "--checks",
        default=None,
        help="comma-separated check names (default: all)",
    )
    fuzz.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="replay this corpus directory instead of generating",
    )
    fuzz.add_argument(
        "--generate",
        action="store_true",
        help="with --corpus pointing at --save-failures: still generate",
    )
    fuzz.add_argument(
        "--save-failures",
        default=None,
        metavar="DIR",
        help="write shrunk reproducers into this directory",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true", help="report raw failures unshrunk"
    )
    fuzz.add_argument(
        "--max-failures",
        type=int,
        default=5,
        help="stop after this many failures (0 = no limit)",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    stats = add_command(
        "stats", help="run the pipeline once and print its telemetry"
    )
    stats.add_argument(
        "circuit", nargs="?", default=None,
        help="benchmark name or BLIF path",
    )
    stats.add_argument(
        "--input",
        default=None,
        metavar="FILE",
        help="render a saved metrics snapshot instead of running "
        "(from --metrics or cluster-stats --output)",
    )
    stats.add_argument("--max-nodes", type=int, default=1000)
    stats.add_argument(
        "--strategy", choices=("avg", "max", "min"), default="avg"
    )
    stats.add_argument(
        "--pairs",
        type=int,
        default=256,
        help="transition pairs for the compiled-eval / golden-sim pass",
    )
    stats.set_defaults(func=_cmd_stats)

    serve = add_command(
        "serve", help="serve power queries over JSON-lines TCP"
    )
    serve.add_argument(
        "circuits", nargs="+", help="benchmark names or netlist paths to serve"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7090, help="0 picks an ephemeral port"
    )
    serve.add_argument("--max-nodes", type=int, default=1000)
    serve.add_argument(
        "--strategy", choices=("avg", "max", "min"), default="avg"
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="content-addressed model store to load/build through",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=256,
        help="flush a model's queue at this many rows",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="flush after the oldest request waited this long",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="per-request deadline in seconds",
    )
    serve.add_argument(
        "--no-batching",
        action="store_true",
        help="evaluate each request inline (baseline mode)",
    )
    serve.add_argument(
        "--max-connections",
        type=int,
        default=None,
        help="shed connections beyond this many concurrent clients",
    )
    serve.add_argument(
        "--max-parked-rows",
        type=int,
        default=None,
        help="shed evaluate requests once this many rows are queued",
    )
    serve.add_argument(
        "--kernel",
        default="auto",
        help="evaluation backend to pin the served models to "
        "(auto, pointer, levelized, bitparallel, codegen)",
    )
    serve.add_argument(
        "--fused",
        action="store_true",
        help="fuse codegen-eligible models into one shared kernel and "
        "drain all batchers per flush",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard worker processes; >1 starts a consistent-hash "
        "cluster with a control-plane router on --port",
    )
    serve.add_argument(
        "--replication",
        type=int,
        default=2,
        help="distinct shards each model is routed across (cluster mode)",
    )
    serve.add_argument(
        "--restart-failed",
        action="store_true",
        help="respawn a replacement shard when a worker dies (cluster mode)",
    )
    serve.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="write per-process Chrome-trace exports here at shutdown "
        "(assemble with trace-merge)",
    )
    serve.add_argument(
        "--slowlog-threshold-ms",
        type=float,
        default=100.0,
        help="record requests slower than this in the slow-query log",
    )
    serve.add_argument(
        "--slowlog-rate",
        type=float,
        default=1.0,
        help="sampling probability for slow-query log entries (0..1)",
    )
    serve.add_argument(
        "--slowlog-capacity",
        type=int,
        default=128,
        help="slow-query log ring-buffer size",
    )
    serve.add_argument(
        "--prometheus-port",
        type=int,
        default=None,
        help="cluster mode: serve Prometheus text metrics on this port "
        "(0 picks an ephemeral one)",
    )
    serve.add_argument(
        "--push-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="cluster mode: how often shards push metrics snapshots "
        "to the router",
    )
    serve.set_defaults(func=_cmd_serve)

    query = add_command("query", help="query a running power server")
    query.add_argument("model", nargs="?", default=None)
    query.add_argument(
        "transitions",
        nargs="*",
        help="2n bits each: x_i concatenated with x_f",
    )
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=7090)
    query.add_argument("--timeout", type=float, default=30.0)
    query.add_argument("--ping", action="store_true", help="liveness check")
    query.add_argument(
        "--models", action="store_true", help="list served models"
    )
    query.add_argument(
        "--server-stats",
        action="store_true",
        help="print the server's telemetry snapshot as JSON",
    )
    query.add_argument(
        "--slowlog",
        action="store_true",
        help="print the server's sampled slow-query log",
    )
    query.add_argument(
        "--shutdown", action="store_true", help="stop the server gracefully"
    )
    query.set_defaults(func=_cmd_query)

    cluster_stats = add_command(
        "cluster-stats",
        help="aggregated health + metrics of a sharded serving cluster",
    )
    cluster_stats.add_argument("--host", default="127.0.0.1")
    cluster_stats.add_argument(
        "--port", type=int, default=7090, help="the cluster router port"
    )
    cluster_stats.add_argument("--timeout", type=float, default=30.0)
    cluster_stats.add_argument(
        "--json",
        action="store_true",
        help="print the full aggregated report as JSON",
    )
    cluster_stats.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the merged metrics as a repro-metrics snapshot "
        "(render later with 'stats --input')",
    )
    cluster_stats.set_defaults(func=_cmd_cluster_stats)

    trace_merge = add_command(
        "trace-merge",
        help="merge per-process Chrome traces onto one timeline",
    )
    trace_merge.add_argument(
        "inputs",
        nargs="+",
        help="trace-*.json files and/or directories holding them",
    )
    trace_merge.add_argument(
        "-o",
        "--output",
        default="merged_trace.json",
        help="merged Chrome-trace output path",
    )
    trace_merge.add_argument(
        "--trace-id",
        default=None,
        help="keep only events of this distributed trace id",
    )
    trace_merge.set_defaults(func=_cmd_trace_merge)

    top = add_command(
        "top", help="live dashboard of a running serving cluster"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument(
        "--port", type=int, default=7090, help="the cluster router port"
    )
    top.add_argument("--timeout", type=float, default=30.0)
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="refresh period",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="stop after this many frames (0 = run until interrupted)",
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen (for logs/CI)",
    )
    top.set_defaults(func=_cmd_top)

    store = add_command(
        "store", help="inspect / maintain a model store directory"
    )
    store.add_argument("action", choices=("ls", "gc", "prefetch", "sync"))
    store.add_argument(
        "circuits", nargs="*", help="circuits to prefetch (prefetch only)"
    )
    store.add_argument(
        "--store",
        required=True,
        metavar="SPEC",
        help="model store: a directory or obj://host:port",
    )
    store.add_argument(
        "--dest",
        default=None,
        metavar="SPEC",
        help="sync: destination store (directory or obj://host:port)",
    )
    store.add_argument(
        "--queue",
        default=None,
        metavar="HOST:PORT",
        help="prefetch: route builds through a build-queue service",
    )
    store.add_argument("--max-nodes", type=int, default=1000)
    store.add_argument(
        "--strategy", choices=("avg", "max", "min"), default="avg"
    )
    store.add_argument(
        "--max-bytes", type=int, default=None, help="gc: keep at most this many bytes"
    )
    store.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="gc: drop entries not accessed within this window",
    )
    store.set_defaults(func=_cmd_store)

    serve_objects = add_command(
        "serve-objects", help="run the S3-style object-store server"
    )
    serve_objects.add_argument("--host", default="127.0.0.1")
    serve_objects.add_argument("--port", type=int, default=0)
    serve_objects.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="persist objects under this directory (default: in memory)",
    )
    serve_objects.set_defaults(func=_cmd_serve_objects)

    queue = add_command(
        "queue", help="distributed build queue: serve / worker / stats"
    )
    queue.add_argument("action", choices=("serve", "worker", "stats"))
    queue.add_argument("--host", default="127.0.0.1", help="serve: bind host")
    queue.add_argument("--port", type=int, default=0, help="serve: bind port")
    queue.add_argument(
        "--lease-s", type=float, default=10.0, help="serve: job lease seconds"
    )
    queue.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="serve: claims a job may burn before failing",
    )
    queue.add_argument(
        "--wal-dir",
        default=None,
        metavar="DIR",
        help="serve: journal state here and recover it after a crash",
    )
    queue.add_argument(
        "--no-wal-fsync",
        dest="wal_fsync",
        action="store_false",
        default=True,
        help="serve: skip fsync per journal append (faster, less durable)",
    )
    queue.add_argument(
        "--wal-compact-every",
        type=int,
        default=256,
        metavar="N",
        help="serve: fold the journal into a snapshot every N records",
    )
    queue.add_argument(
        "--queue",
        default=None,
        metavar="HOST:PORT",
        help="worker/stats: queue server to talk to",
    )
    queue.add_argument(
        "--store",
        default=None,
        metavar="SPEC",
        help="worker: store backend to publish into",
    )
    queue.add_argument(
        "--id", default=None, help="worker: stable worker identity"
    )
    queue.set_defaults(func=_cmd_queue)
    return parser


def _setup_observability(args: argparse.Namespace):
    """Honour the global ``--trace`` / ``--metrics`` flags before dispatch."""
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if trace_path is None and metrics_path is None:
        return None

    from repro.obs import enable_detailed_metrics, enable_tracing, get_metrics

    registry = get_metrics()
    registry.reset()  # report this invocation, not import-time leftovers
    enable_detailed_metrics(True)
    tracer = enable_tracing() if trace_path is not None else None
    return tracer


def _write_observability(args: argparse.Namespace, tracer) -> None:
    """Export trace / metrics files after the subcommand ran."""
    import json

    from repro.obs import disable_tracing, enable_detailed_metrics, get_metrics

    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if tracer is not None and trace_path is not None:
        tracer.write_chrome(trace_path)
        disable_tracing()
    if metrics_path is not None:
        payload = {
            "format": "repro-metrics",
            "version": 1,
            "metrics": get_metrics().snapshot(),
        }
        with open(metrics_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, default=str)
            handle.write("\n")
    enable_detailed_metrics(False)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    observing = (
        getattr(args, "trace", None) is not None
        or getattr(args, "metrics", None) is not None
    )
    tracer = _setup_observability(args)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if observing:
            _write_observability(args, tracer)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
