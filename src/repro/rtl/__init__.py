"""RTL-level composition of macro power models (combinational and registered)."""

from repro.rtl.design import MacroInstance, RTLDesign
from repro.rtl.sequential import Register, SequentialDesign

__all__ = ["RTLDesign", "MacroInstance", "SequentialDesign", "Register"]
