"""RTL designs: networks of macro instances with composed power models.

Section 1.2 of the paper argues the practical payoff of pattern-dependent
bounds: for an RTL design containing many macro instances, summing each
instance's *pattern-dependent* bound for the patterns it actually sees is
conservative yet far tighter than summing the per-macro global worst
cases, where "no compensation occurs" and error grows with the number of
components.

:class:`RTLDesign` wires macro instances (each backed by a gate-level
netlist and any number of per-instance power models) into one
combinational design, simulates it functionally, and composes estimates
and bounds across instances cycle by cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.serve.store import ModelStore

from repro.errors import ModelError, NetlistError
from repro.models.base import PowerModel
from repro.netlist.netlist import Netlist
from repro.sim.logic_sim import simulate
from repro.sim.power_sim import sequence_switching_capacitances


@dataclass
class MacroInstance:
    """One instantiation of a macro netlist inside a design.

    ``connections`` maps each macro input name to a design-level signal:
    either a design primary input or ``"instance.output"`` of another
    instance.
    """

    name: str
    netlist: Netlist
    connections: Dict[str, str]

    def __post_init__(self) -> None:
        missing = [p for p in self.netlist.inputs if p not in self.connections]
        if missing:
            raise NetlistError(
                f"instance {self.name}: unconnected inputs {missing[:5]}"
            )


class RTLDesign:
    """A DAG of macro instances evaluated at the RT level."""

    def __init__(self, name: str, primary_inputs: Sequence[str]):
        self.name = name
        self.primary_inputs = list(primary_inputs)
        if len(set(self.primary_inputs)) != len(self.primary_inputs):
            raise NetlistError("duplicate design input names")
        self.instances: List[MacroInstance] = []
        self._instance_by_name: Dict[str, MacroInstance] = {}
        self.models: Dict[str, PowerModel] = {}

    def add_instance(
        self,
        name: str,
        netlist: Netlist,
        connections: Mapping[str, str],
        model: Optional[PowerModel] = None,
    ) -> MacroInstance:
        """Instantiate a macro; optionally attach its power model."""
        if name in self._instance_by_name:
            raise NetlistError(f"duplicate instance name {name!r}")
        instance = MacroInstance(name, netlist, dict(connections))
        for signal in instance.connections.values():
            self._check_signal(signal, up_to=len(self.instances))
        self.instances.append(instance)
        self._instance_by_name[name] = instance
        if model is not None:
            self.attach_model(name, model)
        return instance

    def build_and_attach_add_models(
        self,
        processes: Optional[int] = None,
        store: Optional["ModelStore"] = None,
        **build_kwargs,
    ) -> Dict[str, PowerModel]:
        """Build ADD models for every instance concurrently and attach them.

        ``build_kwargs`` go to :func:`~repro.models.addmodel.build_add_model`
        (``max_nodes``, ``strategy``, ...).  Instances sharing one macro
        netlist object are built once and share the resulting model.
        Construction fans out across processes via
        :func:`~repro.models.addmodel.build_add_models_parallel`; returns
        the attached models keyed by instance name.

        Passing a :class:`~repro.serve.store.ModelStore` routes every
        build through its content-addressed cache: macros already cached
        (from any prior process) load instead of rebuilding, and fresh
        builds are persisted for the next design that uses the macro.
        """
        from repro.models.addmodel import build_add_models_parallel

        if not self.instances:
            raise ModelError("design has no instances")
        # Deduplicate by netlist identity: a datapath of N identical
        # macros needs one build, not N.
        unique: List[Netlist] = []
        job_of: Dict[int, int] = {}
        for instance in self.instances:
            key = id(instance.netlist)
            if key not in job_of:
                job_of[key] = len(unique)
                unique.append(instance.netlist)
        if store is not None:
            models = store.get_or_build_many(
                unique, processes=processes, **build_kwargs
            )
        else:
            models = build_add_models_parallel(
                unique, processes=processes, **build_kwargs
            )
        attached: Dict[str, PowerModel] = {}
        for instance in self.instances:
            model = models[job_of[id(instance.netlist)]]
            self.attach_model(instance.name, model)
            attached[instance.name] = model
        return attached

    def attach_model(self, instance_name: str, model: PowerModel) -> None:
        """Attach (or replace) the power model of one instance."""
        instance = self._instance_by_name.get(instance_name)
        if instance is None:
            raise ModelError(f"no instance named {instance_name!r}")
        if model.num_inputs != instance.netlist.num_inputs:
            raise ModelError(
                f"model for {instance_name!r} expects {model.num_inputs} "
                f"inputs, macro has {instance.netlist.num_inputs}"
            )
        self.models[instance_name] = model

    def _check_signal(self, signal: str, up_to: int) -> None:
        if signal in self.primary_inputs:
            return
        if "." in signal:
            instance_name, output = signal.split(".", 1)
            for instance in self.instances[:up_to]:
                if instance.name == instance_name:
                    if output not in instance.netlist.outputs:
                        raise NetlistError(
                            f"instance {instance_name!r} has no output {output!r}"
                        )
                    return
            raise NetlistError(
                f"signal {signal!r} references an instance defined later "
                "or not at all (instances must be added in topological order)"
            )
        raise NetlistError(f"unknown design signal {signal!r}")

    # ------------------------------------------------------------------
    # Functional simulation
    # ------------------------------------------------------------------
    def simulate_signals(
        self, sequence: np.ndarray
    ) -> Dict[str, np.ndarray]:
        """Waveforms of all design signals for a primary-input sequence.

        Returns design inputs by name and macro outputs as
        ``"instance.output"``.
        """
        sequence = np.atleast_2d(np.asarray(sequence, dtype=bool))
        if sequence.shape[1] != len(self.primary_inputs):
            raise ModelError(
                f"sequence width {sequence.shape[1]} != "
                f"{len(self.primary_inputs)} design inputs"
            )
        signals: Dict[str, np.ndarray] = {
            name: sequence[:, k] for k, name in enumerate(self.primary_inputs)
        }
        for instance in self.instances:
            macro_inputs = np.stack(
                [
                    signals[instance.connections[port]]
                    for port in instance.netlist.inputs
                ],
                axis=1,
            )
            result = simulate(instance.netlist, macro_inputs)
            for output in instance.netlist.outputs:
                signals[f"{instance.name}.{output}"] = result.values[output]
        return signals

    def instance_input_sequences(
        self, sequence: np.ndarray
    ) -> Dict[str, np.ndarray]:
        """Per-instance input sequences induced by a design-level sequence."""
        signals = self.simulate_signals(sequence)
        result = {}
        for instance in self.instances:
            result[instance.name] = np.stack(
                [
                    signals[instance.connections[port]]
                    for port in instance.netlist.inputs
                ],
                axis=1,
            )
        return result

    # ------------------------------------------------------------------
    # Power composition
    # ------------------------------------------------------------------
    def golden_capacitances(self, sequence: np.ndarray) -> np.ndarray:
        """Gate-level reference: per-cycle total C over all instances."""
        per_instance = self.instance_input_sequences(sequence)
        total = None
        for instance in self.instances:
            caps = sequence_switching_capacitances(
                instance.netlist, per_instance[instance.name]
            )
            total = caps if total is None else total + caps
        if total is None:
            raise ModelError("design has no instances")
        return total

    def estimated_capacitances(self, sequence: np.ndarray) -> np.ndarray:
        """Composed model estimate: per-cycle sum of per-instance estimates.

        Every instance must have a model attached.  If all models are
        ``max``-strategy bounds, the result is a conservative per-cycle
        upper bound for the whole design (Section 1.2).
        """
        missing = [
            i.name for i in self.instances if i.name not in self.models
        ]
        if missing:
            raise ModelError(f"instances without models: {missing[:5]}")
        per_instance = self.instance_input_sequences(sequence)
        total = None
        for instance in self.instances:
            caps = self.models[instance.name].sequence_capacitances(
                per_instance[instance.name]
            )
            total = caps if total is None else total + caps
        assert total is not None
        return total

    def constant_worst_case(self) -> float:
        """Loose classical bound: sum of per-instance global maxima.

        Requires every attached model to expose ``global_maximum`` (ADD
        bound models do).
        """
        total = 0.0
        for instance in self.instances:
            model = self.models.get(instance.name)
            if model is None:
                raise ModelError(f"instance {instance.name!r} has no model")
            maximum = getattr(model, "global_maximum", None)
            if maximum is None:
                raise ModelError(
                    f"model of {instance.name!r} cannot report a global maximum"
                )
            total += maximum()
        return total
