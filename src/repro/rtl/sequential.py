"""Sequential RTL designs: macros separated by registers.

The paper models combinational macros; in a real RTL design those macros
sit between register banks, and each macro's input transition per clock
cycle is *defined* by the registers feeding it.  This module extends
:class:`~repro.rtl.design.RTLDesign` with registered signals so composed
power estimation (and conservative bounding) works on pipelined designs:
the transition a macro sees in cycle ``t`` runs from the register state
after cycle ``t-1`` to the state after cycle ``t``.

Register power itself (clock tree, flip-flop internals) is outside the
golden model, matching the paper's macro-centric scope; registered
signals carry a configurable load that is charged on every rising edge
of the stored value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ModelError, NetlistError
from repro.models.base import PowerModel
from repro.netlist.netlist import Netlist
from repro.sim.logic_sim import simulate
from repro.sim.power_sim import sequence_switching_capacitances


@dataclass
class Register:
    """A one-bit register: stores ``source`` and exposes it next cycle."""

    name: str
    source: str
    initial_value: int = 0
    load_fF: float = 0.0


class SequentialDesign:
    """Macros plus registers, evaluated cycle by cycle.

    Signals available for connection:

    - design primary inputs,
    - ``"instance.output"`` macro outputs (combinational, same cycle),
    - register names (the value captured at the *end of the previous
      cycle*).

    Instances must be added in combinational topological order; register
    sources may reference any signal (that is what breaks the cycles).
    """

    def __init__(self, name: str, primary_inputs: Sequence[str]):
        self.name = name
        self.primary_inputs = list(primary_inputs)
        if len(set(self.primary_inputs)) != len(self.primary_inputs):
            raise NetlistError("duplicate design input names")
        self.instances: List = []
        self._instance_by_name: Dict[str, object] = {}
        self.registers: List[Register] = []
        self._register_by_name: Dict[str, Register] = {}
        self.models: Dict[str, PowerModel] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_register(
        self,
        name: str,
        source: str,
        initial_value: int = 0,
        load_fF: float = 0.0,
    ) -> Register:
        """Declare a register; its ``source`` is validated lazily (it may
        reference instances added later — that is the point of state)."""
        if name in self._register_by_name or name in self.primary_inputs:
            raise NetlistError(f"signal name {name!r} already in use")
        register = Register(name, source, int(bool(initial_value)), load_fF)
        self.registers.append(register)
        self._register_by_name[name] = register
        return register

    def add_instance(
        self,
        name: str,
        netlist: Netlist,
        connections: Mapping[str, str],
        model: Optional[PowerModel] = None,
    ):
        """Instantiate a macro fed by inputs, registers or earlier macros."""
        from repro.rtl.design import MacroInstance

        if name in self._instance_by_name:
            raise NetlistError(f"duplicate instance name {name!r}")
        instance = MacroInstance(name, netlist, dict(connections))
        for signal in instance.connections.values():
            self._check_combinational_signal(signal)
        self.instances.append(instance)
        self._instance_by_name[name] = instance
        if model is not None:
            self.attach_model(name, model)
        return instance

    def attach_model(self, instance_name: str, model: PowerModel) -> None:
        """Attach (or replace) the power model of one instance."""
        instance = self._instance_by_name.get(instance_name)
        if instance is None:
            raise ModelError(f"no instance named {instance_name!r}")
        if model.num_inputs != instance.netlist.num_inputs:
            raise ModelError(
                f"model for {instance_name!r} expects {model.num_inputs} "
                f"inputs, macro has {instance.netlist.num_inputs}"
            )
        self.models[instance_name] = model

    def _check_combinational_signal(self, signal: str) -> None:
        if signal in self.primary_inputs or signal in self._register_by_name:
            return
        if "." in signal:
            instance_name, output = signal.split(".", 1)
            instance = self._instance_by_name.get(instance_name)
            if instance is None:
                raise NetlistError(
                    f"signal {signal!r}: instance not defined yet "
                    "(add instances in topological order)"
                )
            if output not in instance.netlist.outputs:
                raise NetlistError(
                    f"instance {instance_name!r} has no output {output!r}"
                )
            return
        raise NetlistError(f"unknown design signal {signal!r}")

    def _validate_register_sources(self) -> None:
        for register in self.registers:
            self._check_combinational_signal(register.source)

    # ------------------------------------------------------------------
    # Cycle-accurate simulation
    # ------------------------------------------------------------------
    def simulate(self, sequence: np.ndarray) -> Dict[str, np.ndarray]:
        """Waveforms of every signal over a primary-input sequence.

        ``sequence`` has one row per clock cycle.  Register signals carry
        the value visible *during* each cycle (i.e. captured at the end
        of the previous one).
        """
        self._validate_register_sources()
        sequence = np.atleast_2d(np.asarray(sequence, dtype=bool))
        if sequence.shape[1] != len(self.primary_inputs):
            raise ModelError(
                f"sequence width {sequence.shape[1]} != "
                f"{len(self.primary_inputs)} design inputs"
            )
        cycles = sequence.shape[0]
        signals: Dict[str, np.ndarray] = {
            name: sequence[:, k] for k, name in enumerate(self.primary_inputs)
        }
        for register in self.registers:
            signals[register.name] = np.empty(cycles, dtype=bool)

        state = {
            r.name: bool(r.initial_value) for r in self.registers
        }
        # Row-by-row evaluation: macro outputs depend on the current
        # register state, register next-state on macro outputs.
        row_values: Dict[str, np.ndarray] = {}
        for t in range(cycles):
            current: Dict[str, bool] = {
                name: bool(sequence[t, k])
                for k, name in enumerate(self.primary_inputs)
            }
            for register in self.registers:
                current[register.name] = state[register.name]
                signals[register.name][t] = state[register.name]
            for instance in self.instances:
                pattern = [
                    int(current[instance.connections[port]])
                    for port in instance.netlist.inputs
                ]
                outputs = instance.netlist.evaluate_outputs(pattern)
                for net, value in outputs.items():
                    current[f"{instance.name}.{net}"] = bool(value)
            for register in self.registers:
                state[register.name] = current[register.source]
            for key, value in current.items():
                if key not in signals:
                    signals[key] = np.empty(cycles, dtype=bool)
                signals[key][t] = value
        return signals

    def instance_input_sequences(
        self, sequence: np.ndarray
    ) -> Dict[str, np.ndarray]:
        """Per-instance input waveforms induced by a design sequence."""
        signals = self.simulate(sequence)
        result = {}
        for instance in self.instances:
            result[instance.name] = np.stack(
                [
                    signals[instance.connections[port]]
                    for port in instance.netlist.inputs
                ],
                axis=1,
            )
        return result

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def register_capacitances(self, sequence: np.ndarray) -> np.ndarray:
        """Per-cycle capacitance charged by rising register outputs."""
        signals = self.simulate(sequence)
        cycles = np.atleast_2d(sequence).shape[0]
        totals = np.zeros(max(cycles - 1, 0))
        for register in self.registers:
            wave = signals[register.name]
            rising = ~wave[:-1] & wave[1:]
            totals += rising * register.load_fF
        return totals

    def golden_capacitances(self, sequence: np.ndarray) -> np.ndarray:
        """Gate-level per-cycle switching capacitance of all macros."""
        per_instance = self.instance_input_sequences(sequence)
        total = None
        for instance in self.instances:
            caps = sequence_switching_capacitances(
                instance.netlist, per_instance[instance.name]
            )
            total = caps if total is None else total + caps
        if total is None:
            raise ModelError("design has no instances")
        return total + self.register_capacitances(sequence)

    def estimated_capacitances(self, sequence: np.ndarray) -> np.ndarray:
        """Composed per-cycle model estimate (plus exact register part)."""
        missing = [
            i.name for i in self.instances if i.name not in self.models
        ]
        if missing:
            raise ModelError(f"instances without models: {missing[:5]}")
        per_instance = self.instance_input_sequences(sequence)
        total = None
        for instance in self.instances:
            caps = self.models[instance.name].sequence_capacitances(
                per_instance[instance.name]
            )
            total = caps if total is None else total + caps
        assert total is not None
        return total + self.register_capacitances(sequence)
