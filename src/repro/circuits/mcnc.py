"""The Table-1 benchmark suite (MCNC substitutes).

Maps every circuit name of the paper's Table 1 to a generated functional
equivalent with the *same primary-input count* and a comparable flavour
(ALU / mux / comparator / decoder / parity / random control logic).  The
original MCNC'91 netlists are not redistributable, so gate counts differ;
DESIGN.md §4 explains why the measured shapes are preserved.

:data:`PAPER_TABLE1` stores the numbers printed in the paper so the
benchmark harness can put "paper" and "measured" columns side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.circuits.generators import (
    address_match_block,
    alu,
    comparator,
    decoder,
    multiplexer,
    parity,
    parity_check_enable,
)
from repro.circuits.random_logic import random_logic
from repro.errors import NetlistError
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table 1 (reference values, % errors).

    ``avg_max_nodes`` / ``ub_max_nodes`` are the MAX size budgets the
    paper used for the average and upper-bound models; ``None`` fields
    were not reported.
    """

    name: str
    num_inputs: int
    num_gates: int
    are_con_percent: float
    are_lin_percent: float
    are_add_percent: float
    avg_max_nodes: int
    avg_cpu_seconds: float
    ub_are_con_percent: float
    ub_are_add_percent: float
    ub_max_nodes: int
    ub_cpu_seconds: Optional[float]


#: Reference values transcribed from Table 1 of the paper.
PAPER_TABLE1: Dict[str, PaperRow] = {
    row.name: row
    for row in [
        PaperRow("alu2", 10, 252, 464.8, 135.7, 4.8, 1000, 496, 154.0, 21.0, 5000, 2766),
        PaperRow("alu4", 14, 460, 465.1, 242.5, 7.8, 2000, 5087, 201.0, 59.2, 15000, 6470),
        PaperRow("cmb", 16, 34, 585.7, 88.9, 10.7, 200, 12, 237.1, 47.0, 1000, 9),
        PaperRow("cm150", 21, 46, 647.3, 270.4, 12.2, 1000, 664, 193.0, 47.6, 2000, 30),
        PaperRow("cm85", 11, 31, 518.7, 195.2, 5.7, 500, 9, 167.8, 30.9, 500, 5.6),
        PaperRow("comp", 32, 93, 460.9, 193.8, 15.0, 5000, 1614, 211.6, 54.9, 10000, 596),
        PaperRow("decod", 5, 23, 812.6, 80.2, 3.2, 200, 5, 156.1, 4.6, 200, 2),
        PaperRow("k2", 45, 1206, 622.5, 78.5, 14.3, 10000, 7511, 188.6, 2.1, 10000, 4375),
        PaperRow("mux", 21, 61, 596.8, 161.1, 18.7, 1000, 571, 167.9, 43.9, 5000, 92),
        PaperRow("parity", 16, 36, 316.5, 219.0, 6.8, 3000, 98.4, 177.3, 37.9, 500, 70),
        PaperRow("pcle", 19, 45, 591.0, 248.6, 8.0, 5000, 281, 186.1, 40.9, 10000, 10143),
        PaperRow("x1", 49, 228, 682.8, 200.7, 12.3, 1000, 9505, 318.9, 56.7, 50000, 22),
        PaperRow("x2", 10, 40, 738.4, 204.9, 8.9, 200, 15, 138.7, 10.3, 2500, None),
    ]
}


_GENERATORS: Dict[str, Callable[[], Netlist]] = {
    # alu2/alu4: four-function ALUs, 2*w + 2 inputs.
    "alu2": lambda: alu(4, name="alu2"),
    "alu4": lambda: alu(6, name="alu4"),
    # cmb: wide address match with gating; 13 + 3 = 16 inputs.
    "cmb": lambda: address_match_block(13, 3, name="cmb"),
    # cm150: 16:1 multiplexer with enable (21 inputs), AND-OR form.
    "cm150": lambda: multiplexer(4, enable=True, style="gates", name="cm150"),
    # cm85: cascadable 5-bit comparator (11 inputs).
    "cm85": lambda: comparator(5, carry_in=True, name="cm85"),
    # comp: 16-bit comparator (32 inputs).
    "comp": lambda: comparator(16, name="comp"),
    # decod: 4-to-16 decoder with enable (5 inputs).
    "decod": lambda: decoder(4, enable=True, name="decod"),
    # k2: large random control logic (45 inputs).  Cone/window settings
    # give MCNC-like compressibility (see DESIGN.md §4).
    "k2": lambda: random_logic(
        "k2", 45, 1206, seed=9245, cone_limit=12, window=16
    ),
    # mux: 16:1 multiplexer with enable (21 inputs), MUX-tree form.
    "mux": lambda: multiplexer(4, enable=True, style="mux", name="mux"),
    # parity: 16-input parity tree.
    "parity": lambda: parity(16, name="parity"),
    # pcle: enabled data path with parity (2*9 + 1 = 19 inputs).
    "pcle": lambda: parity_check_enable(9, name="pcle"),
    # x1 / x2: random control logic of the reported arity.
    "x1": lambda: random_logic(
        "x1", 49, 228, seed=9149, cone_limit=10, window=12
    ),
    "x2": lambda: random_logic(
        "x2", 10, 40, seed=9110, cone_limit=8, window=10
    ),
}


#: Node budgets (avg model, upper-bound model) used by the benchmark
#: harness for *our* substituted netlists.  The paper's MAX column was
#: tuned for the original MCNC gate lists ("size comparable with that of
#: the functional description"); these follow the same rule against the
#: generated circuits' exact ADD sizes.
SUGGESTED_MAX_NODES: Dict[str, tuple] = {
    "alu2": (2000, 2000),   # exact ADD ~ 38k nodes -> ~5% kept
    "alu4": (4000, 4000),   # exact ~ 269k -> ~1.5% kept
    "cmb": (800, 800),      # exact ~ 3.2k
    "cm150": (500, 500),    # exact ~ 0.8k
    "cm85": (1000, 1000),   # exact ~ 2.2k
    "comp": (4000, 4000),   # exact ~ 28k
    "decod": (200, 200),    # exact 87 (fits exactly)
    "k2": (4000, 4000),     # exact beyond pure-Python reach
    "mux": (2000, 2000),    # exact ~ 35k
    "parity": (1200, 1200), # exact ~ 3.7k
    "pcle": (1500, 1500),   # exact ~ 6.4k
    "x1": (1500, 1500),     # exact ~ 5.1k
    "x2": (400, 400),       # exact ~ 0.6k
}


def available_circuits() -> List[str]:
    """Names of all Table-1 benchmark circuits, in the paper's order."""
    return list(PAPER_TABLE1)


def load_circuit(name: str) -> Netlist:
    """Instantiate one benchmark circuit by its Table-1 name."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise NetlistError(
            f"unknown benchmark {name!r}; available: {available_circuits()}"
        ) from None
    netlist = generator()
    expected = PAPER_TABLE1[name].num_inputs
    if netlist.num_inputs != expected:
        raise NetlistError(
            f"generator for {name} produced {netlist.num_inputs} inputs, "
            f"paper has {expected}"
        )
    return netlist


def load_suite(names: List[str] | None = None) -> Dict[str, Netlist]:
    """Instantiate several benchmarks (default: the whole Table-1 suite)."""
    return {
        name: load_circuit(name)
        for name in (names if names is not None else available_circuits())
    }
