"""Benchmark circuits: functional MCNC substitutes and generators."""

from repro.circuits.generators import (
    address_match_block,
    alu,
    array_multiplier,
    comparator,
    decoder,
    multiplexer,
    parity,
    parity_check_enable,
    ripple_adder,
)
from repro.circuits.mcnc import (
    PAPER_TABLE1,
    PaperRow,
    available_circuits,
    load_circuit,
    load_suite,
)
from repro.circuits.random_logic import random_logic

__all__ = [
    "multiplexer",
    "parity",
    "decoder",
    "comparator",
    "ripple_adder",
    "alu",
    "array_multiplier",
    "address_match_block",
    "parity_check_enable",
    "random_logic",
    "PAPER_TABLE1",
    "PaperRow",
    "available_circuits",
    "load_circuit",
    "load_suite",
]
