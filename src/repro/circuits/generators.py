"""Parameterised functional circuit generators.

These produce the mapped gate-level netlists the experiments run on:
multiplexers, parity trees, decoders, comparators, adders, ALUs and array
multipliers.  The MCNC suite is not redistributable here, so
:mod:`repro.circuits.mcnc` instantiates these generators (plus seeded
random logic) with the same input counts as the paper's Table 1 circuits —
see DESIGN.md §4 for the substitution rationale.

All generators return a validated :class:`~repro.netlist.netlist.Netlist`
built on :data:`~repro.netlist.library.TEST_LIBRARY`.
"""

from __future__ import annotations

from typing import List, Literal, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.netlist import Netlist
from repro.netlist.synth import NetlistBuilder


def multiplexer(
    select_bits: int,
    enable: bool = False,
    style: Literal["mux", "gates"] = "mux",
    name: str | None = None,
) -> Netlist:
    """``2**select_bits``:1 multiplexer.

    ``style='mux'`` builds a tree of MUX2 cells (the natural mapping);
    ``style='gates'`` builds the AND-OR decoded form — same function,
    different structure and hence different power profile, which is
    useful for structure-sensitivity experiments.
    """
    if select_bits < 1:
        raise NetlistError("select_bits must be >= 1")
    data_count = 2 ** select_bits
    builder = NetlistBuilder(name or f"mux{data_count}")
    data = builder.bus("d", data_count)
    select = builder.bus("s", select_bits)
    enable_net = builder.input("en") if enable else None

    if style == "mux":
        layer = data
        # Select bit 0 is the least significant: it picks within pairs.
        for bit in range(select_bits):
            layer = [
                builder.mux(select[bit], layer[i], layer[i + 1])
                for i in range(0, len(layer), 2)
            ]
        result = layer[0]
    elif style == "gates":
        inverted = [builder.inv(s) for s in select]
        terms = []
        for index in range(data_count):
            literals = [
                select[bit] if (index >> bit) & 1 else inverted[bit]
                for bit in range(select_bits)
            ]
            minterm = builder.and_tree(literals)
            terms.append(builder.and2(minterm, data[index]))
        result = builder.or_tree(terms)
    else:
        raise NetlistError(f"unknown multiplexer style {style!r}")

    if enable_net is not None:
        result = builder.and2(result, enable_net)
    builder.output("y", result)
    return builder.build()


def parity(width: int, name: str | None = None) -> Netlist:
    """``width``-input parity (XOR) tree."""
    if width < 2:
        raise NetlistError("parity needs at least 2 inputs")
    builder = NetlistBuilder(name or f"parity{width}")
    bits = builder.bus("x", width)
    builder.output("p", builder.xor_tree(bits))
    return builder.build()


def decoder(
    address_bits: int, enable: bool = True, name: str | None = None
) -> Netlist:
    """``address_bits``-to-``2**address_bits`` line decoder with predecode.

    With ``enable=True`` the enable input gates every output (the decod
    benchmark's 5-input shape for 4 address bits).
    """
    if address_bits < 2:
        raise NetlistError("address_bits must be >= 2")
    builder = NetlistBuilder(name or f"decod{address_bits}")
    address = builder.bus("a", address_bits)
    enable_net = builder.input("en") if enable else None
    inverted = [builder.inv(a) for a in address]

    # Predecode pairs of address bits into 1-hot groups of four.
    groups: List[List[str]] = []
    bit = 0
    while bit < address_bits:
        if bit + 1 < address_bits:
            lo, hi = address[bit], address[bit + 1]
            lo_n, hi_n = inverted[bit], inverted[bit + 1]
            groups.append(
                [
                    builder.and2(hi_n, lo_n),
                    builder.and2(hi_n, lo),
                    builder.and2(hi, lo_n),
                    builder.and2(hi, lo),
                ]
            )
            bit += 2
        else:
            groups.append([inverted[bit], address[bit]])
            bit += 1
    if enable_net is not None:
        groups[-1] = [builder.and2(net, enable_net) for net in groups[-1]]

    lines = groups[0]
    for group in groups[1:]:
        lines = [builder.and2(low, high) for high in group for low in lines]
    for index, line in enumerate(lines):
        builder.output(f"y{index}", line)
    return builder.build()


def comparator(
    width: int,
    carry_in: bool = False,
    name: str | None = None,
) -> Netlist:
    """Magnitude comparator of two ``width``-bit operands.

    Outputs ``gt``, ``eq``, ``lt`` (a > b, a == b, a < b).  With
    ``carry_in`` an extra ``gin`` input seeds the greater-than chain, so
    comparators can be cascaded (this gives the odd input count of the
    cm85-style circuit: ``2 * width + 1``).
    """
    if width < 1:
        raise NetlistError("width must be >= 1")
    builder = NetlistBuilder(name or f"comp{width}")
    a = builder.bus("a", width)
    b = builder.bus("b", width)
    gin = builder.input("gin") if carry_in else None

    # MSB-first ripple: gt picks up the first position where a > b while
    # all higher positions are equal.
    eq_chain: str | None = None
    gt_chain: str | None = None
    for i in range(width - 1, -1, -1):
        bit_eq = builder.xnor2(a[i], b[i])
        bit_gt = builder.and2(a[i], builder.inv(b[i]))
        if eq_chain is None:
            eq_chain = bit_eq
            gt_chain = bit_gt
        else:
            gt_chain = builder.or2(gt_chain, builder.and2(eq_chain, bit_gt))
            eq_chain = builder.and2(eq_chain, bit_eq)
    assert eq_chain is not None and gt_chain is not None
    if gin is not None:
        gt_chain = builder.or2(gt_chain, builder.and2(eq_chain, gin))
        eq_chain = builder.and2(eq_chain, builder.inv(gin))
    lt = builder.nor2(gt_chain, eq_chain)
    builder.output("gt", gt_chain)
    builder.output("eq", eq_chain)
    builder.output("lt", lt)
    return builder.build()


def _full_adder(
    builder: NetlistBuilder, a: str, b: str, carry: str
) -> Tuple[str, str]:
    """Full adder from two half adders; returns (sum, carry_out)."""
    partial = builder.xor2(a, b)
    total = builder.xor2(partial, carry)
    carry_out = builder.or2(
        builder.and2(a, b), builder.and2(partial, carry)
    )
    return total, carry_out


def ripple_adder(
    width: int, carry_in: bool = True, name: str | None = None
) -> Netlist:
    """Ripple-carry adder: ``a + b (+ cin)`` with sum and carry-out."""
    if width < 1:
        raise NetlistError("width must be >= 1")
    builder = NetlistBuilder(name or f"add{width}")
    a = builder.bus("a", width)
    b = builder.bus("b", width)
    carry = builder.input("cin") if carry_in else builder.const(False)
    for i in range(width):
        total, carry = _full_adder(builder, a[i], b[i], carry)
        builder.output(f"s{i}", total)
    builder.output("cout", carry)
    return builder.build()


def alu(
    width: int,
    name: str | None = None,
) -> Netlist:
    """Four-function ALU: ADD, AND, OR, XOR selected by ``op1 op0``.

    Inputs: two ``width``-bit operands plus two control bits —
    ``2 * width + 2`` primary inputs, matching the alu2 (width 4) and
    alu4 (width 6) rows of Table 1.
    """
    if width < 1:
        raise NetlistError("width must be >= 1")
    builder = NetlistBuilder(name or f"alu{width}")
    a = builder.bus("a", width)
    b = builder.bus("b", width)
    op0 = builder.input("op0")
    op1 = builder.input("op1")

    carry = builder.const(False)
    sums: List[str] = []
    for i in range(width):
        total, carry = _full_adder(builder, a[i], b[i], carry)
        sums.append(total)
    for i in range(width):
        and_i = builder.and2(a[i], b[i])
        or_i = builder.or2(a[i], b[i])
        xor_i = builder.xor2(a[i], b[i])
        # op1 op0: 00 -> add, 01 -> and, 10 -> or, 11 -> xor
        low = builder.mux(op0, sums[i], and_i)
        high = builder.mux(op0, or_i, xor_i)
        builder.output(f"y{i}", builder.mux(op1, low, high))
    # Carry out is only meaningful for ADD; gate it with the op decode.
    is_add = builder.nor2(op0, op1)
    builder.output("cout", builder.and2(carry, is_add))
    return builder.build()


def array_multiplier(width: int, name: str | None = None) -> Netlist:
    """Unsigned array multiplier (``width x width -> 2*width`` bits).

    The C6288-style structure the paper cites as the hard case for
    ADD-based models: small widths already produce deep reconvergence.
    """
    if width < 2:
        raise NetlistError("width must be >= 2")
    builder = NetlistBuilder(name or f"mult{width}")
    a = builder.bus("a", width)
    b = builder.bus("b", width)
    # Partial products.
    partial = [[builder.and2(a[i], b[j]) for i in range(width)] for j in range(width)]
    # Row-by-row carry-save style accumulation with ripple rows.
    sums = list(partial[0])
    builder.output("p0", sums[0])
    for j in range(1, width):
        row = partial[j]
        carry = builder.const(False)
        next_sums: List[str] = []
        for i in range(width):
            high = sums[i + 1] if i + 1 < len(sums) else builder.const(False)
            total, carry = _full_adder_3(builder, row[i], high, carry)
            next_sums.append(total)
        next_sums.append(carry)
        builder.output(f"p{j}", next_sums[0])
        sums = next_sums
    for k in range(1, len(sums)):
        builder.output(f"p{width - 1 + k}", sums[k])
    return builder.build()


def _full_adder_3(
    builder: NetlistBuilder, a: str, b: str, c: str
) -> Tuple[str, str]:
    return _full_adder(builder, a, b, c)


def address_match_block(
    address_bits: int, enable_bits: int, name: str | None = None
) -> Netlist:
    """Wide address comparator with gating — the cmb-style shape.

    Matches an ``address_bits``-wide input against the all-ones pattern,
    gated by the conjunction of ``enable_bits`` enables; also exposes the
    raw match and an address-nibble parity.
    """
    if address_bits < 4 or enable_bits < 1:
        raise NetlistError("need address_bits >= 4 and enable_bits >= 1")
    builder = NetlistBuilder(name or "cmb_like")
    address = builder.bus("addr", address_bits)
    enables = builder.bus("en", enable_bits)
    match = builder.and_tree(address)
    gate = builder.and_tree(enables) if enable_bits > 1 else enables[0]
    builder.output("match", match)
    builder.output("valid", builder.and2(match, gate))
    builder.output("par", builder.xor_tree(address[:4]))
    builder.output("any_hi", builder.or_tree(address[: address_bits // 2]))
    return builder.build()


def parity_check_enable(
    data_bits: int, name: str | None = None
) -> Netlist:
    """Per-bit enabled data path with global parity — the pcle-style shape.

    Inputs: ``data_bits`` data, ``data_bits`` enables and one control bit
    (``2 * data_bits + 1`` total).  Outputs the gated data bits and the
    control-inverted parity of the gated word.
    """
    if data_bits < 2:
        raise NetlistError("data_bits must be >= 2")
    builder = NetlistBuilder(name or "pcle_like")
    data = builder.bus("d", data_bits)
    enables = builder.bus("e", data_bits)
    control = builder.input("ctl")
    gated = [builder.and2(d, e) for d, e in zip(data, enables)]
    for i, net in enumerate(gated):
        builder.output(f"q{i}", net)
    builder.output("par", builder.xor2(builder.xor_tree(gated), control))
    return builder.build()
