"""Seeded random-logic circuits with bounded input cones.

Stands in for the irregular MCNC control-logic benchmarks (k2, x1, x2,
pcle, cmb) that cannot be redistributed.  The generator draws gates with
operands biased toward recently created nets (locality, which creates the
reconvergent fanout that makes power pattern-dependent) while rejecting
operand choices whose combined *input cone* would exceed ``cone_limit``
primary inputs.  The cone bound keeps every node function's BDD over at
most ``cone_limit`` variables — the knob that makes pure-Python symbolic
construction of 1000-gate circuits tractable without changing the
phenomena under study (see DESIGN.md §4).
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.errors import NetlistError
from repro.netlist.gates import GateOp
from repro.netlist.netlist import Netlist
from repro.netlist.synth import NetlistBuilder

#: Relative frequency of each gate type.  XOR-rich logic blows BDDs up;
#: real control logic is AND/OR dominated, which this mix mirrors.
_GATE_WEIGHTS = [
    (GateOp.AND, 22),
    (GateOp.OR, 22),
    (GateOp.NAND, 18),
    (GateOp.NOR, 14),
    (GateOp.XOR, 8),
    (GateOp.INV, 16),
]


def random_logic(
    name: str,
    num_inputs: int,
    num_gates: int,
    seed: int,
    window: int = 24,
    cone_limit: int = 18,
    long_range_probability: float = 0.08,
    max_outputs: int = 40,
) -> Netlist:
    """Generate a reproducible random combinational circuit.

    Parameters
    ----------
    name, num_inputs, num_gates, seed:
        Identity of the circuit; identical arguments always produce the
        identical netlist.
    window:
        Operands are usually drawn from the last ``window`` created nets,
        giving depth and reconvergence.
    cone_limit:
        Maximum number of primary inputs any single net may transitively
        depend on.
    long_range_probability:
        Chance of drawing an operand uniformly from *all* nets instead of
        the recent window (adds global structure).
    max_outputs:
        Dangling nets become primary outputs, newest first, up to this
        count; remaining dangling nets are ORed into one extra output so
        that every gate carries load.
    """
    if num_inputs < 2:
        raise NetlistError("random logic needs at least 2 inputs")
    if num_gates < 1:
        raise NetlistError("num_gates must be >= 1")
    if cone_limit < 2:
        raise NetlistError("cone_limit must be >= 2")
    rng = random.Random(seed)
    builder = NetlistBuilder(name, share_structure=False)
    nets: List[str] = builder.bus("x", num_inputs)
    # Input cone per net as a bitmask over primary-input indices.
    cone: Dict[str, int] = {net: 1 << i for i, net in enumerate(nets)}
    ops, weights = zip(*_GATE_WEIGHTS)

    def pick_operand() -> str:
        if rng.random() < long_range_probability or len(nets) <= window:
            return nets[rng.randrange(len(nets))]
        return nets[rng.randrange(len(nets) - window, len(nets))]

    created = 0
    attempts = 0
    while created < num_gates:
        attempts += 1
        if attempts > 50 * num_gates:
            raise NetlistError(
                f"cone_limit={cone_limit} too tight to place {num_gates} gates"
            )
        op = rng.choices(ops, weights)[0]
        if op is GateOp.INV:
            operands = [pick_operand()]
        else:
            first, second = pick_operand(), pick_operand()
            if first == second:
                continue
            operands = [first, second]
        mask = 0
        for operand in operands:
            mask |= cone[operand]
        if mask.bit_count() > cone_limit:
            continue
        net = builder.gate(op, operands)
        cone[net] = mask
        nets.append(net)
        created += 1

    used = set()
    for gate in builder.netlist.gates:
        used.update(gate.inputs)
    dangling = [
        gate.output
        for gate in builder.netlist.gates
        if gate.output not in used
    ]
    if not dangling:
        dangling = [nets[-1]]
    primary = dangling[-max_outputs:]
    leftovers = dangling[:-max_outputs]
    for index, net in enumerate(primary):
        builder.netlist.add_output(net)
    if leftovers:
        builder.netlist.add_output(builder.or_tree(leftovers))
    return builder.build()
