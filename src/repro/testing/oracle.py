"""Independent brute-force oracle for differential testing.

Eq. 4 of the paper defines switching capacitance *exactly*:

    C(x_i, x_f) = sum_j  g_j'(x_i) * g_j(x_f) * C_j

so every layer of this repo — symbolic ADD construction, node collapsing,
the compiled evaluation kernels, the batch simulators — has a cheap
independent ground truth: evaluate the netlist gate by gate and add up
the loads of the rising outputs.

This module is that ground truth.  It deliberately shares **no code**
with :mod:`repro.dd`, :mod:`repro.sim` or :mod:`repro.models`, and it
re-derives everything it could have borrowed from :mod:`repro.netlist`:
its own topological sort, its own scalar gate semantics, its own load
back-annotation.  Only the :class:`~repro.netlist.netlist.Netlist` data
structure itself is read (names, cells, connectivity, raw capacitance
attributes).  When the oracle and an implementation disagree, at most
one of them is right; when two independently written evaluators agree on
thousands of random circuits, both are probably right.

Two evaluation styles are provided:

- **scalar** — one pattern at a time, plain Python ints
  (:func:`oracle_node_values`, :func:`oracle_switching_capacitance`);
- **truth tables** — every net's function as a ``2**n``-bit Python int
  bitmask (:func:`oracle_truth_tables`), enabling *exhaustive* sweeps:
  the full ``(2**n, 2**n)`` transition-capacitance matrix of a macro via
  per-gate outer products (:func:`oracle_capacitance_matrix`) and exact
  closed-form uniform averages (:func:`oracle_average_uniform`).

Pattern/bit conventions match the rest of the repo: patterns are given in
``netlist.inputs`` order; pattern index ``p`` of a truth table assigns
input ``k`` the bit ``(p >> k) & 1`` (input 0 is the fastest-toggling
bit, exactly like :func:`repro.sim.sequences.all_patterns`).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import OracleError
from repro.netlist.gates import GateOp
from repro.netlist.netlist import Gate, Netlist

#: Exhaustive truth-table sweeps refuse above this input count
#: (2**16 pattern bitmasks are still instant; the 4**n matrix is the
#: real limit and is checked separately).
MAX_TRUTH_TABLE_INPUTS = 16

#: The capacitance matrix holds 4**n floats; n = 10 is 8 MiB, n = 12
#: would be 128 MiB — refuse beyond that.
MAX_MATRIX_INPUTS = 12


# ---------------------------------------------------------------------------
# Independent gate semantics (scalar, 0/1 ints)
# ---------------------------------------------------------------------------
def _op_eval(op: GateOp, bits: Sequence[int]) -> int:
    """Scalar gate semantics, written independently of netlist.gates.

    Uses reduction identities (AND = product, XOR = sum mod 2) rather
    than the all()/any()/parity formulation of ``eval_python`` so the two
    definitions can genuinely disagree if one of them is wrong.
    """
    if op is GateOp.CONST0:
        return 0
    if op is GateOp.CONST1:
        return 1
    if op is GateOp.BUF:
        return bits[0] & 1
    if op is GateOp.INV:
        return 1 - (bits[0] & 1)
    if op is GateOp.MUX:
        select, when0, when1 = (b & 1 for b in bits)
        return (select & when1) | ((1 - select) & when0)
    acc = bits[0] & 1
    if op in (GateOp.AND, GateOp.NAND):
        for b in bits[1:]:
            acc &= b
    elif op in (GateOp.OR, GateOp.NOR):
        for b in bits[1:]:
            acc |= b
    elif op in (GateOp.XOR, GateOp.XNOR):
        for b in bits[1:]:
            acc ^= b & 1
    else:  # pragma: no cover - new operator added without oracle support
        raise OracleError(f"oracle has no semantics for operator {op}")
    if op in (GateOp.NAND, GateOp.NOR, GateOp.XNOR):
        acc = 1 - (acc & 1)
    return acc & 1


def _op_eval_mask(op: GateOp, masks: Sequence[int], full: int) -> int:
    """Bit-parallel gate semantics on truth-table bitmasks.

    ``full`` is the all-ones mask (``2**2**n - 1``); complement is
    ``full ^ mask``.
    """
    if op is GateOp.CONST0:
        return 0
    if op is GateOp.CONST1:
        return full
    if op is GateOp.BUF:
        return masks[0]
    if op is GateOp.INV:
        return full ^ masks[0]
    if op is GateOp.MUX:
        select, when0, when1 = masks
        return (select & when1) | ((full ^ select) & when0)
    acc = masks[0]
    if op in (GateOp.AND, GateOp.NAND):
        for m in masks[1:]:
            acc &= m
    elif op in (GateOp.OR, GateOp.NOR):
        for m in masks[1:]:
            acc |= m
    elif op in (GateOp.XOR, GateOp.XNOR):
        for m in masks[1:]:
            acc ^= m
    else:  # pragma: no cover - new operator added without oracle support
        raise OracleError(f"oracle has no semantics for operator {op}")
    if op in (GateOp.NAND, GateOp.NOR, GateOp.XNOR):
        acc = full ^ acc
    return acc


# ---------------------------------------------------------------------------
# Independent structure walks
# ---------------------------------------------------------------------------
def oracle_topological_order(netlist: Netlist) -> List[Gate]:
    """Gates in dependency order, derived with our own Kahn pass.

    Independent of :meth:`Netlist.topological_order` (and of its cache).
    """
    driver: Dict[str, Gate] = {gate.output: gate for gate in netlist.gates}
    inputs = set(netlist.inputs)
    pending: Dict[str, int] = {}
    consumers: Dict[str, List[Gate]] = {}
    for gate in netlist.gates:
        count = 0
        for net in set(gate.inputs):
            if net in inputs:
                continue
            if net not in driver:
                raise OracleError(
                    f"gate {gate.name}: net {net!r} undriven and not an input"
                )
            count += 1
            consumers.setdefault(net, []).append(gate)
        pending[gate.name] = count
    queue = [g for g in netlist.gates if pending[g.name] == 0]
    order: List[Gate] = []
    head = 0
    while head < len(queue):
        gate = queue[head]
        head += 1
        order.append(gate)
        for consumer in consumers.get(gate.output, ()):
            pending[consumer.name] -= 1
            if pending[consumer.name] == 0:
                queue.append(consumer)
    if len(order) != len(netlist.gates):
        raise OracleError("netlist has a combinational cycle")
    return order


def oracle_load_capacitances(netlist: Netlist) -> Dict[str, float]:
    """Per-gate load in fF, recomputed from raw cell capacitance data.

    Reimplements the Eq.-2 load rule (sum of fanout pin capacitances,
    plus the pad/register load on primary-output nets) without calling
    :meth:`Netlist.load_capacitances` or :meth:`Cell.pin_capacitance`.
    """
    driver: Dict[str, Gate] = {gate.output: gate for gate in netlist.gates}
    loads: Dict[str, float] = {gate.name: 0.0 for gate in netlist.gates}
    for gate in netlist.gates:
        caps = gate.cell.input_capacitance_fF
        for pin, net in enumerate(gate.inputs):
            upstream = driver.get(net)
            if upstream is None:
                continue
            pin_cap = caps[pin] if isinstance(caps, tuple) else caps
            loads[upstream.name] += float(pin_cap)
    for net in netlist.outputs:
        upstream = driver.get(net)
        if upstream is not None:
            loads[upstream.name] += float(netlist.output_load_fF)
    return loads


# ---------------------------------------------------------------------------
# Scalar evaluation
# ---------------------------------------------------------------------------
def _as_bits(netlist: Netlist, pattern: Mapping[str, int] | Sequence[int]) -> Dict[str, int]:
    if isinstance(pattern, Mapping):
        return {net: int(bool(pattern[net])) for net in netlist.inputs}
    if len(pattern) != netlist.num_inputs:
        raise OracleError(
            f"pattern has {len(pattern)} bits; netlist has {netlist.num_inputs} inputs"
        )
    return {net: int(bool(bit)) for net, bit in zip(netlist.inputs, pattern)}


def oracle_node_values(
    netlist: Netlist, pattern: Mapping[str, int] | Sequence[int]
) -> Dict[str, int]:
    """Value of every net for one input pattern (scalar walk)."""
    values = _as_bits(netlist, pattern)
    for gate in oracle_topological_order(netlist):
        values[gate.output] = _op_eval(
            gate.cell.op, [values[net] for net in gate.inputs]
        )
    return values


def oracle_switching_capacitance(
    netlist: Netlist, initial: Sequence[int], final: Sequence[int]
) -> float:
    """Exact ``C(x_i, x_f)`` in fF — the Eq.-4 sum, term by term."""
    before = oracle_node_values(netlist, initial)
    after = oracle_node_values(netlist, final)
    loads = oracle_load_capacitances(netlist)
    total = 0.0
    for gate in netlist.gates:
        if not before[gate.output] and after[gate.output]:
            total += loads[gate.name]
    return total


def oracle_sequence_capacitances(
    netlist: Netlist, sequence: Sequence[Sequence[int]]
) -> List[float]:
    """Per-cycle ``C`` along a vector sequence (``len(sequence) - 1`` values)."""
    rows = np.asarray(sequence).astype(int).tolist()
    if len(rows) < 2:
        raise OracleError("sequence must hold at least two vectors")
    loads = oracle_load_capacitances(netlist)
    gates = netlist.gates
    previous = oracle_node_values(netlist, rows[0])
    result: List[float] = []
    for row in rows[1:]:
        current = oracle_node_values(netlist, row)
        total = 0.0
        for gate in gates:
            if not previous[gate.output] and current[gate.output]:
                total += loads[gate.name]
        result.append(total)
        previous = current
    return result


# ---------------------------------------------------------------------------
# Exhaustive truth-table evaluation
# ---------------------------------------------------------------------------
def oracle_truth_tables(netlist: Netlist) -> Dict[str, int]:
    """Every net's function as a ``2**n``-bit bitmask.

    Bit ``p`` of net ``s``'s mask is the value of ``s`` under the pattern
    assigning input ``k`` the bit ``(p >> k) & 1``.
    """
    n = netlist.num_inputs
    if n > MAX_TRUTH_TABLE_INPUTS:
        raise OracleError(
            f"truth tables over {n} inputs need 2**{n}-bit masks; "
            f"limit is {MAX_TRUTH_TABLE_INPUTS}"
        )
    span = 1 << n
    full = (1 << span) - 1
    tables: Dict[str, int] = {}
    for k, name in enumerate(netlist.inputs):
        # Input k toggles with period 2**(k+1): k low bits of the pattern
        # index stay, bit k selects.  Build the repeating mask directly.
        block = ((1 << (1 << k)) - 1) << (1 << k)  # 2**k zeros then 2**k ones
        mask = 0
        stride = 1 << (k + 1)
        for offset in range(0, span, stride):
            mask |= block << offset
        tables[name] = mask
    for gate in oracle_topological_order(netlist):
        tables[gate.output] = _op_eval_mask(
            gate.cell.op, [tables[net] for net in gate.inputs], full
        )
    return tables


def _mask_to_bool_array(mask: int, span: int) -> np.ndarray:
    """Expand a truth-table bitmask into a ``(span,)`` boolean vector."""
    raw = mask.to_bytes((span + 7) // 8, "little")
    bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), bitorder="little")
    return bits[:span].astype(bool)


def oracle_capacitance_matrix(netlist: Netlist) -> np.ndarray:
    """The full ``(2**n, 2**n)`` matrix ``C[xi_index, xf_index]`` in fF.

    Row/column ``p`` use the same pattern-index convention as
    :func:`oracle_truth_tables`.  Built as a sum of per-gate outer
    products ``C_j * (1 - g_j(x_i)) x g_j(x_f)`` — pure Eq. 4.
    """
    n = netlist.num_inputs
    if n > MAX_MATRIX_INPUTS:
        raise OracleError(
            f"the 4**{n}-entry capacitance matrix exceeds the "
            f"{MAX_MATRIX_INPUTS}-input limit"
        )
    span = 1 << n
    tables = oracle_truth_tables(netlist)
    loads = oracle_load_capacitances(netlist)
    matrix = np.zeros((span, span), dtype=np.float64)
    for gate in netlist.gates:
        load = loads[gate.name]
        if load == 0.0:
            continue
        wave = _mask_to_bool_array(tables[gate.output], span)
        matrix += load * np.outer(~wave, wave)
    return matrix


def oracle_average_uniform(netlist: Netlist) -> float:
    """Exact average ``C`` over independent uniform ``(x_i, x_f)`` pairs.

    Closed form from Eq. 4: ``sum_j C_j * P(g_j = 0) * P(g_j = 1)`` with
    probabilities read off the truth-table popcounts — no sampling, no
    matrix, exact for any feasible ``n``.
    """
    n = netlist.num_inputs
    span = 1 << n
    tables = oracle_truth_tables(netlist)
    loads = oracle_load_capacitances(netlist)
    total = 0.0
    for gate in netlist.gates:
        ones = tables[gate.output].bit_count()
        total += loads[gate.name] * (span - ones) * ones
    return total / float(span * span)


def oracle_max_capacitance(netlist: Netlist) -> Tuple[float, List[int], List[int]]:
    """Exhaustive worst-case ``C`` and one attaining ``(x_i, x_f)`` pair."""
    matrix = oracle_capacitance_matrix(netlist)
    flat = int(np.argmax(matrix))
    i, f = divmod(flat, matrix.shape[1])
    n = netlist.num_inputs
    initial = [(i >> k) & 1 for k in range(n)]
    final = [(f >> k) & 1 for k in range(n)]
    return float(matrix[i, f]), initial, final


def pattern_index(bits: Sequence[int]) -> int:
    """Pattern-index of a bit vector under the truth-table convention."""
    index = 0
    for k, bit in enumerate(bits):
        if bit:
            index |= 1 << k
    return index


def index_pattern(index: int, n: int) -> List[int]:
    """Inverse of :func:`pattern_index`."""
    return [(index >> k) & 1 for k in range(n)]
