"""Corpus persistence: fuzz cases as self-contained JSON files.

A corpus entry stores everything :class:`~repro.testing.checks.FuzzCase`
needs — the full netlist (gates with their per-instance pin
capacitances), the pattern pairs and sequence as bit strings in
primary-input order, the collapse budget and the check selection — so a
shrunk failure replays bit-identically on any machine, with no
dependency on the generator that produced it.

The on-disk format is versioned (``format``/``version`` header) so old
corpora keep loading if the schema grows.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import FuzzError
from repro.netlist.gates import GateOp
from repro.netlist.library import Cell
from repro.netlist.netlist import Netlist
from repro.netlist.validate import check_netlist
from repro.testing.checks import FuzzCase

FORMAT = "repro-fuzz-case"
VERSION = 1


def _bits_to_row(bits: str, width: int, where: str) -> List[bool]:
    if len(bits) != width or any(ch not in "01" for ch in bits):
        raise FuzzError(
            f"{where}: expected a {width}-bit 0/1 string, got {bits!r}"
        )
    return [ch == "1" for ch in bits]


def _row_to_bits(row) -> str:
    return "".join("1" if bit else "0" for bit in row)


def case_to_dict(case: FuzzCase, note: str = "") -> Dict:
    """Serialise a fuzz case to a JSON-ready dict."""
    netlist = case.netlist
    gates = []
    for gate in netlist.gates:
        caps = gate.cell.input_capacitance_fF
        gates.append(
            {
                "name": gate.name,
                "op": gate.cell.op.value,
                "inputs": list(gate.inputs),
                "output": gate.output,
                "caps": list(caps) if isinstance(caps, tuple) else caps,
            }
        )
    return {
        "format": FORMAT,
        "version": VERSION,
        "name": netlist.name,
        "note": note,
        "seed": case.seed,
        "label": case.label,
        "inputs": list(netlist.inputs),
        "outputs": list(netlist.outputs),
        "output_load_fF": netlist.output_load_fF,
        "gates": gates,
        "pairs": [
            [_row_to_bits(xi), _row_to_bits(xf)]
            for xi, xf in zip(case.initial, case.final)
        ],
        "sequence": [_row_to_bits(row) for row in case.sequence],
        "max_nodes": case.max_nodes,
        "checks": list(case.checks) if case.checks is not None else None,
    }


def case_from_dict(data: Dict, source: str = "<dict>") -> FuzzCase:
    """Rebuild a fuzz case from its JSON dict."""
    if data.get("format") != FORMAT:
        raise FuzzError(f"{source}: not a {FORMAT} file")
    if int(data.get("version", 0)) > VERSION:
        raise FuzzError(
            f"{source}: corpus version {data['version']} is newer than "
            f"this tool ({VERSION})"
        )
    netlist = Netlist(
        data.get("name", "corpus_case"),
        output_load_fF=float(data.get("output_load_fF", 0.0)),
    )
    for net in data["inputs"]:
        netlist.add_input(net)
    for entry in data["gates"]:
        try:
            op = GateOp(entry["op"])
        except ValueError:
            raise FuzzError(
                f"{source}: unknown gate op {entry['op']!r}"
            ) from None
        caps = entry.get("caps", 0.0)
        caps = tuple(float(c) for c in caps) if isinstance(caps, list) else float(caps)
        arity = len(entry["inputs"])
        cell = Cell(
            f"{entry['name']}_{op.value.upper()}{arity}",
            op,
            arity,
            input_capacitance_fF=caps,
        )
        netlist.add_gate(cell, entry["inputs"], entry["output"], name=entry["name"])
    for net in data["outputs"]:
        netlist.add_output(net)

    # Hand-edited corpus files can reference nets that nothing drives;
    # catch that here with a named error instead of a KeyError deep in a
    # check.  Warnings (dangling gates, zero loads, unused inputs) stay
    # allowed — they are deliberate corpus corner cases.
    report = check_netlist(netlist)
    if not report.ok:
        raise FuzzError(
            f"{source}: invalid netlist: " + "; ".join(report.errors)
        )

    width = len(data["inputs"])
    pairs = data.get("pairs", [])
    initial = np.array(
        [_bits_to_row(xi, width, f"{source} pair {k}") for k, (xi, _) in enumerate(pairs)],
        dtype=bool,
    ).reshape(len(pairs), width)
    final = np.array(
        [_bits_to_row(xf, width, f"{source} pair {k}") for k, (_, xf) in enumerate(pairs)],
        dtype=bool,
    ).reshape(len(pairs), width)
    sequence = np.array(
        [
            _bits_to_row(row, width, f"{source} sequence step {k}")
            for k, row in enumerate(data.get("sequence", []))
        ],
        dtype=bool,
    ).reshape(len(data.get("sequence", [])), width)
    checks = data.get("checks")
    return FuzzCase(
        netlist=netlist,
        seed=int(data.get("seed", 0)),
        initial=initial,
        final=final,
        sequence=sequence,
        max_nodes=int(data.get("max_nodes", 12)),
        checks=tuple(checks) if checks is not None else None,
        label=str(data.get("label", "")),
    )


def save_case(case: FuzzCase, path: Path | str, note: str = "") -> Path:
    """Write one corpus entry; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(case_to_dict(case, note=note), indent=2) + "\n")
    return path


def load_case(path: Path | str) -> FuzzCase:
    """Load one corpus entry."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise FuzzError(f"{path}: invalid JSON ({exc})") from None
    return case_from_dict(data, source=str(path))


def iter_corpus(directory: Path | str) -> Iterator[Tuple[Path, FuzzCase]]:
    """Yield (path, case) for every ``*.json`` entry, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        yield path, load_case(path)


def unique_path(directory: Path | str, stem: str) -> Path:
    """First free ``stem.json`` / ``stem-N.json`` path in ``directory``."""
    directory = Path(directory)
    candidate = directory / f"{stem}.json"
    counter = 1
    while candidate.exists():
        candidate = directory / f"{stem}-{counter}.json"
        counter += 1
    return candidate


def default_note(case: FuzzCase, check: Optional[str] = None) -> str:
    """A human-oriented one-liner describing a saved failure."""
    netlist = case.netlist
    parts = [
        f"{netlist.num_inputs} inputs",
        f"{netlist.num_gates} gates",
        f"{len(netlist.outputs)} outputs",
    ]
    if check:
        parts.insert(0, f"fails {check}")
    return ", ".join(parts)
