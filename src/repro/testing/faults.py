"""Deterministic fault injection for chaos-testing the pipeline.

The resilience layer (supervised parallel builds, store hardening, server
admission control, client retries) is only trustworthy if every failure
path can be *provoked on demand*.  This module provides that adversary: a
catalogue of named **injection sites** compiled into the production code
(:data:`SITES`), and a seedable :class:`FaultPlan` describing which sites
fire, how often, and with what behaviour.

A site costs one function call and a ``None`` check when no plan is
active, so the hooks stay in production builds.

Activation
----------
Plans activate through the :func:`inject` context manager::

    from repro.testing import faults

    plan = [
        faults.FaultSpec("build.worker.crash", max_token=1),
        faults.FaultSpec("store.torn_write", times=1, after=1),
        faults.FaultSpec("serve.connection.reset", times=3),
    ]
    with faults.inject(plan, seed=7):
        ...  # every layer now sees the injected failures

``inject`` also publishes the plan in the ``REPRO_FAULTS`` environment
variable (JSON), so worker processes — whether ``fork``\\ ed build workers
or separately spawned CLI processes — reconstruct the same plan on their
side of the process boundary.

Determinism
-----------
Probabilistic triggers draw from a :class:`random.Random` seeded by the
plan, so a given seed produces the same fire pattern run after run.  Hit
and fire counters are **per process**: a freshly forked worker starts
from the plan state at fork time.  Sites that run inside short-lived
workers therefore accept a caller-supplied ``token`` (the supervisor
passes the attempt number), and specs bound firing with ``max_token``
instead of ``times`` — the token travels with the work, so "crash on the
first attempt only" stays deterministic across any number of processes.

Telemetry
---------
Every fire increments a ``faults.injected.<site>`` counter in the process
where it happened (worker-side increments ride back to the parent through
the usual parallel-build metric merge when the worker survives).
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import FaultPlanError
from repro.obs.metrics import get_metrics

#: Environment variable carrying the active plan (JSON) across processes.
ENV_VAR = "REPRO_FAULTS"

#: Catalogue of injection sites compiled into the pipeline.  A plan may
#: only reference sites listed here (typos fail fast).
SITES: Dict[str, str] = {
    "build.pool.unavailable": (
        "fail worker-pool creation, driving the sequential in-process fallback"
    ),
    "build.worker.crash": (
        "hard-exit a parallel build worker before it returns (token = attempt)"
    ),
    "build.worker.hang": (
        "stall a parallel build worker for delay_s (token = attempt)"
    ),
    "build.blowup": (
        "fail an unbudgeted (max_nodes=None) exact ADD construction"
    ),
    "store.io.read": "raise an OSError on a store object/manifest read",
    "store.io.write": "raise an OSError on a store object/manifest write",
    "store.torn_write": (
        "leave a truncated file at the final path instead of an atomic write"
    ),
    "store.backend.unavailable": (
        "raise an OSError before a remote store-backend request is sent"
    ),
    "queue.worker.crash": (
        "hard-exit a build-queue worker mid-build, after claiming a job"
    ),
    "queue.server.crash": (
        "SIGKILL a supervised build-queue server after a journal append "
        "or a replayed record (token = restart generation)"
    ),
    "wal.torn_tail": (
        "write only a prefix of a WAL frame then fail the append, leaving "
        "the torn tail a crashed writer would"
    ),
    "wal.fsync_fail": (
        "raise an OSError from the WAL's durability fsync"
    ),
    "queue.lease.expire": (
        "force a claimed job's lease to be treated as already expired"
    ),
    "queue.job.duplicate_claim": (
        "hand an already-running job to a second claiming worker"
    ),
    "serve.connection.reset": (
        "abort a client connection instead of answering the request"
    ),
    "serve.eval.slow": "delay a server-side batch evaluation by delay_s",
    "serve.shard.down": (
        "hard-kill a cluster shard worker mid-request (token = shard index)"
    ),
    "serve.router.stale_ring": (
        "answer a ring request with the previous ring snapshot instead of "
        "the current one"
    ),
    "eval.codegen.compile_fail": (
        "fail the codegen backend's C compilation, driving the levelized "
        "fallback"
    ),
}

#: Exception classes a raising spec may name in its ``error`` field.
ERROR_CLASSES: Dict[str, type] = {
    "OSError": OSError,
    "ConnectionError": ConnectionError,
    "ConnectionResetError": ConnectionResetError,
    "TimeoutError": TimeoutError,
    "MemoryError": MemoryError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
}

_MET = get_metrics()


@dataclass(frozen=True)
class FaultSpec:
    """One site's trigger: when it fires and what the site should do.

    Parameters
    ----------
    site:
        Name from :data:`SITES`.
    probability:
        Chance each *eligible* hit fires (1.0 = always).
    times:
        Stop firing after this many fires in this process (None = no cap).
    after:
        Ignore the first ``after`` hits (lets a plan target e.g. the
        manifest write that follows an object write).
    max_token:
        For sites called with a ``token`` (worker attempt number): fire
        only while ``token <= max_token``.  Process-count-independent —
        use this instead of ``times`` for sites inside short-lived
        workers.
    delay_s:
        For stalling sites: how long to sleep.
    error:
        For raising sites: exception class name from
        :data:`ERROR_CLASSES`.
    message:
        Attached to raised exceptions for recognisable failures.
    """

    site: str
    probability: float = 1.0
    times: Optional[int] = None
    after: int = 0
    max_token: Optional[int] = None
    delay_s: float = 0.0
    error: str = "OSError"
    message: str = "injected fault"

    def validate(self) -> None:
        if self.site not in SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r} (known: {sorted(SITES)})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"{self.site}: probability must be in [0, 1], "
                f"got {self.probability}"
            )
        if self.times is not None and self.times < 1:
            raise FaultPlanError(f"{self.site}: times must be >= 1 or None")
        if self.after < 0:
            raise FaultPlanError(f"{self.site}: after must be >= 0")
        if self.max_token is not None and self.max_token < 0:
            raise FaultPlanError(f"{self.site}: max_token must be >= 0 or None")
        if self.delay_s < 0:
            raise FaultPlanError(f"{self.site}: delay_s must be >= 0")
        if self.error not in ERROR_CLASSES:
            raise FaultPlanError(
                f"{self.site}: unknown error class {self.error!r} "
                f"(known: {sorted(ERROR_CLASSES)})"
            )

    def exception(self) -> BaseException:
        """The exception this spec raises at a raising site."""
        return ERROR_CLASSES[self.error](
            f"injected fault at {self.site}: {self.message}"
        )


class FaultPlan:
    """A set of per-site :class:`FaultSpec` triggers with shared state.

    Thread-safe: the server thread, client threads and the build
    supervisor may all consult one plan concurrently.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0):
        by_site: Dict[str, FaultSpec] = {}
        for spec in specs:
            spec.validate()
            if spec.site in by_site:
                raise FaultPlanError(f"duplicate spec for site {spec.site!r}")
            by_site[spec.site] = spec
        self.specs = by_site
        self.seed = seed
        self._rng = random.Random(seed)
        self._hits: Dict[str, int] = {}
        self._fires: Dict[str, int] = {}
        self._lock = threading.Lock()

    # -- serialisation (environment round trip) ------------------------
    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "specs": [asdict(spec) for spec in self.specs.values()],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, raw: Dict) -> "FaultPlan":
        if not isinstance(raw, dict) or not isinstance(raw.get("specs"), list):
            raise FaultPlanError("fault plan must be {'seed': .., 'specs': [..]}")
        try:
            specs = [FaultSpec(**spec) for spec in raw["specs"]]
        except TypeError as exc:
            raise FaultPlanError(f"malformed fault spec: {exc}") from None
        return cls(specs, seed=int(raw.get("seed", 0)))

    @classmethod
    def from_json(cls, blob: str) -> "FaultPlan":
        try:
            raw = json.loads(blob)
        except ValueError as exc:
            raise FaultPlanError(f"unparseable fault plan JSON: {exc}") from None
        return cls.from_dict(raw)

    # -- trigger evaluation --------------------------------------------
    def check(self, site: str, token: Optional[int] = None) -> Optional[FaultSpec]:
        """Consult the plan at one site; returns the spec iff it fires."""
        spec = self.specs.get(site)
        if spec is None:
            return None
        with self._lock:
            self._hits[site] = self._hits.get(site, 0) + 1
            if self._hits[site] <= spec.after:
                return None
            if spec.max_token is not None and (
                token is None or token > spec.max_token
            ):
                return None
            if spec.times is not None and self._fires.get(site, 0) >= spec.times:
                return None
            if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                return None
            self._fires[site] = self._fires.get(site, 0) + 1
        _MET.counter(f"faults.injected.{site}").inc()
        return spec

    def fire_count(self, site: str) -> int:
        """How many times ``site`` has fired in this process."""
        with self._lock:
            return self._fires.get(site, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(sites={sorted(self.specs)}, seed={self.seed})"


# ---------------------------------------------------------------------------
# Global activation
# ---------------------------------------------------------------------------
_ACTIVE: Optional[FaultPlan] = None
#: (env blob, parsed plan) — so workers that inherit only the environment
#: variable parse it once, not on every site hit.
_ENV_CACHE: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def active_plan() -> Optional[FaultPlan]:
    """The plan currently in force in this process, if any.

    An explicitly installed plan (:func:`inject` / :func:`install`) wins;
    otherwise the ``REPRO_FAULTS`` environment variable is consulted, so
    spawned worker or CLI processes self-arm without any extra plumbing.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    blob = os.environ.get(ENV_VAR)
    if not blob:
        return None
    global _ENV_CACHE
    if blob != _ENV_CACHE[0]:
        _ENV_CACHE = (blob, FaultPlan.from_json(blob))
    return _ENV_CACHE[1]


def install(plan: Optional[FaultPlan]) -> None:
    """Install (or with None, clear) the process-wide plan directly.

    Prefer :func:`inject` — it also propagates the plan to child
    processes via the environment and restores the previous state.
    """
    global _ACTIVE
    _ACTIVE = plan


PlanLike = Union[FaultPlan, Sequence[FaultSpec]]


@contextmanager
def inject(plan: PlanLike, seed: int = 0) -> Iterator[FaultPlan]:
    """Activate a fault plan for the dynamic extent of the block.

    Accepts a :class:`FaultPlan` or a sequence of :class:`FaultSpec`\\ s.
    Publishes the plan in ``REPRO_FAULTS`` so forked/spawned workers
    inherit it; restores the previous plan and environment on exit.
    """
    if not isinstance(plan, FaultPlan):
        plan = FaultPlan(list(plan), seed=seed)
    previous_active = _ACTIVE
    previous_env = os.environ.get(ENV_VAR)
    install(plan)
    os.environ[ENV_VAR] = plan.to_json()
    try:
        yield plan
    finally:
        install(previous_active)
        if previous_env is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous_env


# ---------------------------------------------------------------------------
# Site helpers (what the production code calls)
# ---------------------------------------------------------------------------
def check(site: str, token: Optional[int] = None) -> Optional[FaultSpec]:
    """The spec for ``site`` iff a plan is active and the site fires."""
    plan = active_plan()
    if plan is None:
        return None
    return plan.check(site, token)


def fires(site: str, token: Optional[int] = None) -> bool:
    """True iff ``site`` fires now (for sites with custom behaviour)."""
    return check(site, token) is not None


def maybe_fail(site: str, token: Optional[int] = None) -> None:
    """Raise the spec's exception iff ``site`` fires."""
    spec = check(site, token)
    if spec is not None:
        raise spec.exception()


def maybe_delay(site: str, token: Optional[int] = None) -> bool:
    """Sleep the spec's ``delay_s`` iff ``site`` fires; True iff it did."""
    spec = check(site, token)
    if spec is None:
        return False
    if spec.delay_s > 0:
        time.sleep(spec.delay_s)
    return True


__all__ = [
    "ENV_VAR",
    "ERROR_CLASSES",
    "SITES",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "check",
    "fires",
    "inject",
    "install",
    "maybe_delay",
    "maybe_fail",
]
