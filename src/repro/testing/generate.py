"""Seeded random-netlist generation for the fuzzing harness.

Unlike :func:`repro.circuits.random_logic.random_logic` (which produces
*benchmark-shaped* circuits: bounded cones, realistic gate mix, every
gate loaded), this generator's job is to hit the corners: degenerate
supports, constant nodes, dangling gates, zero-capacitance pins, repeated
operands, single-input macros, inputs wired straight to outputs.  Every
gate gets its own freshly drawn :class:`~repro.netlist.library.Cell`, so
capacitance distributions vary per instance instead of per library.

Generation is a pure function of (:class:`GenParams`, seed): the same
pair always yields the identical netlist, which is what makes corpus
entries and ``--seed`` reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.netlist.gates import GateOp
from repro.netlist.library import Cell
from repro.netlist.netlist import Netlist

#: Operators the generator draws from, with (op, arity) choices.
_OP_CHOICES: Tuple[Tuple[GateOp, int], ...] = (
    (GateOp.AND, 2),
    (GateOp.AND, 3),
    (GateOp.OR, 2),
    (GateOp.OR, 3),
    (GateOp.NAND, 2),
    (GateOp.NOR, 2),
    (GateOp.XOR, 2),
    (GateOp.XNOR, 2),
    (GateOp.INV, 1),
    (GateOp.BUF, 1),
    (GateOp.MUX, 3),
)


@dataclass(frozen=True)
class GenParams:
    """Knobs of one random netlist draw.

    All fields are plain data so params can be logged, mutated by the
    coverage loop, and reconstructed from a corpus entry.
    """

    num_inputs: int = 4
    num_gates: int = 12
    #: Sampling weight per (op, arity) choice, aligned with _OP_CHOICES.
    op_weights: Tuple[float, ...] = field(
        default=(20, 6, 20, 6, 14, 10, 8, 6, 12, 6, 6)
    )
    #: Probability a gate is a CONST0/CONST1 tie cell.
    const_probability: float = 0.04
    #: Probability an operand repeats an already chosen one (x AND x).
    repeat_operand_probability: float = 0.05
    #: Operands come from the last ``window`` nets (locality / depth).
    window: int = 10
    #: Probability a drawn pin capacitance is exactly zero.
    zero_pin_cap_probability: float = 0.06
    #: Pin capacitances are uniform in [cap_low, cap_high] fF.
    cap_low: float = 2.0
    cap_high: float = 16.0
    #: Pad/register load on primary-output nets (0 = zero-cap outputs).
    output_load_fF: float = 15.0
    #: Probability each *dangling* net is exposed as a primary output.
    dangling_output_probability: float = 0.85
    #: Probability each *used* internal net is also exposed as an output.
    internal_output_probability: float = 0.08
    #: Probability a primary input is directly exposed as an output.
    input_output_probability: float = 0.05

    def mutated(self, rng: random.Random) -> "GenParams":
        """A nearby parameter point (for coverage-driven exploration)."""
        return GenParams(
            num_inputs=max(1, self.num_inputs + rng.randint(-2, 2)),
            num_gates=max(1, self.num_gates + rng.randint(-5, 5)),
            op_weights=tuple(
                max(0.5, w * rng.uniform(0.5, 2.0)) for w in self.op_weights
            ),
            const_probability=min(0.5, max(0.0, self.const_probability + rng.uniform(-0.05, 0.08))),
            repeat_operand_probability=min(0.6, max(0.0, self.repeat_operand_probability + rng.uniform(-0.05, 0.1))),
            window=max(2, self.window + rng.randint(-4, 4)),
            zero_pin_cap_probability=min(1.0, max(0.0, self.zero_pin_cap_probability + rng.uniform(-0.05, 0.15))),
            cap_low=max(0.0, self.cap_low * rng.uniform(0.5, 1.5)),
            cap_high=max(1.0, self.cap_high * rng.uniform(0.5, 1.5)),
            output_load_fF=0.0 if rng.random() < 0.1 else max(0.0, self.output_load_fF * rng.uniform(0.3, 2.0)),
            dangling_output_probability=min(1.0, max(0.0, self.dangling_output_probability + rng.uniform(-0.3, 0.2))),
            internal_output_probability=min(1.0, max(0.0, self.internal_output_probability + rng.uniform(-0.08, 0.15))),
            input_output_probability=min(1.0, max(0.0, self.input_output_probability + rng.uniform(-0.05, 0.1))),
        )


def random_params(
    rng: random.Random, max_inputs: int = 7, max_gates: int = 28
) -> GenParams:
    """Draw a fresh parameter point, degenerate corners included."""
    roll = rng.random()
    if roll < 0.06:
        num_inputs = 1  # single-input macro
    elif roll < 0.12:
        num_inputs = 2
    else:
        num_inputs = rng.randint(2, max(2, max_inputs))
    num_gates = 1 if rng.random() < 0.05 else rng.randint(2, max(2, max_gates))
    return GenParams(
        num_inputs=num_inputs,
        num_gates=num_gates,
        op_weights=tuple(w * rng.uniform(0.25, 2.0) for w in GenParams().op_weights),
        const_probability=rng.choice((0.0, 0.03, 0.12)),
        repeat_operand_probability=rng.choice((0.0, 0.05, 0.2)),
        window=rng.randint(3, 14),
        zero_pin_cap_probability=rng.choice((0.0, 0.05, 0.25)),
        cap_low=rng.uniform(0.0, 4.0),
        cap_high=rng.uniform(5.0, 24.0),
        output_load_fF=rng.choice((0.0, 6.0, 15.0, 31.5)),
        dangling_output_probability=rng.uniform(0.4, 1.0),
        internal_output_probability=rng.uniform(0.0, 0.2),
        input_output_probability=rng.uniform(0.0, 0.15),
    )


def _draw_cell(
    params: GenParams, rng: random.Random, counter: int
) -> Cell:
    """One freshly drawn cell instance with random pin capacitances."""
    if rng.random() < params.const_probability:
        op = GateOp.CONST1 if rng.random() < 0.5 else GateOp.CONST0
        return Cell(f"FZ{counter}_{op.value.upper()}", op, 0, input_capacitance_fF=())
    op, arity = rng.choices(_OP_CHOICES, weights=params.op_weights)[0]
    caps = tuple(
        0.0
        if rng.random() < params.zero_pin_cap_probability
        else round(rng.uniform(params.cap_low, params.cap_high), 2)
        for _ in range(arity)
    )
    return Cell(f"FZ{counter}_{op.value.upper()}{arity}", op, arity, input_capacitance_fF=caps)


def build_fuzz_netlist(params: GenParams, seed: int, name: str | None = None) -> Netlist:
    """Deterministically generate one fuzz netlist from ``(params, seed)``."""
    rng = random.Random(seed)
    netlist = Netlist(
        name or f"fuzz_{seed:08x}", output_load_fF=params.output_load_fF
    )
    nets: List[str] = [netlist.add_input(f"x{k}") for k in range(params.num_inputs)]

    def pick_operand(already: List[str]) -> str:
        if already and rng.random() < params.repeat_operand_probability:
            return rng.choice(already)
        if len(nets) <= params.window or rng.random() < 0.1:
            return rng.choice(nets)
        return nets[rng.randrange(len(nets) - params.window, len(nets))]

    for index in range(params.num_gates):
        cell = _draw_cell(params, rng, index)
        operands: List[str] = []
        for _ in range(cell.num_inputs):
            operands.append(pick_operand(operands))
        output = f"n{index}"
        netlist.add_gate(cell, operands, output, name=f"g{index}")
        nets.append(output)

    used: set = set()
    for gate in netlist.gates:
        used.update(gate.inputs)
    outputs: List[str] = []
    for gate in netlist.gates:
        net = gate.output
        if net in used:
            if rng.random() < params.internal_output_probability:
                outputs.append(net)
        elif rng.random() < params.dangling_output_probability:
            outputs.append(net)
    for net in netlist.inputs:
        if rng.random() < params.input_output_probability:
            outputs.append(net)
    if not outputs:
        outputs.append(nets[-1])
    for net in outputs:
        netlist.add_output(net)
    return netlist


def case_features(netlist: Netlist) -> Tuple:
    """Coarse structural feature key used by the coverage map.

    Buckets are deliberately chunky: the point is to notice when a whole
    *kind* of circuit (const-bearing, zero-load, dangling, single-input)
    has never been exercised, not to fingerprint individual netlists.
    """
    ops = frozenset(gate.cell.op for gate in netlist.gates)
    used: set = set()
    for gate in netlist.gates:
        used.update(gate.inputs)
    dangling = sum(
        1
        for gate in netlist.gates
        if gate.output not in used and gate.output not in netlist.outputs
    )
    loads = _raw_loads(netlist)
    return (
        min(netlist.num_inputs, 8),
        min(netlist.num_gates // 8, 4),
        ops,
        any(value == 0.0 for value in loads.values()),
        netlist.output_load_fF == 0.0,
        dangling > 0,
        min(len(netlist.outputs) // 4, 4),
        any(net in netlist.inputs for net in netlist.outputs),
    )


def _raw_loads(netlist: Netlist) -> Dict[str, float]:
    """Load per gate from raw cell data (no Netlist method involved)."""
    driver = {gate.output: gate for gate in netlist.gates}
    loads = {gate.name: 0.0 for gate in netlist.gates}
    for gate in netlist.gates:
        caps = gate.cell.input_capacitance_fF
        for pin, net in enumerate(gate.inputs):
            upstream = driver.get(net)
            if upstream is not None:
                loads[upstream.name] += caps[pin] if isinstance(caps, tuple) else caps
    for net in netlist.outputs:
        upstream = driver.get(net)
        if upstream is not None:
            loads[upstream.name] += netlist.output_load_fF
    return loads
