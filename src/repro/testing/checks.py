"""Differential checks: every implementation pair vs the oracle.

A *check* takes a :class:`CaseContext` (one fuzz case plus lazily built,
shared artifacts like the exact ADD model) and returns ``None`` when the
implementations agree or a :class:`Mismatch` describing the first
disagreement.  Checks are registered in :data:`CHECKS`; the fuzz driver,
the corpus replayer and the shrinker all run them through
:func:`run_case`, so a shrunk reproducer exercises exactly the code path
that failed.

The pairs covered (see ISSUE/DESIGN for the rationale):

====================  ====================================================
``logic_sim``         numpy batch simulator vs oracle scalar walk
``power_sim``         pair/sequence golden-model power vs oracle (Eq. 4)
``glitch_zero_delay`` event-driven sim's zero-delay component vs oracle,
                      and total (glitchful) >= zero-delay
``exact_model``       exact ADD model vs oracle, scalar and batch,
                      exhaustively for small input counts
``worst_case``        ADD worst-case extraction vs exhaustive oracle max
``compiled_kernels``  levelized vs pointer kernels vs scalar DD walk
``collapsed_bounds``  max-collapsed model >= oracle, min-collapsed <=,
                      global max of the bound >= exhaustive oracle max
``avg_preserved``     avg-collapsed model keeps the exact uniform mean
``expected_cap``      closed-form E[C] at (sp, st) = (.5, .5) == uniform mean
``serialize``         JSON round trip preserves size/strategy/evaluations
``reorder``           transfer under a shuffled variable order vs oracle
====================  ====================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FuzzError
from repro.netlist.netlist import Netlist
from repro.testing.oracle import (
    MAX_TRUTH_TABLE_INPUTS,
    oracle_average_uniform,
    oracle_capacitance_matrix,
    oracle_load_capacitances,
    oracle_node_values,
    oracle_sequence_capacitances,
    oracle_switching_capacitance,
)

#: Exhaustive (4**n transition) sweeps run when the netlist has at most
#: this many inputs; beyond it checks fall back to the case's samples.
EXHAUSTIVE_INPUT_LIMIT = 6


@dataclass(frozen=True)
class FuzzCase:
    """One self-contained differential test case.

    Everything a check needs is in here (netlist, pattern pairs, a vector
    sequence, the collapse budget), so a case can be serialised to the
    corpus and replayed bit-identically later.
    """

    netlist: Netlist
    seed: int
    initial: np.ndarray  # (P, n) bool, columns in netlist.inputs order
    final: np.ndarray  # (P, n) bool
    sequence: np.ndarray  # (L, n) bool
    max_nodes: int = 12
    checks: Optional[Tuple[str, ...]] = None  # None = every applicable check
    label: str = ""

    @property
    def num_pairs(self) -> int:
        return int(self.initial.shape[0])


@dataclass(frozen=True)
class Mismatch:
    """One confirmed disagreement between two implementations.

    ``error_type`` is set when the check did not get as far as comparing
    values because an implementation *raised*; crashes on legal netlists
    are failures too, and are shrunk exactly like value mismatches.
    """

    check: str
    message: str
    witness: Dict[str, object] = field(default_factory=dict)
    error_type: Optional[str] = None

    def same_failure(self, other: "Mismatch") -> bool:
        """True if ``other`` plausibly reproduces this failure mode."""
        return self.check == other.check and self.error_type == other.error_type

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.check}] {self.message}"


def _bits(row: Sequence[int] | np.ndarray) -> str:
    return "".join("1" if bit else "0" for bit in row)


class CaseContext:
    """Lazily built shared artifacts of one fuzz case.

    Building the exact ADD model dominates a case's cost; caching it here
    lets the model-facing checks share one construction instead of
    rebuilding per check.
    """

    def __init__(self, case: FuzzCase):
        self.case = case
        self.netlist = case.netlist
        self._models: Dict[Tuple[str, Optional[int]], object] = {}
        self._oracle_pairs: Optional[np.ndarray] = None
        self._oracle_matrix: Optional[np.ndarray] = None
        self._loads: Optional[Dict[str, float]] = None
        #: Feature notes collected while checks run (fed to coverage).
        self.observed: Dict[str, object] = {}

    # -- oracle side ---------------------------------------------------
    @property
    def loads(self) -> Dict[str, float]:
        if self._loads is None:
            self._loads = oracle_load_capacitances(self.netlist)
        return self._loads

    @property
    def total_load(self) -> float:
        return sum(self.loads.values())

    @property
    def tolerance(self) -> float:
        """Absolute fp tolerance: summation-order drift scales with load."""
        return 1e-6 + 1e-9 * self.total_load

    @property
    def oracle_pairs(self) -> np.ndarray:
        """Oracle ``C`` for the case's sampled pattern pairs."""
        if self._oracle_pairs is None:
            self._oracle_pairs = np.array(
                [
                    oracle_switching_capacitance(
                        self.netlist, xi.tolist(), xf.tolist()
                    )
                    for xi, xf in zip(self.case.initial, self.case.final)
                ],
                dtype=float,
            )
        return self._oracle_pairs

    @property
    def oracle_matrix(self) -> Optional[np.ndarray]:
        """Exhaustive capacitance matrix, or None above the input limit."""
        if self.netlist.num_inputs > EXHAUSTIVE_INPUT_LIMIT:
            return None
        if self._oracle_matrix is None:
            self._oracle_matrix = oracle_capacitance_matrix(self.netlist)
        return self._oracle_matrix

    # -- model side ----------------------------------------------------
    def model(self, strategy: str = "avg", max_nodes: Optional[int] = None):
        """Build (once) and cache an ADD model for this case's netlist."""
        from repro.models.addmodel import build_add_model

        key = (strategy, max_nodes)
        if key not in self._models:
            self._models[key] = build_add_model(
                self.netlist, max_nodes=max_nodes, strategy=strategy
            )
        return self._models[key]

    @property
    def exact_model(self):
        return self.model("avg", None)

    def all_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """Every ``(x_i, x_f)`` pair, index-aligned with the oracle matrix."""
        from repro.sim.sequences import all_transition_pairs

        return all_transition_pairs(self.netlist.num_inputs)


CheckFn = Callable[[CaseContext], Optional[Mismatch]]


# ---------------------------------------------------------------------------
# Simulator checks
# ---------------------------------------------------------------------------
def check_logic_sim(ctx: CaseContext) -> Optional[Mismatch]:
    """Batch numpy logic simulation vs the oracle's scalar walk."""
    from repro.sim.logic_sim import simulate

    result = simulate(ctx.netlist, ctx.case.initial)
    for p, row in enumerate(ctx.case.initial):
        expected = oracle_node_values(ctx.netlist, row.tolist())
        for net, wave in result.values.items():
            if int(wave[p]) != expected[net]:
                return Mismatch(
                    "logic_sim",
                    f"net {net!r} simulates to {int(wave[p])}, oracle says "
                    f"{expected[net]}",
                    {"pattern": _bits(row), "net": net, "pair_index": p},
                )
    return None


def check_power_sim(ctx: CaseContext) -> Optional[Mismatch]:
    """Golden-model power (pairs and sequences) vs the oracle."""
    from repro.sim.power_sim import (
        pair_switching_capacitances,
        sequence_switching_capacitances,
    )

    estimates = pair_switching_capacitances(
        ctx.netlist, ctx.case.initial, ctx.case.final
    )
    truths = ctx.oracle_pairs
    gaps = np.abs(estimates - truths)
    if gaps.size and float(gaps.max()) > ctx.tolerance:
        p = int(np.argmax(gaps))
        return Mismatch(
            "power_sim",
            f"pair capacitance {estimates[p]:.6f} fF vs oracle "
            f"{truths[p]:.6f} fF",
            {
                "initial": _bits(ctx.case.initial[p]),
                "final": _bits(ctx.case.final[p]),
                "pair_index": p,
            },
        )
    if ctx.case.sequence.shape[0] >= 2:
        per_cycle = sequence_switching_capacitances(ctx.netlist, ctx.case.sequence)
        expected = oracle_sequence_capacitances(
            ctx.netlist, ctx.case.sequence
        )
        diffs = np.abs(per_cycle - np.asarray(expected))
        if diffs.size and float(diffs.max()) > ctx.tolerance:
            t = int(np.argmax(diffs))
            return Mismatch(
                "power_sim",
                f"sequence cycle {t}: {per_cycle[t]:.6f} fF vs oracle "
                f"{expected[t]:.6f} fF",
                {"cycle": t, "initial": _bits(ctx.case.sequence[t]),
                 "final": _bits(ctx.case.sequence[t + 1])},
            )
    return None


def check_glitch_zero_delay(ctx: CaseContext) -> Optional[Mismatch]:
    """Event-driven sim: zero-delay component == oracle, total >= it."""
    from repro.sim.glitch_sim import simulate_transition

    count = min(6, ctx.case.num_pairs)
    for p in range(count):
        xi = ctx.case.initial[p].tolist()
        xf = ctx.case.final[p].tolist()
        trace = simulate_transition(ctx.netlist, xi, xf)
        expected = ctx.oracle_pairs[p]
        if abs(trace.zero_delay_capacitance_fF - expected) > ctx.tolerance:
            return Mismatch(
                "glitch_zero_delay",
                f"zero-delay component {trace.zero_delay_capacitance_fF:.6f} fF "
                f"vs oracle {expected:.6f} fF",
                {"initial": _bits(xi), "final": _bits(xf), "pair_index": p},
            )
        if trace.switching_capacitance_fF < trace.zero_delay_capacitance_fF - ctx.tolerance:
            return Mismatch(
                "glitch_zero_delay",
                f"total (glitchful) capacitance {trace.switching_capacitance_fF:.6f} fF "
                f"below its structural floor {trace.zero_delay_capacitance_fF:.6f} fF",
                {"initial": _bits(xi), "final": _bits(xf), "pair_index": p},
            )
    return None


# ---------------------------------------------------------------------------
# Symbolic-model checks
# ---------------------------------------------------------------------------
def check_exact_model(ctx: CaseContext) -> Optional[Mismatch]:
    """Exact ADD model vs oracle: scalar walk, batch kernel, exhaustive."""
    model = ctx.exact_model
    for p in range(ctx.case.num_pairs):
        xi = ctx.case.initial[p].tolist()
        xf = ctx.case.final[p].tolist()
        estimate = model.switching_capacitance(xi, xf)
        if abs(estimate - ctx.oracle_pairs[p]) > ctx.tolerance:
            return Mismatch(
                "exact_model",
                f"model C = {estimate:.6f} fF, oracle C = "
                f"{ctx.oracle_pairs[p]:.6f} fF",
                {"initial": _bits(xi), "final": _bits(xf), "pair_index": p},
            )
    batch = model.pair_capacitances(ctx.case.initial, ctx.case.final)
    gaps = np.abs(batch - ctx.oracle_pairs)
    if gaps.size and float(gaps.max()) > ctx.tolerance:
        p = int(np.argmax(gaps))
        return Mismatch(
            "exact_model",
            f"batch C = {batch[p]:.6f} fF, oracle C = {ctx.oracle_pairs[p]:.6f} fF",
            {
                "initial": _bits(ctx.case.initial[p]),
                "final": _bits(ctx.case.final[p]),
                "pair_index": p,
            },
        )
    matrix = ctx.oracle_matrix
    if matrix is not None:
        initial, final = ctx.all_pairs()
        estimates = model.pair_capacitances(initial, final)
        flat = matrix.reshape(-1)
        gaps = np.abs(estimates - flat)
        if float(gaps.max()) > ctx.tolerance:
            worst = int(np.argmax(gaps))
            return Mismatch(
                "exact_model",
                f"exhaustive sweep: model {estimates[worst]:.6f} fF vs oracle "
                f"{flat[worst]:.6f} fF",
                {"initial": _bits(initial[worst]), "final": _bits(final[worst])},
            )
    ctx.observed["model_nodes"] = model.size
    return None


def check_worst_case(ctx: CaseContext) -> Optional[Mismatch]:
    """ADD worst-case extraction vs the exhaustive oracle maximum."""
    matrix = ctx.oracle_matrix
    if matrix is None:
        return None
    model = ctx.exact_model
    initial, final, value = model.worst_case_transition()
    true_max = float(matrix.max())
    if abs(value - model.global_maximum()) > ctx.tolerance:
        return Mismatch(
            "worst_case",
            f"extracted transition attains {value:.6f} fF but the model's "
            f"global maximum is {model.global_maximum():.6f} fF",
            {"initial": _bits(initial), "final": _bits(final)},
        )
    if abs(value - true_max) > ctx.tolerance:
        return Mismatch(
            "worst_case",
            f"exact model's worst case {value:.6f} fF differs from the "
            f"exhaustive oracle maximum {true_max:.6f} fF",
            {"initial": _bits(initial), "final": _bits(final)},
        )
    achieved = oracle_switching_capacitance(ctx.netlist, initial, final)
    if abs(achieved - value) > ctx.tolerance:
        return Mismatch(
            "worst_case",
            f"claimed worst-case transition only achieves {achieved:.6f} fF "
            f"at the oracle (model says {value:.6f} fF)",
            {"initial": _bits(initial), "final": _bits(final)},
        )
    return None


def check_compiled_kernels(ctx: CaseContext) -> Optional[Mismatch]:
    """Every registered evaluation backend vs the scalar root-to-leaf walk."""
    from repro.dd import backends as dd_backends

    model = ctx.exact_model
    space, manager = model.space, model.manager
    packed = np.zeros((ctx.case.num_pairs, 2 * model.num_inputs), dtype=bool)
    position = {name: k for k, name in enumerate(space.input_names)}
    order = [position[name] for name in model.input_names]
    for k, pos in enumerate(order):
        packed[:, space.xi(pos)] = ctx.case.initial[:, k]
        packed[:, space.xf(pos)] = ctx.case.final[:, k]
    compiled = model.compiled()
    scalar = np.array(
        [manager.evaluate(model.root, row.astype(int).tolist()) for row in packed]
    )
    ctx.observed["levelized"] = compiled._lev_children is not None
    checked = []
    for name in dd_backends.registered_names():
        backend = dd_backends.get_backend(name)
        if not backend.supports(compiled):
            continue
        checked.append(name)
        result = compiled.evaluate_batch(packed, kernel=name)
        if not np.array_equal(result, scalar):
            p = int(np.argmax(result != scalar))
            return Mismatch(
                "compiled_kernels",
                f"{name} backend {result[p]!r} vs scalar walk {scalar[p]!r}",
                {"assignment": _bits(packed[p]), "pair_index": p},
            )
    ctx.observed["backends"] = checked
    # Same comparison through the model's own packing path: forcing the
    # kernel bypasses pair_capacitances' small-batch scalar fallback, so
    # this differences _pack_batch + CompiledDD against the walk above.
    via_model = model.pair_capacitances(
        ctx.case.initial, ctx.case.final, kernel="pointer"
    )
    if not np.array_equal(via_model, scalar):
        p = int(np.argmax(via_model != scalar))
        return Mismatch(
            "compiled_kernels",
            f"pair_capacitances(kernel='pointer') {via_model[p]!r} vs "
            f"scalar walk {scalar[p]!r}",
            {"pair_index": p},
        )
    return None


def check_collapsed_bounds(ctx: CaseContext) -> Optional[Mismatch]:
    """max-collapsed model >= oracle everywhere; min-collapsed <=."""
    budget = ctx.case.max_nodes
    upper = ctx.model("max", budget)
    lower = ctx.model("min", budget)
    ctx.observed["approximated"] = bool(
        upper.report and upper.report.num_approximations
    )
    matrix = ctx.oracle_matrix
    if matrix is not None:
        initial, final = ctx.all_pairs()
        truths = matrix.reshape(-1)
    else:
        initial, final = ctx.case.initial, ctx.case.final
        truths = ctx.oracle_pairs
    estimates = upper.pair_capacitances(initial, final)
    slack = estimates - truths
    if slack.size and float(slack.min()) < -ctx.tolerance:
        p = int(np.argmin(slack))
        return Mismatch(
            "collapsed_bounds",
            f"max-strategy bound {estimates[p]:.6f} fF falls below the oracle "
            f"{truths[p]:.6f} fF (violation {-slack[p]:.6f} fF)",
            {"initial": _bits(initial[p]), "final": _bits(final[p]),
             "max_nodes": budget},
        )
    floor = lower.pair_capacitances(initial, final)
    slack = truths - floor
    if slack.size and float(slack.min()) < -ctx.tolerance:
        p = int(np.argmin(slack))
        return Mismatch(
            "collapsed_bounds",
            f"min-strategy bound {floor[p]:.6f} fF exceeds the oracle "
            f"{truths[p]:.6f} fF",
            {"initial": _bits(initial[p]), "final": _bits(final[p]),
             "max_nodes": budget},
        )
    if matrix is not None:
        true_max = float(matrix.max())
        if upper.global_maximum() < true_max - ctx.tolerance:
            return Mismatch(
                "collapsed_bounds",
                f"constant bound {upper.global_maximum():.6f} fF below the "
                f"exhaustive worst case {true_max:.6f} fF",
                {"max_nodes": budget},
            )
    return None


def check_avg_preserved(ctx: CaseContext) -> Optional[Mismatch]:
    """avg-collapsing preserves the exact uniform mean (paper invariant)."""
    if ctx.netlist.num_inputs > MAX_TRUTH_TABLE_INPUTS:
        return None  # closed-form oracle average unavailable
    expected = oracle_average_uniform(ctx.netlist)
    scale = max(1.0, ctx.total_load)
    tolerance = ctx.tolerance + 1e-9 * scale
    exact_avg = ctx.exact_model.average_capacitance_uniform()
    if abs(exact_avg - expected) > tolerance:
        return Mismatch(
            "avg_preserved",
            f"exact model average {exact_avg:.9f} fF vs oracle closed form "
            f"{expected:.9f} fF",
            {},
        )
    collapsed = ctx.model("avg", ctx.case.max_nodes)
    collapsed_avg = collapsed.average_capacitance_uniform()
    if abs(collapsed_avg - expected) > tolerance:
        return Mismatch(
            "avg_preserved",
            f"avg-collapsed model (MAX={ctx.case.max_nodes}) average "
            f"{collapsed_avg:.9f} fF drifted from {expected:.9f} fF",
            {"max_nodes": ctx.case.max_nodes},
        )
    return None


def check_expected_capacitance(ctx: CaseContext) -> Optional[Mismatch]:
    """Closed-form E[C] at (sp, st) = (0.5, 0.5) equals the uniform mean."""
    if ctx.netlist.num_inputs > MAX_TRUTH_TABLE_INPUTS:
        return None  # closed-form oracle average unavailable
    model = ctx.exact_model
    analytic = model.expected_capacitance(0.5, 0.5)
    expected = oracle_average_uniform(ctx.netlist)
    if abs(analytic - expected) > ctx.tolerance + 1e-9 * max(1.0, ctx.total_load):
        return Mismatch(
            "expected_cap",
            f"expected_capacitance(0.5, 0.5) = {analytic:.9f} fF but the "
            f"uniform mean is {expected:.9f} fF",
            {},
        )
    return None


def check_serialize(ctx: CaseContext) -> Optional[Mismatch]:
    """JSON round trip: same size, strategy and evaluations."""
    from repro.models.serialize import model_from_dict, model_to_dict

    for strategy, max_nodes in (("avg", None), ("max", ctx.case.max_nodes)):
        model = ctx.model(strategy, max_nodes)
        clone = model_from_dict(model_to_dict(model))
        if clone.size != model.size or clone.strategy != model.strategy:
            return Mismatch(
                "serialize",
                f"round trip changed the model: {model.size} nodes/"
                f"{model.strategy} -> {clone.size} nodes/{clone.strategy}",
                {"strategy": strategy, "max_nodes": max_nodes},
            )
        original = model.pair_capacitances(ctx.case.initial, ctx.case.final)
        restored = clone.pair_capacitances(ctx.case.initial, ctx.case.final)
        if not np.array_equal(original, restored):
            p = int(np.argmax(original != restored))
            return Mismatch(
                "serialize",
                f"round-tripped model evaluates to {restored[p]!r}, original "
                f"gave {original[p]!r}",
                {
                    "initial": _bits(ctx.case.initial[p]),
                    "final": _bits(ctx.case.final[p]),
                    "strategy": strategy,
                },
            )
    return None


def check_reorder(ctx: CaseContext) -> Optional[Mismatch]:
    """Transfer under a shuffled variable order still matches the oracle."""
    from repro.dd.reorder import transfer

    model = ctx.exact_model
    manager = model.manager
    support = sorted(manager.support(model.root))
    if not support:
        return None
    order = list(support)
    random.Random(ctx.case.seed ^ 0x5EED).shuffle(order)
    target, new_root = transfer(manager, model.root, order)
    space = model.space
    position = {name: k for k, name in enumerate(space.input_names)}
    external = [position[name] for name in model.input_names]
    column_of = {var: k for k, var in enumerate(order)}
    for p in range(ctx.case.num_pairs):
        packed = [0] * (2 * model.num_inputs)
        for k, pos in enumerate(external):
            packed[space.xi(pos)] = int(ctx.case.initial[p, k])
            packed[space.xf(pos)] = int(ctx.case.final[p, k])
        assignment = [0] * len(order)
        for var, column in column_of.items():
            assignment[column] = packed[var]
        estimate = target.evaluate(new_root, assignment)
        if abs(estimate - ctx.oracle_pairs[p]) > ctx.tolerance:
            return Mismatch(
                "reorder",
                f"reordered diagram evaluates to {estimate:.6f} fF, oracle "
                f"says {ctx.oracle_pairs[p]:.6f} fF",
                {
                    "initial": _bits(ctx.case.initial[p]),
                    "final": _bits(ctx.case.final[p]),
                    "order": order,
                },
            )
    return None


#: Registry: name -> check, in cheap-first execution order.
CHECKS: Dict[str, CheckFn] = {
    "logic_sim": check_logic_sim,
    "power_sim": check_power_sim,
    "glitch_zero_delay": check_glitch_zero_delay,
    "exact_model": check_exact_model,
    "worst_case": check_worst_case,
    "compiled_kernels": check_compiled_kernels,
    "collapsed_bounds": check_collapsed_bounds,
    "avg_preserved": check_avg_preserved,
    "expected_cap": check_expected_capacitance,
    "serialize": check_serialize,
    "reorder": check_reorder,
}


def resolve_checks(names: Optional[Sequence[str]]) -> List[str]:
    """Validate and normalise a check-name selection (None = all)."""
    if names is None:
        return list(CHECKS)
    unknown = [name for name in names if name not in CHECKS]
    if unknown:
        raise FuzzError(
            f"unknown checks {unknown}; available: {', '.join(CHECKS)}"
        )
    return list(names)


def run_case(
    case: FuzzCase, checks: Optional[Sequence[str]] = None
) -> Tuple[List[Mismatch], CaseContext]:
    """Run the selected checks (default: the case's own, else all).

    Returns every mismatch found (one per failing check — each check
    reports its first disagreement) plus the context, whose ``observed``
    notes feed the fuzzer's coverage map.
    """
    selected = resolve_checks(
        checks if checks is not None else case.checks
    )
    ctx = CaseContext(case)
    mismatches: List[Mismatch] = []
    for name in selected:
        result = _run_one(name, ctx)
        if result is not None:
            mismatches.append(result)
    return mismatches, ctx


def _run_one(name: str, ctx: CaseContext) -> Optional[Mismatch]:
    """Run one check, converting crashes into error-typed mismatches."""
    try:
        return CHECKS[name](ctx)
    except Exception as exc:
        return Mismatch(
            name,
            f"check raised {type(exc).__name__}: {exc}",
            error_type=type(exc).__name__,
        )


def single_check_runner(name: str) -> Callable[[FuzzCase], Optional[Mismatch]]:
    """A closure running exactly one named check (used by the shrinker)."""
    if name not in CHECKS:
        raise FuzzError(f"unknown check {name!r}")

    def runner(case: FuzzCase) -> Optional[Mismatch]:
        return _run_one(name, CaseContext(case))

    return runner
