"""Differential-oracle and fuzzing harness.

This package is the *adversary* of the symbolic pipeline: an
independent oracle (:mod:`repro.testing.oracle`) that recomputes logic
values and Eq.-4 switching capacitance straight from the netlist with
none of the ``dd``/``sim``/``models`` code, plus a coverage-driven
fuzzer (:mod:`repro.testing.fuzz`) that cross-checks every
implementation pair and shrinks disagreements to minimal reproducers
for ``tests/corpus/``, and a deterministic fault injector
(:mod:`repro.testing.faults`) that provokes worker crashes, torn store
writes, connection resets and slow evaluations at named sites so the
resilience layer can be chaos-tested end to end.
"""

from repro.testing.checks import (
    CHECKS,
    CaseContext,
    FuzzCase,
    Mismatch,
    resolve_checks,
    run_case,
    single_check_runner,
)
from repro.testing.faults import (
    ENV_VAR as FAULT_ENV_VAR,
    SITES as FAULT_SITES,
    FaultPlan,
    FaultSpec,
    inject as inject_faults,
)
from repro.testing.corpus import (
    case_from_dict,
    case_to_dict,
    iter_corpus,
    load_case,
    save_case,
)
from repro.testing.fuzz import (
    FuzzConfig,
    FuzzFailure,
    FuzzReport,
    make_case,
    replay_corpus,
    run_fuzz,
)
from repro.testing.generate import GenParams, build_fuzz_netlist, random_params
from repro.testing.oracle import (
    oracle_average_uniform,
    oracle_capacitance_matrix,
    oracle_load_capacitances,
    oracle_max_capacitance,
    oracle_node_values,
    oracle_sequence_capacitances,
    oracle_switching_capacitance,
    oracle_truth_tables,
)
from repro.testing.shrink import shrink_case

__all__ = [
    "CHECKS",
    "CaseContext",
    "FAULT_ENV_VAR",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "FuzzCase",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "GenParams",
    "Mismatch",
    "build_fuzz_netlist",
    "case_from_dict",
    "inject_faults",
    "case_to_dict",
    "iter_corpus",
    "load_case",
    "make_case",
    "oracle_average_uniform",
    "oracle_capacitance_matrix",
    "oracle_load_capacitances",
    "oracle_max_capacitance",
    "oracle_node_values",
    "oracle_sequence_capacitances",
    "oracle_switching_capacitance",
    "oracle_truth_tables",
    "random_params",
    "replay_corpus",
    "resolve_checks",
    "run_case",
    "save_case",
    "shrink_case",
    "single_check_runner",
]
