"""Differential-oracle and fuzzing harness.

This package is the *adversary* of the symbolic pipeline: an
independent oracle (:mod:`repro.testing.oracle`) that recomputes logic
values and Eq.-4 switching capacitance straight from the netlist with
none of the ``dd``/``sim``/``models`` code, plus a coverage-driven
fuzzer (:mod:`repro.testing.fuzz`) that cross-checks every
implementation pair and shrinks disagreements to minimal reproducers
for ``tests/corpus/``.
"""

from repro.testing.checks import (
    CHECKS,
    CaseContext,
    FuzzCase,
    Mismatch,
    resolve_checks,
    run_case,
    single_check_runner,
)
from repro.testing.corpus import (
    case_from_dict,
    case_to_dict,
    iter_corpus,
    load_case,
    save_case,
)
from repro.testing.fuzz import (
    FuzzConfig,
    FuzzFailure,
    FuzzReport,
    make_case,
    replay_corpus,
    run_fuzz,
)
from repro.testing.generate import GenParams, build_fuzz_netlist, random_params
from repro.testing.oracle import (
    oracle_average_uniform,
    oracle_capacitance_matrix,
    oracle_load_capacitances,
    oracle_max_capacitance,
    oracle_node_values,
    oracle_sequence_capacitances,
    oracle_switching_capacitance,
    oracle_truth_tables,
)
from repro.testing.shrink import shrink_case

__all__ = [
    "CHECKS",
    "CaseContext",
    "FuzzCase",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "GenParams",
    "Mismatch",
    "build_fuzz_netlist",
    "case_from_dict",
    "case_to_dict",
    "iter_corpus",
    "load_case",
    "make_case",
    "oracle_average_uniform",
    "oracle_capacitance_matrix",
    "oracle_load_capacitances",
    "oracle_max_capacitance",
    "oracle_node_values",
    "oracle_sequence_capacitances",
    "oracle_switching_capacitance",
    "oracle_truth_tables",
    "random_params",
    "replay_corpus",
    "resolve_checks",
    "run_case",
    "save_case",
    "shrink_case",
    "single_check_runner",
]
