"""Coverage-driven fuzzing loop for the symbolic power pipeline.

One iteration draws generator parameters, builds a seeded random
netlist plus random pattern pairs and a vector sequence, and runs every
differential check (:mod:`repro.testing.checks`) against the
independent oracle.  A coarse structural feature map steers exploration:
parameter points whose cases exhibit *new* features (a gate-op mix,
zero-load gates, dangling outputs, an approximated model…) are kept and
mutated, so the loop drifts toward circuit shapes it has not exercised
instead of re-rolling the same comfortable mid-size netlists.

Failures are shrunk to minimal reproducers
(:mod:`repro.testing.shrink`) and optionally written to the regression
corpus.  The loop is deterministic for a fixed ``(seed, iterations)``
pair; the time budget only ever truncates it.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import FuzzError
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.testing.checks import (
    FuzzCase,
    Mismatch,
    resolve_checks,
    run_case,
    single_check_runner,
)
from repro.testing.generate import (
    GenParams,
    build_fuzz_netlist,
    case_features,
    random_params,
)
from repro.testing.shrink import shrink_case

_MET = get_metrics()
_FUZZ_ITERATIONS = _MET.counter("fuzz.iterations")
_FUZZ_FAILURES = _MET.counter("fuzz.failures")
_FUZZ_FEATURES = _MET.gauge("fuzz.feature_buckets", kind="last")
_FUZZ_APPROX = _MET.counter("fuzz.approximated_cases")
_FUZZ_LEVELIZED = _MET.counter("fuzz.levelized_cases")
_FUZZ_SHRINKS = _MET.counter("fuzz.shrinks")

#: Re-mutate a covered parameter point with this probability; otherwise
#: draw an entirely fresh one.
_EXPLOIT_PROBABILITY = 0.55


@dataclass(frozen=True)
class FuzzFailure:
    """One confirmed, shrunk failure."""

    iteration: int
    seed: int
    mismatch: Mismatch
    case: FuzzCase  # the shrunk reproducer
    original_gates: int


@dataclass
class FuzzReport:
    """Outcome of one fuzzing run."""

    iterations_run: int = 0
    elapsed_seconds: float = 0.0
    failures: List[FuzzFailure] = field(default_factory=list)
    #: Distinct coarse feature tuples seen (coverage signal).
    features_seen: int = 0
    #: Iterations whose exact model needed approximation / had a
    #: levelized plan (sanity that the interesting paths were hit).
    approximated_cases: int = 0
    levelized_cases: int = 0
    checks_run: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = (
            "no mismatches"
            if self.ok
            else f"{len(self.failures)} failing case(s)"
        )
        return (
            f"{self.iterations_run} iterations in "
            f"{self.elapsed_seconds:.1f}s, {self.features_seen} feature "
            f"buckets, {self.approximated_cases} approximated / "
            f"{self.levelized_cases} levelized models: {verdict}"
        )


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one fuzzing run (mirrors the CLI flags)."""

    seed: int = 0
    iterations: int = 200
    time_budget_seconds: Optional[float] = None
    max_inputs: int = 7
    max_gates: int = 28
    checks: Optional[Tuple[str, ...]] = None
    shrink: bool = True
    shrink_budget: int = 200
    #: Stop after this many failures (0 = collect them all).
    max_failures: int = 5


def make_case(
    params: GenParams,
    seed: int,
    checks: Optional[Tuple[str, ...]] = None,
) -> FuzzCase:
    """Build the deterministic fuzz case for ``(params, seed)``."""
    netlist = build_fuzz_netlist(params, seed)
    rng = np.random.default_rng(seed)
    n = netlist.num_inputs
    num_pairs = int(rng.integers(4, 17))
    initial = rng.integers(0, 2, size=(num_pairs, n), dtype=np.int64).astype(bool)
    final = rng.integers(0, 2, size=(num_pairs, n), dtype=np.int64).astype(bool)
    # Bias a few pairs toward Hamming-close transitions (realistic vectors)
    # and include the identity transition (C must be 0 there).
    if num_pairs >= 2:
        final[0] = initial[0]
    if num_pairs >= 3:
        flip = rng.integers(0, n)
        final[1] = initial[1]
        final[1, flip] = ~final[1, flip]
    length = int(rng.integers(3, 9))
    sequence = rng.integers(0, 2, size=(length, n), dtype=np.int64).astype(bool)
    max_nodes = int(rng.integers(4, 33))
    return FuzzCase(
        netlist=netlist,
        seed=seed,
        initial=initial,
        final=final,
        sequence=sequence,
        max_nodes=max_nodes,
        checks=checks,
    )


def _observed_features(base: Tuple, observed: Dict[str, object]) -> Tuple:
    """Extend the structural key with behaviour the checks reported."""
    return base + (
        bool(observed.get("approximated")),
        bool(observed.get("levelized", True)),
        min(int(observed.get("model_nodes", 0)) // 64, 4),
    )


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Run the coverage-driven loop; deterministic for a fixed config."""
    if config.iterations < 0:
        raise FuzzError("iterations must be >= 0")
    selected = tuple(resolve_checks(config.checks))
    report = FuzzReport(checks_run=selected)
    master = random.Random(config.seed)
    coverage: Set[Tuple] = set()
    #: Parameter points that produced novel features, for exploitation.
    frontier: List[GenParams] = []
    started = time.monotonic()
    with get_tracer().span(
        "fuzz.run", seed=config.seed, iterations=config.iterations
    ) as span:
        _run_fuzz_loop(
            config, selected, report, master, coverage, frontier, started
        )
        span.update(
            iterations_run=report.iterations_run,
            failures=len(report.failures),
            feature_buckets=len(coverage),
        )

    report.features_seen = len(coverage)
    _FUZZ_FEATURES.update_max(len(coverage))
    report.elapsed_seconds = time.monotonic() - started
    return report


def _run_fuzz_loop(
    config: FuzzConfig,
    selected: Tuple[str, ...],
    report: FuzzReport,
    master: random.Random,
    coverage: Set[Tuple],
    frontier: List[GenParams],
    started: float,
) -> None:
    """The iteration loop of :func:`run_fuzz` (split out for the span)."""
    for iteration in range(config.iterations):
        if (
            config.time_budget_seconds is not None
            and time.monotonic() - started > config.time_budget_seconds
        ):
            break
        if frontier and master.random() < _EXPLOIT_PROBABILITY:
            params = master.choice(frontier).mutated(master)
            # Mutation drifts; keep the run inside its configured shape.
            if (
                params.num_inputs > config.max_inputs
                or params.num_gates > config.max_gates
            ):
                params = dc_replace(
                    params,
                    num_inputs=min(params.num_inputs, config.max_inputs),
                    num_gates=min(params.num_gates, config.max_gates),
                )
        else:
            params = random_params(
                master, max_inputs=config.max_inputs, max_gates=config.max_gates
            )
        case_seed = master.getrandbits(32)
        case = make_case(params, case_seed, checks=config.checks)
        mismatches, ctx = run_case(case, selected)
        report.iterations_run = iteration + 1
        _FUZZ_ITERATIONS.inc()

        features = _observed_features(case_features(case.netlist), ctx.observed)
        if features not in coverage:
            coverage.add(features)
            frontier.append(params)
            if len(frontier) > 64:
                frontier.pop(0)
        if ctx.observed.get("approximated"):
            report.approximated_cases += 1
            _FUZZ_APPROX.inc()
        if ctx.observed.get("levelized"):
            report.levelized_cases += 1
            _FUZZ_LEVELIZED.inc()

        for mismatch in mismatches:
            shrunk = case
            if config.shrink:
                shrunk = shrink_case(
                    case,
                    single_check_runner(mismatch.check),
                    mismatch,
                    budget=config.shrink_budget,
                )
                _FUZZ_SHRINKS.inc()
            _FUZZ_FAILURES.inc()
            report.failures.append(
                FuzzFailure(
                    iteration=iteration,
                    seed=case_seed,
                    mismatch=mismatch,
                    case=shrunk,
                    original_gates=case.netlist.num_gates,
                )
            )
        if config.max_failures and len(report.failures) >= config.max_failures:
            break


def replay_corpus(
    directory, checks: Optional[Sequence[str]] = None
) -> List[Tuple[str, Mismatch]]:
    """Run every corpus entry; returns (path, mismatch) for failures.

    A corpus entry that specifies its own check list replays exactly
    those checks; ``checks`` overrides for the whole run.
    """
    from repro.testing.corpus import iter_corpus

    failures: List[Tuple[str, Mismatch]] = []
    for path, case in iter_corpus(directory):
        mismatches, _ = run_case(case, checks)
        failures.extend((str(path), mismatch) for mismatch in mismatches)
    return failures
