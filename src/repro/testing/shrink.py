"""Greedy minimisation of failing fuzz cases.

A raw fuzzer failure is a 20-gate netlist with two dozen pattern pairs —
useless as a regression test or a bug report.  :func:`shrink_case`
reduces it while the *same failure mode* (same check, same raised-error
type) keeps reproducing:

1. patterns: keep only the witness pair / witness transition;
2. outputs: drop primary outputs one at a time;
3. gates: remove each gate together with its transitive fanout
   (keeping the netlist well-formed by construction);
4. inputs: drop primary inputs no remaining gate reads (deleting the
   corresponding pattern columns).

Every candidate is rebuilt from scratch and re-checked, so the shrinker
can never "shrink into" a different bug: a candidate that fails a
different way (e.g. a construction error) is rejected.

The result is what lands in ``tests/corpus/`` — a minimal reproducer
that replays deterministically.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional, Sequence, Set

from repro.netlist.netlist import Gate, Netlist
from repro.testing.checks import FuzzCase, Mismatch

#: Upper bound on candidate evaluations per shrink (keeps worst-case
#: shrink cost bounded even for large originals).
DEFAULT_SHRINK_BUDGET = 400

Runner = Callable[[FuzzCase], Optional[Mismatch]]


def rebuild_netlist(
    netlist: Netlist,
    keep_gates: Sequence[Gate],
    keep_inputs: Optional[Sequence[str]] = None,
) -> Netlist:
    """A fresh netlist containing only ``keep_gates`` (order preserved).

    Outputs are restricted to nets that still exist; if none survive,
    the last remaining gate output (or first input) becomes the output
    so the netlist stays a legal macro.
    """
    inputs = list(keep_inputs) if keep_inputs is not None else list(netlist.inputs)
    result = Netlist(
        netlist.name, netlist.library, output_load_fF=netlist.output_load_fF
    )
    for name in inputs:
        result.add_input(name)
    for gate in keep_gates:
        result.add_gate(gate.cell, gate.inputs, gate.output, name=gate.name)
    available: Set[str] = set(inputs) | {gate.output for gate in keep_gates}
    for net in netlist.outputs:
        if net in available:
            result.add_output(net)
    if not result.outputs:
        fallback = keep_gates[-1].output if keep_gates else inputs[0]
        result.add_output(fallback)
    return result


def _transitive_fanout(gates: Sequence[Gate], root: Gate) -> Set[str]:
    """Names of ``root`` and every gate depending (transitively) on it."""
    doomed_nets = {root.output}
    doomed = {root.name}
    changed = True
    while changed:
        changed = False
        for gate in gates:
            if gate.name in doomed:
                continue
            if any(net in doomed_nets for net in gate.inputs):
                doomed.add(gate.name)
                doomed_nets.add(gate.output)
                changed = True
    return doomed


class _Budget:
    def __init__(self, limit: int):
        self.remaining = limit

    def spend(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


def _reproduces(
    candidate: FuzzCase, runner: Runner, original: Mismatch, budget: _Budget
) -> bool:
    if not budget.spend():
        return False
    found = runner(candidate)
    return found is not None and original.same_failure(found)


def _shrink_patterns(
    case: FuzzCase, runner: Runner, original: Mismatch, budget: _Budget
) -> FuzzCase:
    """Reduce the pattern pairs / sequence to the failing witness."""
    witness = original.witness.get("pair_index")
    if case.num_pairs > 1:
        candidates: List[FuzzCase] = []
        if isinstance(witness, int) and 0 <= witness < case.num_pairs:
            candidates.append(
                replace(
                    case,
                    initial=case.initial[witness : witness + 1],
                    final=case.final[witness : witness + 1],
                )
            )
        candidates.append(
            replace(case, initial=case.initial[:1], final=case.final[:1])
        )
        for candidate in candidates:
            if _reproduces(candidate, runner, original, budget):
                case = candidate
                break
    cycle = original.witness.get("cycle")
    if case.sequence.shape[0] > 2:
        if isinstance(cycle, int) and 0 <= cycle < case.sequence.shape[0] - 1:
            window = case.sequence[cycle : cycle + 2]
        else:
            window = case.sequence[:2]
        candidate = replace(case, sequence=window)
        if _reproduces(candidate, runner, original, budget):
            case = candidate
    return case


def _shrink_outputs(
    case: FuzzCase, runner: Runner, original: Mismatch, budget: _Budget
) -> FuzzCase:
    changed = True
    while changed and len(case.netlist.outputs) > 1:
        changed = False
        for net in list(case.netlist.outputs):
            trimmed = rebuild_netlist(case.netlist, case.netlist.gates)
            trimmed.outputs.remove(net)
            if not trimmed.outputs:
                continue
            candidate = replace(case, netlist=trimmed)
            if _reproduces(candidate, runner, original, budget):
                case = candidate
                changed = True
                break
    return case


def _shrink_gates(
    case: FuzzCase, runner: Runner, original: Mismatch, budget: _Budget
) -> FuzzCase:
    changed = True
    while changed and case.netlist.num_gates > 1:
        changed = False
        # Latest gates first: removing a sink never orphans anything.
        for gate in reversed(case.netlist.gates):
            doomed = _transitive_fanout(case.netlist.gates, gate)
            survivors = [g for g in case.netlist.gates if g.name not in doomed]
            if not survivors:
                continue
            candidate = replace(
                case, netlist=rebuild_netlist(case.netlist, survivors)
            )
            if _reproduces(candidate, runner, original, budget):
                case = candidate
                changed = True
                break
    return case


def _shrink_inputs(
    case: FuzzCase, runner: Runner, original: Mismatch, budget: _Budget
) -> FuzzCase:
    """Drop inputs nothing reads, deleting their pattern columns."""
    netlist = case.netlist
    used: Set[str] = set()
    for gate in netlist.gates:
        used.update(gate.inputs)
    used.update(netlist.outputs)
    keep = [name for name in netlist.inputs if name in used]
    if len(keep) == len(netlist.inputs) or not keep:
        return case
    columns = [k for k, name in enumerate(netlist.inputs) if name in used]
    candidate = replace(
        case,
        netlist=rebuild_netlist(netlist, netlist.gates, keep_inputs=keep),
        initial=case.initial[:, columns],
        final=case.final[:, columns],
        sequence=case.sequence[:, columns],
    )
    if _reproduces(candidate, runner, original, budget):
        return candidate
    return case


def shrink_case(
    case: FuzzCase,
    runner: Runner,
    original: Mismatch,
    budget: int = DEFAULT_SHRINK_BUDGET,
) -> FuzzCase:
    """Greedily minimise ``case`` while ``runner`` keeps reproducing.

    ``runner`` runs the single failing check (see
    :func:`repro.testing.checks.single_check_runner`); ``original`` is
    the mismatch to reproduce.  Returns the smallest case found — the
    original if nothing could be removed.
    """
    tracker = _Budget(budget)
    previous_size = None
    while previous_size != (case.netlist.num_gates, case.num_pairs):
        previous_size = (case.netlist.num_gates, case.num_pairs)
        case = _shrink_patterns(case, runner, original, tracker)
        case = _shrink_gates(case, runner, original, tracker)
        case = _shrink_outputs(case, runner, original, tracker)
        case = _shrink_inputs(case, runner, original, tracker)
        if tracker.remaining <= 0:
            break
    return replace(case, label=(case.label + "+shrunk").lstrip("+"))
