"""Unified telemetry subsystem: span tracing, metrics, profiling reports.

Dependency-free (standard library only) observability layer for the
symbolic power pipeline:

- :mod:`repro.obs.trace` — nestable, thread-safe timed spans with
  attributes; exports structured JSON and Chrome trace-event files.
  Off by default: the global tracer is a shared no-op until
  :func:`enable_tracing` swaps in a collecting one.
- :mod:`repro.obs.metrics` — process-global registry of named counters,
  gauges and fixed-bucket histograms with snapshot / diff / merge, so
  parallel build workers can ship their numbers back to the parent.
- :mod:`repro.obs.report` — :class:`BuildTelemetry` (the per-build
  record, ex-``BuildReport``) and the human-readable report renderer
  behind ``repro stats``.

Instrument naming convention: ``<layer>.<operation>.<what>`` — e.g.
``dd.apply.cache_hits``, ``add.build.nodes_peak``, ``compiled.eval.rows``,
``sim.patterns_per_sec``.  See DESIGN.md §9.
"""

from repro.obs.metrics import (
    Counter,
    ERROR_BUCKETS,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    SIZE_BUCKETS,
    TIME_BUCKETS,
    enable_detailed_metrics,
    get_metrics,
    histogram_quantile,
    log_buckets,
    merge_snapshots,
)
from repro.obs.report import (
    BuildTelemetry,
    format_metrics,
    format_report,
    format_spans,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    current_trace_context,
    disable_tracing,
    enable_tracing,
    get_tracer,
    merge_chrome_traces,
    new_trace_context,
    set_tracer,
    use_trace_context,
)

__all__ = [
    # tracing
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    # distributed trace context
    "TraceContext",
    "new_trace_context",
    "current_trace_context",
    "use_trace_context",
    "merge_chrome_traces",
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_metrics",
    "enable_detailed_metrics",
    "merge_snapshots",
    "histogram_quantile",
    "log_buckets",
    "TIME_BUCKETS",
    "SIZE_BUCKETS",
    "ERROR_BUCKETS",
    "LATENCY_BUCKETS",
    # reporting
    "BuildTelemetry",
    "format_metrics",
    "format_spans",
    "format_report",
]
