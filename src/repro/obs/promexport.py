"""Prometheus text-format exposition for metrics snapshots.

Renders the plain snapshot dictionaries of :mod:`repro.obs.metrics`
(``{name: instrument_state}``) in the Prometheus exposition format
0.0.4 and serves them over a stdlib HTTP endpoint — no client library,
no dependencies, scrapeable by any Prometheus-compatible collector.

Mapping rules:

- instrument names swap dots for underscores (``serve.requests`` →
  ``serve_requests``);
- counters get the conventional ``_total`` suffix;
- gauges export as-is;
- histograms expand to cumulative ``_bucket{le="..."}`` series plus
  ``_sum`` and ``_count`` (the internal derived ``p50``/``p95``/``p99``
  keys are dropped — Prometheus computes quantiles server-side from the
  buckets);
- every series from a per-shard snapshot carries a ``shard`` label, so
  cluster totals are one ``sum by`` away and a restarted shard's
  counter reset is visible instead of silently folded away.

The :class:`MetricsExporter` serves whatever a ``render`` callable
returns, re-rendered per scrape — the cluster wires it to the snapshots
its shard workers continuously *push* over their control pipes, so a
scrape never blocks on a slow or dead shard.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Mapping, Optional

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """A metric name in Prometheus' ``[a-zA-Z0-9_:]`` alphabet."""
    return _NAME_RE.sub("_", name)


def _fmt(value) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number == float("inf"):
        return "+Inf"
    if number == float("-inf"):
        return "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return f"{number:.10g}"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def _labels(parts: Dict[str, str]) -> str:
    if not parts:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in parts.items()
    )
    return "{" + inner + "}"


def _add_instrument(
    families: Dict[str, Dict],
    name: str,
    state: Dict,
    labelparts: Dict[str, str],
) -> None:
    kind = state.get("type")
    base = prometheus_name(name)
    if kind == "counter":
        family = families.setdefault(
            base + "_total", {"type": "counter", "samples": []}
        )
        family["samples"].append(
            (base + "_total", _labels(labelparts), _fmt(state["value"]))
        )
    elif kind == "gauge":
        family = families.setdefault(base, {"type": "gauge", "samples": []})
        family["samples"].append(
            (base, _labels(labelparts), _fmt(state["value"]))
        )
    elif kind == "histogram":
        family = families.setdefault(
            base, {"type": "histogram", "samples": []}
        )
        cumulative = 0
        for bound, count in zip(state["buckets"], state["counts"]):
            cumulative += count
            family["samples"].append(
                (
                    base + "_bucket",
                    _labels({**labelparts, "le": _fmt(bound)}),
                    _fmt(cumulative),
                )
            )
        cumulative += state["counts"][len(state["buckets"])]
        family["samples"].append(
            (
                base + "_bucket",
                _labels({**labelparts, "le": "+Inf"}),
                _fmt(cumulative),
            )
        )
        family["samples"].append(
            (base + "_sum", _labels(labelparts), _fmt(state["sum"]))
        )
        family["samples"].append(
            (base + "_count", _labels(labelparts), _fmt(state["count"]))
        )
    # Unknown instrument types are skipped: exposition must tolerate
    # snapshots from newer writers.


def render_metrics(
    snapshots: Mapping[str, Dict[str, Dict]],
    label: str = "shard",
    unlabeled: Optional[Dict[str, Dict]] = None,
) -> str:
    """Prometheus text page for labelled snapshots + an unlabelled one.

    ``snapshots`` maps a label value (shard id) to that process's
    snapshot; ``unlabeled`` carries process-local series (the cluster
    router's own ``serve.cluster.*`` instruments).  Families are grouped
    so each ``# TYPE`` header precedes all of its series, as the format
    requires.
    """
    families: Dict[str, Dict] = {}
    for value in sorted(snapshots):
        for name, state in sorted(snapshots[value].items()):
            _add_instrument(families, name, state, {label: value})
    for name, state in sorted((unlabeled or {}).items()):
        _add_instrument(families, name, state, {})
    lines = []
    for family_name in sorted(families):
        family = families[family_name]
        lines.append(f"# TYPE {family_name} {family['type']}")
        for sample_name, labelstr, value in family["samples"]:
            lines.append(f"{sample_name}{labelstr} {value}")
    return "\n".join(lines) + ("\n" if lines else "")


class MetricsExporter:
    """A ``/metrics`` HTTP endpoint on a daemon thread (stdlib only).

    ``render`` is called per scrape and must return the full text page;
    a render error answers 500 with the reason instead of killing the
    serving thread.  ``port=0`` binds an ephemeral port, read back from
    ``self.port`` after construction.
    """

    def __init__(
        self,
        render: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        exporter = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib API
                if self.path.split("?", 1)[0].rstrip("/") not in (
                    "",
                    "/metrics",
                ):
                    self.send_error(404, "try /metrics")
                    return
                try:
                    body = exporter._render().encode("utf-8")
                except Exception as exc:  # noqa: BLE001 - keep serving
                    self.send_error(500, f"{type(exc).__name__}: {exc}")
                    return
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8",
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # noqa: D102 - silence
                pass

        self._render = render
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host = self._httpd.server_address[0]
        self.port = int(self._httpd.server_address[1])
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsExporter":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None


__all__ = ["MetricsExporter", "prometheus_name", "render_metrics"]
