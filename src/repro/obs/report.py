"""Build bookkeeping and human-readable instrumentation reports.

:class:`BuildTelemetry` is the per-construction record previously known
as ``repro.models.addmodel.BuildReport`` (that name remains as a compat
alias); it moved here so the build pipeline, the serialiser and the CLI
all share one telemetry type without import cycles.

:func:`format_report` renders a metrics snapshot (plus an optional span
rollup) as the text report printed by ``repro stats``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class BuildTelemetry:
    """Bookkeeping from one ADD model construction run.

    ``cpu_seconds`` corresponds to the CPU column of the paper's Table 1;
    ``num_approximations`` counts ``add_approx`` invocations;
    ``peak_nodes`` is the largest intermediate ADD encountered.
    ``cache_hits`` / ``cache_misses`` are the manager's memoised-operation
    counters over this build (see
    :meth:`repro.dd.manager.DDManager.cache_stats`), making the op-cache
    effectiveness observable instead of asserted.
    """

    macro_name: str
    strategy: str
    max_nodes: Optional[int]
    final_nodes: int
    peak_nodes: int
    num_approximations: int
    cpu_seconds: float
    num_gates: int
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of op-cache lookups answered from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def summary(self) -> str:
        """One-paragraph human-readable digest of the build."""
        budget = "exact" if self.max_nodes is None else f"MAX={self.max_nodes}"
        return (
            f"{self.macro_name}: {self.num_gates} gates -> "
            f"{self.final_nodes} nodes ({budget}, strategy {self.strategy}, "
            f"peak {self.peak_nodes}, {self.num_approximations} collapses) "
            f"in {self.cpu_seconds:.3f}s; op-cache hit rate "
            f"{self.cache_hit_rate:.2f}"
        )


def _format_value(state: dict) -> str:
    kind = state["type"]
    if kind == "counter":
        value = state["value"]
        return f"{value:,}" if isinstance(value, int) else f"{value:,.1f}"
    if kind == "gauge":
        value = state["value"]
        return f"{value:,.2f}".rstrip("0").rstrip(".")
    count = state["count"]
    if not count:
        return "0 observations"
    return (
        f"n={count} mean={state['sum'] / count:.4g} "
        f"min={state['min']:.4g} max={state['max']:.4g}"
    )


def format_metrics(snapshot: Dict[str, dict]) -> str:
    """Render a metrics snapshot grouped by instrument-name prefix."""
    lines = []
    previous_group = None
    for name in sorted(snapshot):
        group = name.split(".", 1)[0]
        if group != previous_group:
            if previous_group is not None:
                lines.append("")
            lines.append(f"[{group}]")
            previous_group = group
        lines.append(f"  {name:<32s} {_format_value(snapshot[name])}")
    return "\n".join(lines) if lines else "(no instruments recorded)"


def format_spans(rollup: Dict[str, dict]) -> str:
    """Render a span-name rollup (``Tracer.aggregate``) as a profile table."""
    if not rollup:
        return "(no spans recorded; run with --trace to collect them)"
    lines = [f"{'span':<34s}{'calls':>7s}{'total':>10s}{'max':>10s}"]
    for name, entry in sorted(
        rollup.items(), key=lambda kv: -kv[1]["total_s"]
    ):
        lines.append(
            f"{name:<34s}{entry['count']:>7d}"
            f"{entry['total_s'] * 1e3:>8.1f}ms{entry['max_s'] * 1e3:>8.1f}ms"
        )
    return "\n".join(lines)


def format_report(
    snapshot: Dict[str, dict],
    span_rollup: Optional[Dict[str, dict]] = None,
    title: str = "instrumentation report",
) -> str:
    """The full ``repro stats`` text report: metrics, then the span profile."""
    parts = [f"=== {title} ===", "", format_metrics(snapshot)]
    if span_rollup is not None:
        parts += ["", "--- span profile ---", format_spans(span_rollup)]
    return "\n".join(parts)
