"""Span tracing: nestable timed spans with attributes and trace export.

The qualitative half of the telemetry subsystem: where does a symbolic
build, a reorder search or an evaluation sweep actually spend its time?
Instrumented code opens *spans* —

    with get_tracer().span("add.build", macro=netlist.name) as span:
        ...
        span.set("peak_nodes", peak)

— and the resulting tree is exported either as structured JSON
(:meth:`Tracer.to_dict`) or in the Chrome trace-event format
(:meth:`Tracer.to_chrome`), loadable in ``chrome://tracing`` / Perfetto.

Tracing is **off by default**: the global tracer is a :class:`NullTracer`
whose :meth:`~NullTracer.span` returns one shared, reusable no-op context
manager — no allocation, no clock reads, no lock.  Hot call sites that
want to attach attributes that are expensive to compute should guard on
``tracer.enabled``::

    tracer = get_tracer()
    with tracer.span("dd.approximate") as span:
        ...
        if tracer.enabled:
            span.set("size_after", manager.size(root))

Thread-safety: span nesting is tracked per thread (``threading.local``
stacks); finished spans are appended to a single list under a lock.
Clocks are monotonic (``time.perf_counter``), immune to wall-clock
adjustment; the tracer additionally remembers the wall-clock epoch of
its origin so traces from *different processes* can be merged onto one
timeline (see :func:`merge_chrome_traces`).

Distributed tracing
-------------------
A :class:`TraceContext` names one logical request end to end:
``trace_id`` identifies the whole operation (a load run, one CLI query),
``span_id`` the current hop, ``parent_id`` the hop it came from.  The
context travels in-process through a ``contextvars`` variable (so it
follows asyncio tasks and survives thread handoff when copied) and
across processes as a W3C-traceparent-shaped string
(``00-<32 hex trace_id>-<16 hex span_id>-01``) injected into the
JSON-lines protocol envelope by clients and honoured by servers.  While
a context is active, every span the collecting tracer opens is stamped
with the trace/span/parent ids, so ``repro trace-merge`` can assemble
per-process span files into one cross-process timeline keyed by
``trace_id``.

Propagation is decoupled from recording: ``enable_tracing(record=False)``
installs a tracer that still mints and forwards trace contexts (ids flow
through the wire envelope, into slow-query logs and error reports) but
records no spans — the always-on correlation mode, orders of magnitude
cheaper than full span collection.
"""

from __future__ import annotations

import contextvars
import functools
import json
import os
import random
import threading
import time
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)


# ---------------------------------------------------------------------------
# Distributed trace context
# ---------------------------------------------------------------------------
#: Trace/span ids come from a process-local PRNG seeded with real
#: entropy, not from ``os.urandom`` per id: ``getrandom(2)`` costs
#: microseconds per call, which dominates the propagation hot path (two
#: ids per request attempt).  The PRNG is reseeded in fork children so
#: sibling shard workers never replay one id stream.
_ID_RNG = random.Random(os.urandom(16))


def _reseed_ids() -> None:
    global _ID_RNG
    _ID_RNG = random.Random(os.urandom(16))


if hasattr(os, "register_at_fork"):  # POSIX only
    os.register_at_fork(after_in_child=_reseed_ids)


#: Last trace id that passed hex validation in ``from_traceparent`` —
#: a one-slot cache, because every request on a connection shares one.
_LAST_VALID_TRACE_ID = ""


def _new_id(nbytes: int) -> str:
    """Random hex id, unique across processes (entropy-seeded PRNG)."""
    return f"{_ID_RNG.getrandbits(nbytes * 8):0{nbytes * 2}x}"


class TraceContext:
    """Identity of one hop of a distributed request.

    ``trace_id`` (32 hex chars) names the whole end-to-end operation;
    ``span_id`` (16 hex chars) names this hop; ``parent_id`` is the hop
    that caused it (None at the root).  Immutable by convention —
    derivation always produces a new context, never mutates.  A plain
    slots class (not a dataclass): contexts are allocated per request
    attempt on the serving hot path.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "_prefix")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        #: Lazily cached wire-header prefix ("00-<trace_id>-"): minting
        #: a header per request attempt is the propagation hot path.
        self._prefix: Optional[str] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceContext({self.trace_id!r}, {self.span_id!r}, "
            f"{self.parent_id!r})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.parent_id == other.parent_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id, self.parent_id))

    def child(self) -> "TraceContext":
        """A new hop caused by this one: same trace, fresh span id."""
        return TraceContext(self.trace_id, _new_id(8), self.span_id)

    def retry(self) -> "TraceContext":
        """A fresh attempt of the *same* hop: same trace and parent,
        fresh span id — so retries are distinguishable in the timeline
        but still belong to one trace."""
        return TraceContext(self.trace_id, _new_id(8), self.parent_id)

    def to_traceparent(self) -> str:
        """W3C-traceparent-shaped wire form (version 00, sampled flag)."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    def child_traceparent(self) -> str:
        """Wire form of a fresh child hop, without allocating the child.

        Propagation-only fast path: the wire carries just the trace and
        span ids, so when no spans are being recorded locally the child
        context object itself is never needed.
        """
        prefix = self._prefix
        if prefix is None:
            prefix = self._prefix = f"00-{self.trace_id}-"
        return f"{prefix}{_ID_RNG.getrandbits(64):016x}-01"

    @staticmethod
    def from_traceparent(header: object) -> Optional["TraceContext"]:
        """Parse a traceparent string; None when malformed (never raises).

        Tolerant by design: telemetry must not turn a bad header into a
        failed request.
        """
        if not isinstance(header, str):
            return None
        if (
            len(header) == 55
            and header[2] == "-"
            and header[35] == "-"
            and header[52] == "-"
        ):
            # Canonical fixed-width header: slice instead of split (the
            # serving hot path parses one of these per request).
            trace_id = header[3:35]
            span_id = header[36:52]
        else:
            parts = header.split("-")
            if len(parts) != 4:
                return None
            _version, trace_id, span_id, _flags = parts
            if len(trace_id) != 32 or len(span_id) != 16:
                return None
        global _LAST_VALID_TRACE_ID
        if trace_id != _LAST_VALID_TRACE_ID:
            # A connection's requests share one trace id; validating it
            # once (instead of per request) keeps the hot path cheap.
            try:
                int(trace_id, 16)
            except ValueError:
                return None
            _LAST_VALID_TRACE_ID = trace_id
        try:
            int(span_id, 16)
        except ValueError:
            return None
        return TraceContext(trace_id, span_id)


def new_trace_context() -> TraceContext:
    """A fresh root context (new trace_id, no parent)."""
    return TraceContext(_new_id(16), _new_id(8), None)


#: The active trace context of the current task/thread (None = untraced).
_TRACE_CONTEXT: "contextvars.ContextVar[Optional[TraceContext]]" = (
    contextvars.ContextVar("repro_trace_context", default=None)
)


def current_trace_context() -> Optional[TraceContext]:
    """The trace context active in this task/thread, if any."""
    return _TRACE_CONTEXT.get()


class _TraceContextScope:
    """Context manager installing (and restoring) the active context."""

    __slots__ = ("_context", "_token")

    def __init__(self, context: Optional[TraceContext]):
        self._context = context
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Optional[TraceContext]:
        self._token = _TRACE_CONTEXT.set(self._context)
        return self._context

    def __exit__(self, *exc_info) -> bool:
        assert self._token is not None
        _TRACE_CONTEXT.reset(self._token)
        return False


def use_trace_context(
    context: Optional[TraceContext],
) -> _TraceContextScope:
    """``with use_trace_context(ctx): ...`` — scope the active context."""
    return _TraceContextScope(context)


class Span:
    """One finished-or-open span: name, monotonic start/end, attributes."""

    __slots__ = (
        "name", "start", "end", "attrs", "thread_id", "depth", "error",
        "trace_id", "span_id", "parent_id",
    )

    def __init__(self, name: str, start: float, thread_id: int, depth: int):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = {}
        self.thread_id = thread_id
        self.depth = depth
        self.error: Optional[str] = None
        #: Distributed-trace identity, stamped at open time from the
        #: active :class:`TraceContext` (None when untraced).
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None

    @property
    def duration(self) -> float:
        """Elapsed seconds (0 while the span is still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute (node counts, cache stats, sizes...)."""
        self.attrs[key] = value

    def update(self, **attrs: Any) -> None:
        """Attach several attributes at once."""
        self.attrs.update(attrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, depth={self.depth})"


class _SpanContext:
    """Context manager that opens a span on enter and records it on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        span = self._tracer._open(self._name)
        if self._attrs:
            span.attrs.update(self._attrs)
        self._span = span
        return span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        span = self._span
        assert span is not None
        if exc is not None:
            # Record the failure on the span but never swallow it.
            span.error = f"{type(exc).__name__}: {exc}"
        self._tracer._close(span)
        return False


class Tracer:
    """Collecting tracer: every span ends up in an in-memory record list.

    With ``record=False`` the tracer still *counts as enabled* — clients
    mint trace contexts and propagate them over the wire, servers parse
    and scope them — but ``span()``/``event()`` are no-ops, so nothing
    is collected.  That is the always-on correlation mode: trace ids
    flow through slow-query logs and error reports at a fraction of the
    cost of full span recording.
    """

    enabled = True

    def __init__(self, record: bool = True):
        self.record = record
        self._lock = threading.Lock()
        #: Nesting stack, *context*-local (not thread-local): concurrent
        #: asyncio tasks share one thread, and a task must never parent
        #: its span on another task's currently-open span — under load
        #: generators every task carries the same trace_id, so a shared
        #: stack would cross-link (and occasionally duplicate) parents.
        self._stack_var: "contextvars.ContextVar[Tuple[Span, ...]]" = (
            contextvars.ContextVar("repro_span_stack", default=())
        )
        self._spans: List[Span] = []
        #: Monotonic origin; span timestamps are exported relative to it.
        self.origin = time.perf_counter()
        #: Wall-clock time of the origin, so exports from different
        #: processes can be rebased onto one shared timeline.
        self.origin_epoch = time.time()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _stack(self) -> "Tuple[Span, ...]":
        return self._stack_var.get()

    def _stamp(self, span: Span, stack: "Tuple[Span, ...]") -> None:
        """Stamp distributed-trace identity from the active context.

        The span becomes a fresh hop of the active trace; its parent is
        the innermost enclosing span of the *same* trace (in-process
        nesting) or the context's own span id (the remote caller's hop).
        """
        context = _TRACE_CONTEXT.get()
        if context is None:
            return
        span.trace_id = context.trace_id
        span.span_id = _new_id(8)
        for enclosing in reversed(stack):
            if enclosing.trace_id == context.trace_id:
                span.parent_id = enclosing.span_id
                break
        else:
            span.parent_id = context.span_id

    def _open(self, name: str) -> Span:
        stack = self._stack()
        span = Span(
            name, time.perf_counter(), threading.get_ident(), len(stack)
        )
        self._stamp(span, stack)
        self._stack_var.set(stack + (span,))
        return span

    def _close(self, span: Span) -> None:
        span.end = time.perf_counter()
        stack = self._stack()
        # Exception-safe unwind: drop this span plus any abandoned
        # children above it (identity scan — leave the stack untouched
        # if the span was opened in a different context).
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is span:
                self._stack_var.set(stack[:i])
                break
        with self._lock:
            self._spans.append(span)

    def span(self, name: str, **attrs: Any):
        """Context manager for one nested, timed span."""
        if not self.record:
            return _NULL_SPAN
        return _SpanContext(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instantaneous (zero-duration) event."""
        if not self.record:
            return
        now = time.perf_counter()
        stack = self._stack()
        span = Span(name, now, threading.get_ident(), len(stack))
        span.end = now
        span.attrs = attrs
        self._stamp(span, stack)
        with self._lock:
            self._spans.append(span)

    def traced(self, name: Optional[str] = None) -> Callable:
        """Decorator form: wrap a callable in a span named after it."""

        def decorate(func: Callable) -> Callable:
            span_name = name or func.__qualname__

            @functools.wraps(func)
            def wrapper(*args, **kwargs):
                with self.span(span_name):
                    return func(*args, **kwargs)

            return wrapper

        return decorate

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def spans(self) -> List[Span]:
        """Finished spans in completion order (children before parents)."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Drop all recorded spans and restart the export timebase."""
        with self._lock:
            self._spans.clear()
            self.origin = time.perf_counter()
            self.origin_epoch = time.time()

    def aggregate(self) -> Dict[str, dict]:
        """Per-name rollup: call count, total/max seconds.

        The summary view used by ``repro stats`` — a profile by span name
        rather than a timeline.
        """
        rollup: Dict[str, dict] = {}
        for span in self.spans():
            entry = rollup.setdefault(
                span.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            entry["count"] += 1
            entry["total_s"] += span.duration
            entry["max_s"] = max(entry["max_s"], span.duration)
        return rollup

    def to_dict(self) -> dict:
        """Structured-JSON export (stable schema, versioned)."""
        return {
            "format": "repro-trace",
            "version": 2,
            "origin_epoch_s": self.origin_epoch,
            "spans": [
                {
                    "name": span.name,
                    "start_s": span.start - self.origin,
                    "duration_s": span.duration,
                    "depth": span.depth,
                    "thread": span.thread_id,
                    "attrs": span.attrs,
                    **({"error": span.error} if span.error else {}),
                    **(
                        {
                            "trace_id": span.trace_id,
                            "span_id": span.span_id,
                            "parent_id": span.parent_id,
                        }
                        if span.trace_id
                        else {}
                    ),
                }
                for span in self.spans()
            ],
        }

    def to_chrome(self) -> dict:
        """Chrome trace-event export (``chrome://tracing`` / Perfetto).

        Every span becomes one complete event (``ph: "X"``) with
        microsecond timestamps; attributes ride along in ``args``.  The
        ``metadata`` block anchors the monotonic timebase to wall-clock
        time so :func:`merge_chrome_traces` can align exports from
        several processes on one timeline.
        """
        events = []
        pid = os.getpid()
        for span in self.spans():
            trace_fields = (
                {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                }
                if span.trace_id
                else {}
            )
            events.append(
                {
                    "name": span.name,
                    "cat": span.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": (span.start - self.origin) * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": pid,
                    "tid": span.thread_id,
                    "args": {
                        **span.attrs,
                        **({"error": span.error} if span.error else {}),
                        **trace_fields,
                    },
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "metadata": {
                "origin_epoch_us": self.origin_epoch * 1e6,
                "pid": pid,
            },
        }

    def write_chrome(self, path: str) -> None:
        """Write the Chrome trace-event JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle, indent=1, default=str)
            handle.write("\n")

    def write_json(self, path: str) -> None:
        """Write the structured-JSON trace file."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1, default=str)
            handle.write("\n")


def _event_matches_trace(event: dict, trace_id: str) -> bool:
    args = event.get("args") or {}
    if args.get("trace_id") == trace_id:
        return True
    # Batch-level spans (flush, fused kernel) serve several traces at
    # once and carry the whole set instead of a single identity.
    trace_ids = args.get("trace_ids")
    return isinstance(trace_ids, (list, tuple)) and trace_id in trace_ids


def merge_chrome_traces(
    payloads: Sequence[dict], trace_id: Optional[str] = None
) -> dict:
    """Merge Chrome-trace exports from several processes onto one timeline.

    Each payload's ``metadata.origin_epoch_us`` anchors its monotonic
    timestamps to wall-clock time; events are rebased so ``ts=0`` is the
    earliest origin across all payloads.  Payloads without the anchor
    (foreign traces) are kept unshifted.  When ``trace_id`` is given only
    events belonging to that trace survive — matched by ``args.trace_id``
    or membership in ``args.trace_ids`` (batch-level spans).
    """
    origins = [
        payload["metadata"]["origin_epoch_us"]
        for payload in payloads
        if isinstance(payload.get("metadata"), dict)
        and isinstance(
            payload["metadata"].get("origin_epoch_us"), (int, float)
        )
    ]
    base = min(origins) if origins else 0.0
    events: List[dict] = []
    pids = set()
    for payload in payloads:
        metadata = payload.get("metadata") or {}
        origin = metadata.get("origin_epoch_us")
        shift = (origin - base) if isinstance(origin, (int, float)) else 0.0
        for event in payload.get("traceEvents", ()):
            if trace_id is not None and not _event_matches_trace(
                event, trace_id
            ):
                continue
            merged = dict(event)
            merged["ts"] = event.get("ts", 0.0) + shift
            events.append(merged)
            pids.add(merged.get("pid"))
    events.sort(key=lambda event: event.get("ts", 0.0))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "merged_from": len(payloads),
            "pids": sorted(pid for pid in pids if pid is not None),
            **({"trace_id": trace_id} if trace_id else {}),
        },
    }


class _NullSpan:
    """Shared do-nothing span/context manager (the default-off fast path)."""

    __slots__ = ()
    attrs: Dict[str, Any] = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def update(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Default tracer: every operation is a constant-time no-op."""

    enabled = False
    record = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def traced(self, name: Optional[str] = None) -> Callable:
        def decorate(func: Callable) -> Callable:
            return func

        return decorate


NULL_TRACER = NullTracer()

_TRACER: "Tracer | NullTracer" = NULL_TRACER


def get_tracer() -> "Tracer | NullTracer":
    """The process-global tracer (a no-op unless tracing was enabled)."""
    return _TRACER


def set_tracer(tracer: "Tracer | NullTracer") -> "Tracer | NullTracer":
    """Install ``tracer`` globally; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def enable_tracing(record: bool = True) -> Tracer:
    """Install (and return) a fresh collecting tracer as the global one.

    ``record=False`` enables *propagation only*: trace contexts are
    minted and forwarded across the wire, but no spans are collected.
    """
    tracer = Tracer(record=record)
    set_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    """Restore the no-op tracer."""
    set_tracer(NULL_TRACER)
