"""Span tracing: nestable timed spans with attributes and trace export.

The qualitative half of the telemetry subsystem: where does a symbolic
build, a reorder search or an evaluation sweep actually spend its time?
Instrumented code opens *spans* —

    with get_tracer().span("add.build", macro=netlist.name) as span:
        ...
        span.set("peak_nodes", peak)

— and the resulting tree is exported either as structured JSON
(:meth:`Tracer.to_dict`) or in the Chrome trace-event format
(:meth:`Tracer.to_chrome`), loadable in ``chrome://tracing`` / Perfetto.

Tracing is **off by default**: the global tracer is a :class:`NullTracer`
whose :meth:`~NullTracer.span` returns one shared, reusable no-op context
manager — no allocation, no clock reads, no lock.  Hot call sites that
want to attach attributes that are expensive to compute should guard on
``tracer.enabled``::

    tracer = get_tracer()
    with tracer.span("dd.approximate") as span:
        ...
        if tracer.enabled:
            span.set("size_after", manager.size(root))

Thread-safety: span nesting is tracked per thread (``threading.local``
stacks); finished spans are appended to a single list under a lock.
Clocks are monotonic (``time.perf_counter``), immune to wall-clock
adjustment.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional


class Span:
    """One finished-or-open span: name, monotonic start/end, attributes."""

    __slots__ = ("name", "start", "end", "attrs", "thread_id", "depth", "error")

    def __init__(self, name: str, start: float, thread_id: int, depth: int):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = {}
        self.thread_id = thread_id
        self.depth = depth
        self.error: Optional[str] = None

    @property
    def duration(self) -> float:
        """Elapsed seconds (0 while the span is still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute (node counts, cache stats, sizes...)."""
        self.attrs[key] = value

    def update(self, **attrs: Any) -> None:
        """Attach several attributes at once."""
        self.attrs.update(attrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, depth={self.depth})"


class _SpanContext:
    """Context manager that opens a span on enter and records it on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        span = self._tracer._open(self._name)
        if self._attrs:
            span.attrs.update(self._attrs)
        self._span = span
        return span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        span = self._span
        assert span is not None
        if exc is not None:
            # Record the failure on the span but never swallow it.
            span.error = f"{type(exc).__name__}: {exc}"
        self._tracer._close(span)
        return False


class Tracer:
    """Collecting tracer: every span ends up in an in-memory record list."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._local = threading.local()
        self._spans: List[Span] = []
        #: Monotonic origin; span timestamps are exported relative to it.
        self.origin = time.perf_counter()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, name: str) -> Span:
        stack = self._stack()
        span = Span(
            name, time.perf_counter(), threading.get_ident(), len(stack)
        )
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end = time.perf_counter()
        stack = self._stack()
        # Exception-safe unwind: pop through any abandoned children.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        with self._lock:
            self._spans.append(span)

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Context manager for one nested, timed span."""
        return _SpanContext(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instantaneous (zero-duration) event."""
        now = time.perf_counter()
        span = Span(name, now, threading.get_ident(), len(self._stack()))
        span.end = now
        span.attrs = attrs
        with self._lock:
            self._spans.append(span)

    def traced(self, name: Optional[str] = None) -> Callable:
        """Decorator form: wrap a callable in a span named after it."""

        def decorate(func: Callable) -> Callable:
            span_name = name or func.__qualname__

            @functools.wraps(func)
            def wrapper(*args, **kwargs):
                with self.span(span_name):
                    return func(*args, **kwargs)

            return wrapper

        return decorate

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def spans(self) -> List[Span]:
        """Finished spans in completion order (children before parents)."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Drop all recorded spans and restart the export timebase."""
        with self._lock:
            self._spans.clear()
            self.origin = time.perf_counter()

    def aggregate(self) -> Dict[str, dict]:
        """Per-name rollup: call count, total/max seconds.

        The summary view used by ``repro stats`` — a profile by span name
        rather than a timeline.
        """
        rollup: Dict[str, dict] = {}
        for span in self.spans():
            entry = rollup.setdefault(
                span.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            entry["count"] += 1
            entry["total_s"] += span.duration
            entry["max_s"] = max(entry["max_s"], span.duration)
        return rollup

    def to_dict(self) -> dict:
        """Structured-JSON export (stable schema, versioned)."""
        return {
            "format": "repro-trace",
            "version": 1,
            "spans": [
                {
                    "name": span.name,
                    "start_s": span.start - self.origin,
                    "duration_s": span.duration,
                    "depth": span.depth,
                    "thread": span.thread_id,
                    "attrs": span.attrs,
                    **({"error": span.error} if span.error else {}),
                }
                for span in self.spans()
            ],
        }

    def to_chrome(self) -> dict:
        """Chrome trace-event export (``chrome://tracing`` / Perfetto).

        Every span becomes one complete event (``ph: "X"``) with
        microsecond timestamps; attributes ride along in ``args``.
        """
        events = []
        pid = os.getpid()
        for span in self.spans():
            events.append(
                {
                    "name": span.name,
                    "cat": span.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": (span.start - self.origin) * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": pid,
                    "tid": span.thread_id,
                    "args": {
                        **span.attrs,
                        **({"error": span.error} if span.error else {}),
                    },
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: str) -> None:
        """Write the Chrome trace-event JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle, indent=1, default=str)
            handle.write("\n")

    def write_json(self, path: str) -> None:
        """Write the structured-JSON trace file."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1, default=str)
            handle.write("\n")


class _NullSpan:
    """Shared do-nothing span/context manager (the default-off fast path)."""

    __slots__ = ()
    attrs: Dict[str, Any] = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def update(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Default tracer: every operation is a constant-time no-op."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def traced(self, name: Optional[str] = None) -> Callable:
        def decorate(func: Callable) -> Callable:
            return func

        return decorate


NULL_TRACER = NullTracer()

_TRACER: "Tracer | NullTracer" = NULL_TRACER


def get_tracer() -> "Tracer | NullTracer":
    """The process-global tracer (a no-op unless tracing was enabled)."""
    return _TRACER


def set_tracer(tracer: "Tracer | NullTracer") -> "Tracer | NullTracer":
    """Install ``tracer`` globally; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def enable_tracing() -> Tracer:
    """Install (and return) a fresh collecting tracer as the global one."""
    tracer = Tracer()
    set_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    """Restore the no-op tracer."""
    set_tracer(NULL_TRACER)
