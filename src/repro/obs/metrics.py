"""Metrics registry: named counters, gauges and fixed-bucket histograms.

The registry is the quantitative half of the telemetry subsystem
(:mod:`repro.obs`): instrumented code increments *named instruments*
(``dd.apply.cache_hits``, ``add.build.nodes_peak``, ...) and observers
take :meth:`MetricsRegistry.snapshot` views that are plain
JSON-serialisable dictionaries.  Snapshots support :meth:`diff` (what
happened between two points) and :meth:`merge` (combine measurements
from parallel workers shipped back through the model-serialisation
round trip).

Design constraints, in order:

1. **Negligible overhead.**  An instrument handle is a tiny object with
   ``__slots__``; ``Counter.inc`` is one attribute add.  Handles are
   stable for the lifetime of the registry — :meth:`MetricsRegistry.reset`
   zeroes values *in place* — so hot modules cache them at import time
   and never pay a name lookup per event.
2. **No dependencies.**  Standard library only.
3. **Mergeable.**  Counters and histogram buckets add; gauges declare a
   merge ``kind`` — ``"max"`` for peak readings (associative, loss-free)
   and ``"last"`` for levels/rates where the freshest write must win —
   so combining per-process snapshots never lies.

Expensive *derived* metrics (collapse error, memory gauges — anything
that needs an extra diagram traversal) are guarded by the registry's
``detailed`` flag, off by default and switched on by the CLI's
``--metrics`` flag / ``repro stats``.

Instrument naming convention: dot-separated ``<layer>.<operation>.<what>``,
e.g. ``dd.apply.calls``, ``compiled.eval.rows``, ``sim.patterns_per_sec``.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ObsError

#: Default histogram bucket upper bounds for durations in seconds
#: (sub-millisecond builds up to minute-long reorder searches).
TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0
)

#: Default buckets for node counts (model sizes, peak intermediates).
SIZE_BUCKETS: Tuple[float, ...] = (
    8, 32, 128, 512, 2_048, 8_192, 32_768, 131_072
)

#: Default buckets for relative/absolute error magnitudes.
ERROR_BUCKETS: Tuple[float, ...] = (
    1e-9, 1e-6, 1e-3, 0.01, 0.1, 1.0, 10.0, 100.0
)


def log_buckets(
    start: float, stop: float, factor: float = 2.0
) -> Tuple[float, ...]:
    """Geometric bucket bounds from ``start`` up to (at least) ``stop``.

    Log-spaced buckets give quantile estimates a constant *relative*
    error bound (each bucket is ``factor``x its neighbour), which is the
    right shape for latencies spanning microseconds to seconds.
    """
    if start <= 0 or stop <= start or factor <= 1.0:
        raise ObsError(
            "log_buckets needs 0 < start < stop and factor > 1"
        )
    bounds = [float(start)]
    while bounds[-1] < stop:
        bounds.append(bounds[-1] * factor)
    return tuple(bounds)


#: Log-bucketed latency bounds in seconds: 50µs … ~13s at 2x steps,
#: sized for the per-request anatomy histograms on the serving path.
LATENCY_BUCKETS: Tuple[float, ...] = log_buckets(5e-5, 10.0)


def histogram_quantile(state: Dict[str, object], q: float) -> Optional[float]:
    """Estimate the ``q``-quantile from a histogram snapshot dict.

    Finds the bucket holding the target rank and linearly interpolates
    within it, clamping to the recorded ``[min, max]`` — so the estimate
    is exact whenever observations are uniform within their bucket, and
    never escapes the observed range.  Returns None for empty histograms.
    """
    if not 0.0 <= q <= 1.0:
        raise ObsError(f"quantile q={q!r} outside [0, 1]")
    count = state.get("count") or 0
    if not count:
        return None
    buckets = state["buckets"]
    counts = state["counts"]
    low = state.get("min")
    high = state.get("max")
    rank = q * count
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        if not bucket_count:
            continue
        if cumulative + bucket_count >= rank:
            lower = buckets[index - 1] if index > 0 else low
            upper = buckets[index] if index < len(buckets) else high
            if low is not None:
                lower = max(lower, low) if lower is not None else low
            if high is not None:
                upper = min(upper, high) if upper is not None else high
            if upper is None or lower is None or upper <= lower:
                return upper if upper is not None else lower
            fraction = (rank - cumulative) / bucket_count
            return lower + fraction * (upper - lower)
        cumulative += bucket_count
    return high


class Counter:
    """Monotonically increasing count (events, rows, cache hits)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Point-in-time level (peak node count, rows/second of the last batch).

    ``kind`` declares the merge semantics: ``"max"`` gauges are peak
    readings (merging keeps the maximum — loss-free and associative),
    ``"last"`` gauges are current levels or rates where a stale peak
    would be a lie after e.g. a shard restart (merging keeps the most
    recent write).  The kind rides along in snapshots so remote merges
    apply the right rule.
    """

    __slots__ = ("name", "value", "kind")

    def __init__(self, name: str, kind: str = "max"):
        if kind not in ("max", "last"):
            raise ObsError(f"gauge {name!r} kind must be 'max' or 'last'")
        self.name = name
        self.value = 0.0
        self.kind = kind

    def set(self, value: float) -> None:
        """Overwrite the gauge with the latest reading."""
        self.value = float(value)

    def update_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if larger (peak tracking)."""
        if value > self.value:
            self.value = float(value)

    def to_dict(self) -> dict:
        return {"type": "gauge", "kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``buckets`` is a sorted tuple of inclusive upper bounds; an
    observation lands in the first bucket whose bound is ``>=`` the
    value, or in the overflow slot past the last bound.  ``counts`` has
    ``len(buckets) + 1`` entries (the last one is the overflow).
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = TIME_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(later <= earlier for later, earlier in zip(bounds[1:], bounds)):
            raise ObsError(
                f"histogram {name!r} needs strictly increasing buckets"
            )
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = 0
        for bound in self.buckets:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Average of all observations (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (exact-within-bucket; None if empty)."""
        return histogram_quantile(
            {
                "buckets": self.buckets,
                "counts": self.counts,
                "count": self.count,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
            },
            q,
        )

    def to_dict(self) -> dict:
        state = {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }
        state["p50"] = histogram_quantile(state, 0.50)
        state["p95"] = histogram_quantile(state, 0.95)
        state["p99"] = histogram_quantile(state, 0.99)
        return state


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Thread-safe store of named instruments with snapshot/diff/merge.

    Instrument creation is locked; updates go straight to the instrument
    (single bytecode-level mutations under the GIL — worst case a lost
    telemetry increment under free threading, never corruption).
    """

    def __init__(self):
        self._instruments: Dict[str, Instrument] = {}
        self._lock = threading.Lock()
        #: Enables derived metrics that cost extra work to compute
        #: (collapse error traversals, memory gauges).  Off by default.
        self.detailed = False

    # ------------------------------------------------------------------
    # Instrument accessors (create-or-get; handles are cache-stable)
    # ------------------------------------------------------------------
    def _get(self, name: str, cls, *args) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = cls(name, *args)
                    self._instruments[name] = instrument
        if not isinstance(instrument, cls):
            raise ObsError(
                f"instrument {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        return self._get(name, Counter)

    def gauge(self, name: str, kind: Optional[str] = None) -> Gauge:
        """The gauge named ``name``, created on first use.

        ``kind`` ("max" or "last") only applies on creation; asking for
        an existing gauge with a *different* kind is a programming error.
        """
        if kind is None:
            return self._get(name, Gauge)
        gauge = self._get(name, Gauge, kind)
        if gauge.kind != kind:
            raise ObsError(
                f"gauge {name!r} already registered with kind "
                f"{gauge.kind!r}, not {kind!r}"
            )
        return gauge

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram named ``name``; ``buckets`` only applies on creation."""
        if buckets is None:
            return self._get(name, Histogram)
        return self._get(name, Histogram, buckets)

    def names(self) -> List[str]:
        """Sorted names of all registered instruments."""
        return sorted(self._instruments)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """JSON-serialisable view of every instrument's current state."""
        with self._lock:
            return {
                name: instrument.to_dict()
                for name, instrument in sorted(self._instruments.items())
            }

    def reset(self) -> None:
        """Zero every instrument *in place* (cached handles stay valid)."""
        with self._lock:
            for instrument in self._instruments.values():
                if isinstance(instrument, Counter):
                    instrument.value = 0
                elif isinstance(instrument, Gauge):
                    instrument.value = 0.0
                else:
                    instrument.counts = [0] * len(instrument.counts)
                    instrument.sum = 0.0
                    instrument.count = 0
                    instrument.min = float("inf")
                    instrument.max = float("-inf")

    def merge(self, snapshot: Dict[str, dict]) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry.

        Counters and histogram buckets add; gauges merge by their
        declared kind — ``"max"`` gauges (peak readings) keep the
        maximum of both sides, ``"last"`` gauges (levels/rates) take the
        incoming value so a restarted shard's lower reading wins instead
        of a stale peak lingering forever.  Histograms must agree on
        bucket bounds.
        """
        for name, state in snapshot.items():
            kind = state.get("type")
            if kind == "counter":
                self.counter(name).inc(state["value"])
            elif kind == "gauge":
                gauge_kind = state.get("kind", "max")
                gauge = self.gauge(name, gauge_kind)
                if gauge_kind == "last":
                    gauge.set(state["value"])
                else:
                    gauge.update_max(state["value"])
            elif kind == "histogram":
                histogram = self.histogram(name, state["buckets"])
                if list(histogram.buckets) != [
                    float(b) for b in state["buckets"]
                ]:
                    raise ObsError(
                        f"histogram {name!r} bucket mismatch in merge"
                    )
                for index, count in enumerate(state["counts"]):
                    histogram.counts[index] += count
                histogram.sum += state["sum"]
                histogram.count += state["count"]
                if state["count"]:
                    histogram.min = min(histogram.min, state["min"])
                    histogram.max = max(histogram.max, state["max"])
            else:
                raise ObsError(f"unknown instrument type {kind!r} for {name!r}")

    @staticmethod
    def diff(before: Dict[str, dict], after: Dict[str, dict]) -> Dict[str, dict]:
        """Snapshot-shaped delta of what happened between two snapshots.

        Counters and histogram counts subtract; gauges keep the *after*
        reading (a level has no meaningful delta).  Instruments absent
        from ``before`` pass through unchanged.
        """
        delta: Dict[str, dict] = {}
        for name, state in after.items():
            previous = before.get(name)
            if previous is None or previous.get("type") != state.get("type"):
                delta[name] = dict(state)
                continue
            kind = state["type"]
            if kind == "counter":
                delta[name] = {
                    "type": "counter",
                    "value": state["value"] - previous["value"],
                }
            elif kind == "gauge":
                delta[name] = dict(state)
            else:
                count = state["count"] - previous["count"]
                delta[name] = {
                    "type": "histogram",
                    "buckets": list(state["buckets"]),
                    "counts": [
                        a - b
                        for a, b in zip(state["counts"], previous["counts"])
                    ],
                    "sum": state["sum"] - previous["sum"],
                    "count": count,
                    # min/max are not invertible; report the after view.
                    "min": state["min"] if count else None,
                    "max": state["max"] if count else None,
                }
        return delta


def merge_snapshots(snapshots: Sequence[Dict[str, dict]]) -> Dict[str, dict]:
    """Combine snapshot dictionaries from several processes into one view.

    The cluster router uses this to aggregate the ``serve.*`` metrics it
    fetched from each shard's ``stats`` op into one cluster-wide report:
    counters and histogram buckets add, gauges merge by declared kind
    (max-tracking vs last-write) — exactly
    :meth:`MetricsRegistry.merge` semantics, but as a pure
    function over plain snapshot dicts (no shared registry involved, so
    merging remote snapshots cannot pollute local telemetry).
    """
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge(snapshot)
    return registry.snapshot()


#: Process-global registry.  Never replaced (hot modules cache instrument
#: handles from it at import time); :meth:`MetricsRegistry.reset` clears it.
_REGISTRY = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY


def enable_detailed_metrics(enabled: bool = True) -> MetricsRegistry:
    """Toggle expensive derived metrics on the global registry."""
    _REGISTRY.detailed = enabled
    return _REGISTRY
