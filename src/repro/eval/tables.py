"""Plain-text table rendering for experiment reports.

The benchmark harness prints its results as fixed-width ASCII tables (and
optionally GitHub-flavored markdown) shaped like the paper's Table 1, so
the reproduction can be compared with the original side by side.
"""

from __future__ import annotations

from typing import List, Sequence


def format_cell(value: object, precision: int = 1) -> str:
    """Human-friendly cell text: floats rounded, None as a dash."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 1,
) -> str:
    """Render a fixed-width table with a header separator."""
    text_rows = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in text_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 1,
) -> str:
    """Render the same data as a GitHub-flavored markdown table."""
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        cells = [format_cell(cell, precision) for cell in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but there are {len(headers)} headers"
            )
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def multi_series_plot(
    series: dict,
    width: int = 60,
    label_x: str = "x",
) -> str:
    """ASCII rendering of several (x, y) series sharing one y-scale.

    ``series`` maps a label to its point list.  Each series gets its own
    marker character; overlapping cells show the later series' marker.
    Intended for the two-curve comparisons of Fig. 7a (flat ADD vs
    exploding Con) where relative magnitude is the message.
    """
    markers = "#*+o%@"
    all_points = [p for points in series.values() for p in points]
    if not all_points:
        return "(no data)"
    xs = sorted({x for x, _ in all_points})
    peak = max(y for _, y in all_points)
    scale = (width / peak) if peak > 0 else 0.0
    lines = []
    for index, (label, points) in enumerate(series.items()):
        lines.append(f"{markers[index % len(markers)]} = {label}")
    lines.append(f"{label_x:>8}")
    lookup = {
        label: dict(points) for label, points in series.items()
    }
    for x in xs:
        row = [" "] * (width + 1)
        annotations = []
        for index, label in enumerate(series):
            y = lookup[label].get(x)
            if y is None:
                continue
            column = min(width, int(round(y * scale)))
            row[column] = markers[index % len(markers)]
            annotations.append(f"{label}={y:.3g}")
        lines.append(f"{x:>8.3g} |{''.join(row)}| {' '.join(annotations)}")
    return "\n".join(lines)


def series_plot(
    points: Sequence[tuple],
    width: int = 60,
    label_x: str = "x",
    label_y: str = "y",
) -> str:
    """Poor-man's log-free ASCII rendering of an (x, y) series.

    One line per point with a proportional bar — enough to eyeball the
    shapes the paper's figures show (flat vs U-shaped error curves)
    directly in benchmark output.
    """
    if not points:
        return "(no data)"
    peak = max(y for _, y in points)
    scale = (width / peak) if peak > 0 else 0.0
    lines = [f"{label_x:>8}  {label_y}"]
    for x, y in points:
        bar = "#" * max(0, int(round(y * scale)))
        lines.append(f"{x:>8.3g}  {y:>10.4g} {bar}")
    return "\n".join(lines)
