"""Error metrics of the paper's evaluation protocol (Section 4).

For every simulation run (one input statistics point, one sequence) the
*relative error* ``RE`` compares a model's average (or maximum) estimate
with the gate-level reference.  The *average relative error* ``ARE``
averages ``RE`` over all runs of a sweep and is the headline quality
number of Table 1.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ModelError


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / truth`` (dimensionless, not percent).

    A zero reference with a nonzero estimate returns ``inf``; zero/zero
    is a perfect estimate (0.0).
    """
    if truth == 0.0:
        return 0.0 if estimate == 0.0 else float("inf")
    return abs(estimate - truth) / abs(truth)


def relative_error_percent(estimate: float, truth: float) -> float:
    """Relative error in percent, as the paper's tables report it."""
    return 100.0 * relative_error(estimate, truth)


def average_relative_error(errors: Iterable[float]) -> float:
    """ARE: mean of per-run relative errors (ignores infinities-free input)."""
    values = np.asarray(list(errors), dtype=float)
    if values.size == 0:
        raise ModelError("ARE of an empty error list is undefined")
    return float(np.mean(values))


def root_mean_square_error(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """RMS error between per-pattern estimates and references (fF)."""
    estimates = np.asarray(estimates, dtype=float)
    truths = np.asarray(truths, dtype=float)
    if estimates.shape != truths.shape:
        raise ModelError("estimate/truth arrays differ in shape")
    if estimates.size == 0:
        raise ModelError("RMSE of empty arrays is undefined")
    return float(np.sqrt(np.mean((estimates - truths) ** 2)))


def mean_absolute_error(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """Mean absolute per-pattern error (fF)."""
    estimates = np.asarray(estimates, dtype=float)
    truths = np.asarray(truths, dtype=float)
    if estimates.shape != truths.shape:
        raise ModelError("estimate/truth arrays differ in shape")
    if estimates.size == 0:
        raise ModelError("MAE of empty arrays is undefined")
    return float(np.mean(np.abs(estimates - truths)))
