"""Concurrent RTL-vs-gate-level evaluation sweeps (the Section 4 protocol).

The paper evaluates every model by "repeatedly running concurrent RTL and
gate-level simulations with random sequences ... with different values of
sp and st".  :func:`run_sweep` reproduces that: for each feasible point of
an ``(sp, st)`` grid it draws one Markov sequence, computes the golden
per-cycle switching capacitances, and records each model's average and
maximum estimates alongside the truth.  ARE numbers and the Fig.-7a
RE-vs-st curves are derived views of the same sweep.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.eval.metrics import average_relative_error, relative_error
from repro.models.base import PowerModel
from repro.netlist.netlist import Netlist
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.sim.power_sim import sequence_switching_capacitances
from repro.sim.sequences import feasible_st_range, markov_sequence

_MET = get_metrics()
_SWEEPS = _MET.counter("eval.sweeps")
_GRID_POINTS = _MET.counter("eval.grid_points")
_MODEL_RUNS = _MET.counter("eval.model_runs")


@dataclass(frozen=True)
class SweepConfig:
    """Grid and sequence parameters of one evaluation sweep.

    The defaults mirror the paper's protocol at a laptop-friendly scale:
    the paper used 10000-vector sequences; 3000 vectors keep the ARE
    sampling noise around a percent, far below the measured effects.
    """

    sp_values: Tuple[float, ...] = (0.3, 0.5, 0.7)
    st_values: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
    sequence_length: int = 3000
    seed: int = 2024
    #: Evaluation backend forced onto ADD-backed models for the sweep
    #: (``None`` keeps each model's own default; see
    #: :mod:`repro.dd.backends` for the names).
    kernel: Optional[str] = None

    def grid(self) -> List[Tuple[float, float]]:
        """All feasible ``(sp, st)`` points of the grid."""
        points = []
        for sp in self.sp_values:
            _, st_max = feasible_st_range(sp)
            for st in self.st_values:
                if st <= st_max + 1e-12:
                    points.append((sp, st))
        if not points:
            raise ModelError("sweep grid has no feasible (sp, st) points")
        return points


@dataclass(frozen=True)
class TruthRun:
    """One golden-model run: a sequence and its per-cycle capacitances."""

    sp: float
    st: float
    sequence: np.ndarray
    capacitances_fF: np.ndarray

    @property
    def average_fF(self) -> float:
        """True average switching capacitance of this run."""
        return float(np.mean(self.capacitances_fF))

    @property
    def maximum_fF(self) -> float:
        """True maximum (peak) switching capacitance of this run."""
        return float(np.max(self.capacitances_fF))


def compute_truth_runs(netlist: Netlist, config: SweepConfig) -> List[TruthRun]:
    """Simulate the golden model once per grid point.

    Shared by every model evaluation on the same netlist/config, so
    sweeping many models (or many model sizes, Fig. 7b) pays for the
    gate-level simulation only once.
    """
    tracer = get_tracer()
    runs = []
    with tracer.span("eval.truth_runs", netlist=netlist.name) as span:
        for index, (sp, st) in enumerate(config.grid()):
            with tracer.span("eval.grid_point", sp=sp, st=st):
                sequence = markov_sequence(
                    netlist.num_inputs,
                    config.sequence_length,
                    sp=sp,
                    st=st,
                    seed=config.seed + 101 * index,
                )
                capacitances = sequence_switching_capacitances(netlist, sequence)
            _GRID_POINTS.inc()
            runs.append(TruthRun(sp, st, sequence, capacitances))
        if tracer.enabled:
            span.update(grid_points=len(runs))
    return runs


@dataclass(frozen=True)
class SweepRow:
    """One grid point: the truth and every model's summary estimates."""

    sp: float
    st: float
    true_average_fF: float
    true_maximum_fF: float
    model_average_fF: Dict[str, float]
    model_maximum_fF: Dict[str, float]


@dataclass
class SweepResult:
    """Full sweep outcome with ARE accessors."""

    netlist_name: str
    model_names: List[str]
    rows: List[SweepRow]

    def are_average(self, model_name: str) -> float:
        """ARE (fraction) of a model's *average*-power estimates."""
        return average_relative_error(
            relative_error(row.model_average_fF[model_name], row.true_average_fF)
            for row in self.rows
        )

    def are_maximum(self, model_name: str) -> float:
        """ARE (fraction) of a model's *maximum*-power estimates."""
        return average_relative_error(
            relative_error(row.model_maximum_fF[model_name], row.true_maximum_fF)
            for row in self.rows
        )

    def re_curve(
        self, model_name: str, sp: float = 0.5
    ) -> List[Tuple[float, float]]:
        """The Fig.-7a view: ``(st, RE_average)`` points at fixed ``sp``."""
        curve = [
            (
                row.st,
                relative_error(
                    row.model_average_fF[model_name], row.true_average_fF
                ),
            )
            for row in self.rows
            if abs(row.sp - sp) < 1e-9
        ]
        if not curve:
            raise ModelError(f"no sweep rows at sp={sp}")
        return sorted(curve)

    def bound_violations(self, model_name: str) -> int:
        """Runs where a supposed upper bound fell below the true maximum."""
        return sum(
            1
            for row in self.rows
            if row.model_maximum_fF[model_name] < row.true_maximum_fF - 1e-6
        )


@contextmanager
def _forced_kernel(
    models: Dict[str, PowerModel], kernel: Optional[str]
) -> Iterator[None]:
    """Temporarily pin ``eval_kernel`` on every model that has one.

    The batch path (:meth:`PowerModel.sequence_summary` →
    ``pair_capacitances``) consults the attribute, so pinning it routes
    the whole sweep through the requested backend without threading a
    parameter down every hook.  Unknown names fail fast here, before any
    golden simulation time is spent.
    """
    if kernel is None:
        yield
        return
    from repro.dd import backends as _backends

    _backends.get_backend(kernel)  # typo check up front
    saved = {}
    for name, model in models.items():
        if hasattr(model, "eval_kernel"):
            saved[name] = model.eval_kernel
            model.eval_kernel = kernel
    try:
        yield
    finally:
        for name, value in saved.items():
            models[name].eval_kernel = value


def evaluate_models_on_runs(
    netlist_name: str,
    models: Dict[str, PowerModel],
    runs: Sequence[TruthRun],
    kernel: Optional[str] = None,
) -> SweepResult:
    """Evaluate models against precomputed golden runs."""
    if not models:
        raise ModelError("no models to evaluate")
    tracer = get_tracer()
    rows = []
    with tracer.span(
        "eval.models", netlist=netlist_name, num_models=len(models)
    ), _forced_kernel(models, kernel):
        for run in runs:
            averages = {}
            maxima = {}
            for name, model in models.items():
                # One batch evaluation per model per run (sequence_summary)
                # instead of separate average/maximum passes.
                averages[name], maxima[name] = model.sequence_summary(run.sequence)
                _MODEL_RUNS.inc()
            rows.append(
                SweepRow(
                    sp=run.sp,
                    st=run.st,
                    true_average_fF=run.average_fF,
                    true_maximum_fF=run.maximum_fF,
                    model_average_fF=averages,
                    model_maximum_fF=maxima,
                )
            )
    return SweepResult(netlist_name, list(models), rows)


def run_sweep(
    netlist: Netlist,
    models: Dict[str, PowerModel],
    config: SweepConfig | None = None,
) -> SweepResult:
    """One-call version: compute golden runs, then evaluate all models."""
    config = config if config is not None else SweepConfig()
    _SWEEPS.inc()
    with get_tracer().span("eval.sweep", netlist=netlist.name):
        runs = compute_truth_runs(netlist, config)
        return evaluate_models_on_runs(
            netlist.name, models, runs, kernel=config.kernel
        )
