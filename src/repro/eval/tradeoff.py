"""Size/accuracy trade-off exploration (Fig. 7b of the paper).

One exact (or large) ADD model is built once and progressively shrunk to
a ladder of node budgets; every size is evaluated on the *same* golden
runs, so the resulting curve isolates the effect of the approximation
degree exactly as the paper's Figure 7b does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ModelError
from repro.eval.runner import SweepConfig, compute_truth_runs, evaluate_models_on_runs
from repro.models.addmodel import AddPowerModel, build_add_model, shrink_model
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of the size/accuracy curve."""

    target_nodes: int
    actual_nodes: int
    are_average: float

    @property
    def are_percent(self) -> float:
        """ARE in percent, as the paper plots it."""
        return 100.0 * self.are_average


def size_accuracy_tradeoff(
    netlist: Netlist,
    sizes: Sequence[int],
    config: SweepConfig | None = None,
    strategy: str = "avg",
    base_model: Optional[AddPowerModel] = None,
    base_max_nodes: Optional[int] = None,
) -> List[TradeoffPoint]:
    """ARE of ADD models across a ladder of node budgets.

    Parameters
    ----------
    netlist:
        Circuit under study.
    sizes:
        Node budgets to evaluate (any order; deduplicated, evaluated
        descending so each model shrinks from the previous one).
    config:
        Evaluation sweep; defaults to :class:`SweepConfig`.
    strategy:
        Collapse strategy for all points (``avg`` reproduces Fig. 7b).
    base_model / base_max_nodes:
        Start from an existing model, or build one bounded by
        ``base_max_nodes`` (``None`` = exact) first.
    """
    if not sizes:
        raise ModelError("no sizes requested")
    config = config if config is not None else SweepConfig()
    if base_model is None:
        base_model = build_add_model(
            netlist, max_nodes=base_max_nodes, strategy=strategy
        )
    runs = compute_truth_runs(netlist, config)
    points = []
    current = base_model
    for target in sorted(set(int(s) for s in sizes), reverse=True):
        if target < 1:
            raise ModelError(f"size target must be >= 1, got {target}")
        current = shrink_model(current, target)
        result = evaluate_models_on_runs(
            netlist.name, {"ADD": current}, runs
        )
        points.append(
            TradeoffPoint(
                target_nodes=target,
                actual_nodes=current.size,
                are_average=result.are_average("ADD"),
            )
        )
    return sorted(points, key=lambda p: p.target_nodes)
