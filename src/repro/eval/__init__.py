"""Evaluation harness: metrics, (sp, st) sweeps, trade-off curves, tables."""

from repro.eval.metrics import (
    average_relative_error,
    mean_absolute_error,
    relative_error,
    relative_error_percent,
    root_mean_square_error,
)
from repro.eval.runner import (
    SweepConfig,
    SweepResult,
    SweepRow,
    TruthRun,
    compute_truth_runs,
    evaluate_models_on_runs,
    run_sweep,
)
from repro.eval.tables import (
    ascii_table,
    format_cell,
    markdown_table,
    multi_series_plot,
    series_plot,
)
from repro.eval.tradeoff import TradeoffPoint, size_accuracy_tradeoff

__all__ = [
    "relative_error",
    "relative_error_percent",
    "average_relative_error",
    "root_mean_square_error",
    "mean_absolute_error",
    "SweepConfig",
    "SweepResult",
    "SweepRow",
    "TruthRun",
    "compute_truth_runs",
    "evaluate_models_on_runs",
    "run_sweep",
    "TradeoffPoint",
    "size_accuracy_tradeoff",
    "ascii_table",
    "markdown_table",
    "format_cell",
    "series_plot",
    "multi_series_plot",
]
