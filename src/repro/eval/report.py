"""Assembly of the experiment report (EXPERIMENTS.md) from bench results.

Every benchmark under ``benchmarks/`` writes its regenerated table to
``benchmarks/results/<experiment>.txt``.  This module stitches those
artifacts into one markdown report with the experiment inventory from
DESIGN.md, so `EXPERIMENTS.md` is reproducible with two commands::

    pytest benchmarks/ --benchmark-only
    python -m repro.eval.report benchmarks/results EXPERIMENTS.md
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import List, Optional

#: The experiment inventory: (results file stem, title, paper artifact,
#: what a successful reproduction shows).
EXPERIMENTS = [
    (
        "fig7a_re_vs_st",
        "E1 — Figure 7a: relative error vs transition probability (cm85)",
        "Fig. 7a",
        "Con/Lin blow past 100% once st leaves the characterization point; "
        "the ADD curve stays flat.",
    ),
    (
        "fig7b_tradeoff",
        "E2 — Figure 7b: accuracy/size trade-off (cm85)",
        "Fig. 7b",
        "ARE falls monotonically with the node budget, spanning "
        "constant-estimator quality down to near-exactness.",
    ),
    (
        "table1_average",
        "E3 — Table 1 (average estimators)",
        "Table 1, cols 4-8",
        "ADD < Lin < Con on every circuit; order-of-magnitude mean gaps.",
    ),
    (
        "table1_bounds",
        "E4 — Table 1 (upper bounds)",
        "Table 1, cols 9-12",
        "zero conservatism violations; the pattern-dependent bound is "
        "tighter than the constant bound.",
    ),
    (
        "ablation_strategy",
        "E5 — ablation: collapse strategy",
        "Sec. 3 design choices",
        "score-guided collapsing beats random; average replacement beats "
        "max replacement on average accuracy.",
    ),
    (
        "ablation_ordering",
        "E6 — ablation: variable ordering",
        "Sec. 2.1 remark",
        "interleaved xi/xf and fanin-DFS input order dominate the "
        "alternatives; some alternatives are exponentially infeasible.",
    ),
    (
        "rtl_composition",
        "E7 — RTL composition of bounds",
        "Sec. 1.2 argument",
        "summed pattern-dependent bounds stay conservative and beat the "
        "summed-worst-case bound, most at low activity.",
    ),
    (
        "hybrid_glitch",
        "E8 — hybrid structural + characterized residual",
        "Sec. 2 remark",
        "the analytical core plus a small characterized residual recovers "
        "glitch power near the characterization point.",
    ),
    (
        "construction_cost",
        "E9 — model construction cost",
        "Table 1 CPU columns",
        "build time grows with circuit size and budget, staying "
        "laptop-scale for the suite.",
    ),
    (
        "workloads",
        "E10 — correlated realistic workloads (extension)",
        "Sec. 1 out-of-sample argument, amplified",
        "the exact ADD model has zero error on counters/bursts/one-hot "
        "streams; the characterized baselines drift badly; a compressed "
        "ADD sits in between.",
    ),
    (
        "multiplier_blowup",
        "E11 — multiplier ADD blowup (the C6288 limitation)",
        "Sec. 4 closing remark",
        "exact ADD size grows geometrically with operand width; a "
        "fixed-budget model's ARE grows with it.",
    ),
]


@dataclass
class ReportSection:
    """One experiment's rendered section."""

    title: str
    body: str
    missing: bool


def load_sections(results_dir: str) -> List[ReportSection]:
    """Read every experiment artifact (missing ones are flagged)."""
    sections = []
    for stem, title, artifact, expectation in EXPERIMENTS:
        path = os.path.join(results_dir, f"{stem}.txt")
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                content = handle.read().rstrip()
            body = (
                f"*Paper artifact: {artifact}.  Expected shape: {expectation}*\n\n"
                "```\n" + content + "\n```"
            )
            sections.append(ReportSection(title, body, missing=False))
        else:
            body = (
                f"*Paper artifact: {artifact}.*\n\n"
                f"_not yet generated — run `pytest benchmarks/ "
                f"--benchmark-only` to produce `{path}`_"
            )
            sections.append(ReportSection(title, body, missing=True))
    return sections


def render_report(results_dir: str, preamble: Optional[str] = None) -> str:
    """Render the full markdown report."""
    sections = load_sections(results_dir)
    lines = [
        "# EXPERIMENTS — paper vs measured",
        "",
        preamble
        or (
            "Reproduction of every table and figure of Bogliolo, Benini, "
            "De Micheli, *Characterization-Free Behavioral Power Modeling* "
            "(DATE 1998).  Absolute numbers are not expected to match the "
            "paper (substituted MCNC netlists, different gate library, pure "
            "Python on modern hardware — see DESIGN.md §4); the *shapes* "
            "are the reproduction target and each section states the "
            "expected shape.  Regenerate with "
            "`pytest benchmarks/ --benchmark-only` followed by "
            "`python -m repro.eval.report`."
        ),
        "",
    ]
    generated = sum(1 for s in sections if not s.missing)
    lines.append(
        f"Artifacts present: {generated}/{len(sections)}."
    )
    lines.append("")
    for section in sections:
        lines.append(f"## {section.title}")
        lines.append("")
        lines.append(section.body)
        lines.append("")
    return "\n".join(lines)


def write_report(
    results_dir: str, output_path: str, preamble: Optional[str] = None
) -> str:
    """Render and write the report; returns the output path."""
    text = render_report(results_dir, preamble)
    with open(output_path, "w", encoding="utf-8") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")
    return output_path


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.eval.report [results_dir] [output.md]``."""
    args = list(sys.argv[1:] if argv is None else argv)
    results_dir = args[0] if args else "benchmarks/results"
    output = args[1] if len(args) > 1 else "EXPERIMENTS.md"
    path = write_report(results_dir, output)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
