"""Pluggable storage backends for the model store.

:class:`~repro.serve.store.ModelStore` used to be hard-wired to a local
directory; this module extracts its byte-level persistence behind the
:class:`StoreBackend` protocol so the *same* store logic (content keys,
manifest, quarantine, LRU) runs against any medium:

- :class:`LocalDirBackend` — today's behaviour bit for bit: one file per
  object under a root directory, every write through temp file +
  :func:`os.replace` so concurrent readers never observe a partial
  object, transient-``OSError`` retry, and the ``store.io.read`` /
  ``store.io.write`` / ``store.torn_write`` chaos sites.
- :class:`ObjectStoreBackend` — a minimal S3-style put/get/list/head/
  delete client speaking JSON lines over TCP (the framing of
  :mod:`repro.serve.protocol`) to an
  :class:`~repro.serve.objectstore.ObjectStoreServer`.  Every ``get`` is
  verified against the server-reported SHA-256 before it is believed, so
  a corrupted wire hop surfaces as an :class:`OSError` (a retriable I/O
  failure), never as silent bad data.

Backends register themselves in :data:`BACKENDS`; the conformance suite
(``tests/test_store_backends.py``) runs the same contract tests against
every registered backend.  :func:`open_backend` turns a CLI-facing spec
string (a directory path, or ``obj://host:port``) into a backend, and
:func:`sync_stores` replicates objects store-to-store with content-hash
verification — the ``repro store sync`` command.

Object names are flat, ``/``-separated strings (``objects/<key>.json``,
``manifest.json``); backends map them to their medium however they like,
but must preserve the exact bytes and atomic-publish semantics: a name
either resolves to a complete previously-put payload or does not resolve
at all.
"""

from __future__ import annotations

import base64
import hashlib
import os
import socket
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.errors import ModelError
from repro.obs.metrics import get_metrics
from repro.serve import protocol
from repro.serve.breaker import breaker_for
from repro.serve.protocol import unwrap_response
from repro.testing import faults

_MET = get_metrics()
_IO_RETRIES = _MET.counter("serve.store.io_retries")
_REMOTE_REQUESTS = _MET.counter("serve.store.backend.remote_requests")
_REMOTE_BYTES_OUT = _MET.counter("serve.store.backend.remote_bytes_out")
_REMOTE_BYTES_IN = _MET.counter("serve.store.backend.remote_bytes_in")
_REMOTE_HASH_MISMATCHES = _MET.counter(
    "serve.store.backend.hash_mismatches"
)
_SYNC_COPIED = _MET.counter("serve.store.sync.copied")
_SYNC_SKIPPED = _MET.counter("serve.store.sync.skipped")
_SYNC_VERIFIED = _MET.counter("serve.store.sync.verified")
_SYNC_MISMATCHES = _MET.counter("serve.store.sync.mismatches")


def sha256_hex(data: bytes) -> str:
    """Content hash used for object verification everywhere."""
    return hashlib.sha256(data).hexdigest()


def retry_io(
    operation: Callable[[], object],
    attempts: int = 3,
    base_delay_s: float = 0.01,
):
    """Run an I/O operation, retrying transient OSErrors.

    A store shared over NFS (or a flaky network hop to an object server)
    sees sporadic EIO/EAGAIN-style failures that succeed moments later;
    one bounded retry loop covers every backend read and write.  A
    FileNotFoundError is *not* transient — it propagates immediately so
    miss detection stays exact.
    """
    last: Optional[OSError] = None
    for attempt in range(attempts):
        if attempt:
            _IO_RETRIES.inc()
            time.sleep(base_delay_s * (2 ** (attempt - 1)))
        try:
            return operation()
        except FileNotFoundError:
            raise
        except OSError as exc:
            last = exc
    assert last is not None
    raise last


@dataclass(frozen=True)
class ObjectInfo:
    """Metadata one ``head`` call returns for a stored object."""

    name: str
    size: int
    sha256: str
    mtime: float


class StoreBackend:
    """Byte-level persistence contract of the model store.

    Implementations must make ``put`` an atomic publish: a concurrent
    ``get`` of the same name observes either the previous complete
    payload or the new complete payload, never a mixture or a prefix.
    ``get`` raises :class:`FileNotFoundError` for an absent name and
    :class:`OSError` for an unreadable-but-present one, so callers can
    keep miss detection exact while treating disk trouble as transient.
    """

    #: Registry name ("local", "object"); set by subclasses.
    kind: str = "abstract"

    def put(self, name: str, data: bytes) -> None:
        raise NotImplementedError

    def get(self, name: str) -> bytes:
        raise NotImplementedError

    def head(self, name: str) -> Optional[ObjectInfo]:
        raise NotImplementedError

    def list(self, prefix: str = "") -> List[str]:
        raise NotImplementedError

    def delete(self, name: str) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable location of this backend (for CLI output)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()!r})"


def _check_name(name: str) -> str:
    """Reject names that could escape a backend's namespace."""
    if (
        not name
        or name.startswith("/")
        or ".." in name.split("/")
        or "\\" in name
    ):
        raise ModelError(f"malformed object name {name!r}")
    return name


class LocalDirBackend(StoreBackend):
    """Objects as files under a root directory (the original store layout)."""

    kind = "local"

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, name: str) -> Path:
        return self.root / _check_name(name)

    def put(self, name: str, data: bytes) -> None:
        path = self._path(name)
        path.parent.mkdir(parents=True, exist_ok=True)

        def write() -> None:
            faults.maybe_fail("store.io.write")
            spec = faults.check("store.torn_write")
            if spec is not None:
                # Chaos hook: simulate a crashed writer that bypassed the
                # atomic rename — a truncated file appears at the *final*
                # path, exactly what quarantine/reconciliation must absorb.
                path.write_bytes(data[: max(1, len(data) // 2)])
                return
            handle, temp = tempfile.mkstemp(
                dir=str(path.parent), prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "wb") as stream:
                    stream.write(data)
                os.replace(temp, path)
            except BaseException:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                raise

        retry_io(write)

    def get(self, name: str) -> bytes:
        path = self._path(name)

        def read() -> bytes:
            faults.maybe_fail("store.io.read")
            return path.read_bytes()

        return retry_io(read)

    def head(self, name: str) -> Optional[ObjectInfo]:
        path = self._path(name)
        try:
            data = path.read_bytes()
            stat = path.stat()
        except OSError:
            return None
        return ObjectInfo(
            name=name,
            size=len(data),
            sha256=sha256_hex(data),
            mtime=stat.st_mtime,
        )

    def list(self, prefix: str = "") -> List[str]:
        _check_name(prefix or "x")
        names: List[str] = []
        for path in self.root.rglob("*"):
            if not path.is_file() or path.suffix == ".tmp":
                continue
            name = path.relative_to(self.root).as_posix()
            if name.startswith(prefix):
                names.append(name)
        return sorted(names)

    def delete(self, name: str) -> bool:
        try:
            self._path(name).unlink()
            return True
        except FileNotFoundError:
            return False

    def describe(self) -> str:
        return str(self.root)


class ObjectStoreBackend(StoreBackend):
    """Client for the S3-style JSON-lines object server.

    One blocking socket, one in-flight request at a time (the store's
    access pattern), payloads base64-framed on the wire.  Every ``get``
    is verified against the server-reported SHA-256; a mismatch raises
    :class:`OSError` so the store's transient-I/O handling (retry, then
    treat as miss) applies instead of trusting corrupt bytes.  The
    ``store.backend.unavailable`` chaos site fires here, before the
    socket is touched, to simulate an unreachable object server.

    Every instance shares the process-wide circuit breaker for its
    endpoint (:func:`~repro.serve.breaker.breaker_for`): once the object
    server is known dead, calls fail in microseconds (still as
    :class:`OSError`, so every existing degrade path applies) instead of
    each paying a connect timeout; pass ``use_breaker=False`` to opt
    out.  Structured replies — including errors — count as life;
    only transport failures trip the breaker.
    """

    kind = "object"

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        use_breaker: bool = True,
    ):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.breaker = breaker_for(host, self.port) if use_breaker else None
        self._sock: Optional[socket.socket] = None
        self._stream = None
        self._next_id = 0
        # One in-flight request per connection: concurrent store users
        # (server thread + prefetch/warmer threads) serialise here
        # instead of interleaving frames on the shared socket.
        self._lock = threading.Lock()

    # -- plumbing ------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is not None:
            return
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            if self.breaker is not None:
                self.breaker.record_failure()
            raise OSError(
                f"cannot reach object store {self.host}:{self.port}: {exc}"
            ) from exc
        self._stream = self._sock.makefile("rwb")

    def _teardown(self) -> None:
        stream, sock, self._stream, self._sock = (
            self._stream, self._sock, None, None,
        )
        for closable in (stream, sock):
            if closable is None:
                continue
            try:
                closable.close()
            except OSError:  # pragma: no cover - already-dead socket
                pass

    def _call(self, payload: Dict):
        import json

        faults.maybe_fail("store.backend.unavailable")
        if self.breaker is not None and not self.breaker.allow():
            raise OSError(
                f"circuit open for object store {self.host}:{self.port}; "
                f"not dialing a known-dead endpoint"
            )
        with self._lock:
            self._connect()
            self._next_id += 1
            payload = dict(payload, id=self._next_id)
            _REMOTE_REQUESTS.inc()
            try:
                line = protocol.encode(payload)
                _REMOTE_BYTES_OUT.inc(len(line))
                self._stream.write(line)
                self._stream.flush()
                reply = self._stream.readline()
            except (OSError, ValueError) as exc:
                self._teardown()
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise OSError(f"object store connection failed: {exc}") from exc
            if not reply:
                self._teardown()
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise OSError("object store closed the connection")
            _REMOTE_BYTES_IN.inc(len(reply))
            if self.breaker is not None:
                self.breaker.record_success()
        response = json.loads(reply.decode("utf-8"))
        try:
            return unwrap_response(response)
        except protocol.ResponseError as exc:
            if exc.error_type == "not_found":
                raise FileNotFoundError(str(exc)) from None
            raise OSError(f"object store error: {exc}") from None

    # -- StoreBackend --------------------------------------------------
    def put(self, name: str, data: bytes) -> None:
        _check_name(name)
        spec = faults.check("store.torn_write")
        if spec is not None:
            # Chaos hook: ship a truncated payload as if the writer died
            # mid-upload and a non-atomic server kept the prefix.
            data = data[: max(1, len(data) // 2)]
        retry_io(
            lambda: self._call(
                {
                    "op": "obj.put",
                    "name": name,
                    "data": base64.b64encode(data).decode("ascii"),
                    "sha256": sha256_hex(data),
                }
            )
        )

    def get(self, name: str) -> bytes:
        _check_name(name)

        def fetch() -> bytes:
            result = self._call({"op": "obj.get", "name": name})
            data = base64.b64decode(result["data"])
            if sha256_hex(data) != result.get("sha256"):
                _REMOTE_HASH_MISMATCHES.inc()
                raise OSError(
                    f"object {name!r} failed content verification in transit"
                )
            return data

        return retry_io(fetch)

    def head(self, name: str) -> Optional[ObjectInfo]:
        _check_name(name)
        try:
            result = retry_io(
                lambda: self._call({"op": "obj.head", "name": name})
            )
        except (FileNotFoundError, OSError):
            return None
        return ObjectInfo(
            name=name,
            size=int(result["size"]),
            sha256=str(result["sha256"]),
            mtime=float(result["mtime"]),
        )

    def list(self, prefix: str = "") -> List[str]:
        result = retry_io(
            lambda: self._call({"op": "obj.list", "prefix": prefix})
        )
        return list(result["names"])

    def delete(self, name: str) -> bool:
        _check_name(name)
        try:
            result = retry_io(
                lambda: self._call({"op": "obj.delete", "name": name})
            )
        except FileNotFoundError:
            return False
        return bool(result["deleted"])

    def describe(self) -> str:
        return f"obj://{self.host}:{self.port}"

    def close(self) -> None:
        """Close the connection (the next call redials)."""
        self._teardown()


# ---------------------------------------------------------------------------
# Registry + spec parsing
# ---------------------------------------------------------------------------
#: kind -> spec-opening factory; the conformance suite iterates this.
BACKENDS: Dict[str, Callable[[str], StoreBackend]] = {}


def register_backend(kind: str, factory: Callable[[str], StoreBackend]) -> None:
    """Register a backend kind for :func:`open_backend` and conformance."""
    BACKENDS[kind] = factory


def _open_object_spec(spec: str) -> StoreBackend:
    rest = spec[len("obj://"):]
    host, _, port = rest.partition(":")
    if not host or not port.isdigit():
        raise ModelError(
            f"malformed object-store spec {spec!r} (want obj://host:port)"
        )
    return ObjectStoreBackend(host, int(port))


register_backend("local", LocalDirBackend)
register_backend("object", _open_object_spec)


def open_backend(spec: "str | Path | StoreBackend") -> StoreBackend:
    """Turn a store spec into a backend.

    Accepts a :class:`StoreBackend` (returned unchanged), an
    ``obj://host:port`` URL (remote object store), or anything else as a
    local directory path — so every ``--store`` flag transparently gains
    remote support.
    """
    if isinstance(spec, StoreBackend):
        return spec
    spec = str(spec)
    if spec.startswith("obj://"):
        return BACKENDS["object"](spec)
    return BACKENDS["local"](spec)


# ---------------------------------------------------------------------------
# Store-to-store replication
# ---------------------------------------------------------------------------
@dataclass
class SyncReport:
    """Outcome of one :func:`sync_stores` replication pass."""

    copied: int = 0
    skipped: int = 0
    verified: int = 0
    mismatches: int = 0
    bytes_copied: int = 0
    errors: List[str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.errors is None:
            self.errors = []

    @property
    def ok(self) -> bool:
        return self.mismatches == 0 and not self.errors

    def summary(self) -> str:
        return (
            f"sync: {self.copied} copied ({self.bytes_copied} bytes), "
            f"{self.skipped} up-to-date, {self.verified} hash-verified, "
            f"{self.mismatches} mismatches"
        )


def sync_stores(
    source: StoreBackend,
    destination: StoreBackend,
    prefix: str = "objects/",
    verify: bool = True,
) -> SyncReport:
    """Replicate objects from one backend to another, hash-verified.

    For every source object under ``prefix``: if the destination already
    holds a byte-identical copy (same SHA-256 via ``head``), it is
    skipped; otherwise the payload is copied and — with ``verify`` —
    read back from the destination and its content hash compared against
    the source bytes.  A mismatch counts (and is reported) rather than
    silently shipping a corrupt replica.  The manifest is deliberately
    *not* copied: it is a rebuildable metadata cache, and the
    destination store reconciles its own from the objects on next load.
    """
    report = SyncReport()
    for name in source.list(prefix):
        try:
            data = source.get(name)
        except (FileNotFoundError, OSError) as exc:
            report.errors.append(f"{name}: source read failed: {exc}")
            continue
        digest = sha256_hex(data)
        existing = destination.head(name)
        if existing is not None and existing.sha256 == digest:
            _SYNC_SKIPPED.inc()
            report.skipped += 1
            continue
        try:
            destination.put(name, data)
        except OSError as exc:
            report.errors.append(f"{name}: destination write failed: {exc}")
            continue
        _SYNC_COPIED.inc()
        report.copied += 1
        report.bytes_copied += len(data)
        if verify:
            try:
                replica = destination.get(name)
            except (FileNotFoundError, OSError) as exc:
                report.errors.append(f"{name}: verify read failed: {exc}")
                continue
            if sha256_hex(replica) != digest:
                _SYNC_MISMATCHES.inc()
                report.mismatches += 1
                report.errors.append(f"{name}: replica hash mismatch")
            else:
                _SYNC_VERIFIED.inc()
                report.verified += 1
    return report
