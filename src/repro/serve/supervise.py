"""Supervised control-plane processes: restart-with-backoff on death.

The WAL (:mod:`repro.serve.wal`) makes a SIGKILLed
:class:`~repro.serve.queue.BuildQueueServer` or
:class:`~repro.serve.objectstore.ObjectStoreServer` *recoverable*; this
module makes the recovery *happen*.  A :class:`Supervisor` runs each
registered service in its own child process, watches for death, and
relaunches with exponential backoff — each relaunch carrying an
incremented **generation** number that the child installs as its
``crash_token``, so a chaos plan can address incarnations individually
(``queue.server.crash`` with ``max_token=1`` kills generation 0 after K
journal appends and generation 1 mid-replay, then lets generation 2
live: the canonical kill-during-recovery drill).

Ports are pinned after the first bind: a service registered with
``port=0`` gets an ephemeral port once, and every restart rebinds the
*same* port (``SO_REUSEADDR`` absorbs the dead incarnation's TIME_WAIT
sockets), so clients reconnect to the address they already know.

Restart totals are visible as ``serve.supervisor.restarts`` and through
:meth:`Supervisor.restarts`; a service that exceeds ``max_restarts`` is
marked failed and left down — crash loops should page, not spin.
"""

from __future__ import annotations

import asyncio
import logging
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ModelError
from repro.obs.metrics import get_metrics

_LOG = logging.getLogger("repro.serve.supervise")

_MET = get_metrics()
_RESTARTS = _MET.counter("serve.supervisor.restarts")
_LAUNCH_FAILURES = _MET.counter("serve.supervisor.launch_failures")


# ---------------------------------------------------------------------------
# Child entry points (module-level: spawn-safe)
# ---------------------------------------------------------------------------
def _queue_service_main(config_kwargs: Dict, conn, generation: int) -> None:
    """Run one BuildQueueServer incarnation; report the bound port."""
    from repro.serve.queue import BuildQueueServer, QueueConfig

    server = BuildQueueServer(QueueConfig(**config_kwargs))
    server.crash_token = generation

    async def _main() -> None:
        try:
            await server.start()
        except Exception as exc:  # noqa: BLE001 - report, then die
            conn.send({"error": f"{type(exc).__name__}: {exc}"})
            conn.close()
            raise
        conn.send({"port": server.port})
        conn.close()
        await server.serve_forever()

    asyncio.run(_main())


def _objectstore_service_main(
    config_kwargs: Dict, conn, generation: int
) -> None:
    """Run one ObjectStoreServer incarnation; report the bound port."""
    from repro.serve.objectstore import ObjectStoreConfig, ObjectStoreServer

    server = ObjectStoreServer(ObjectStoreConfig(**config_kwargs))

    async def _main() -> None:
        try:
            await server.start()
        except Exception as exc:  # noqa: BLE001 - report, then die
            conn.send({"error": f"{type(exc).__name__}: {exc}"})
            conn.close()
            raise
        conn.send({"port": server.port})
        conn.close()
        await server.serve_forever()

    asyncio.run(_main())


_ENTRIES = {
    "queue": _queue_service_main,
    "objectstore": _objectstore_service_main,
}


@dataclass
class _Service:
    """Parent-side bookkeeping for one supervised child."""

    name: str
    kind: str
    config_kwargs: Dict
    process: Optional[object] = None
    port: Optional[int] = None
    generation: int = 0
    restarts: int = 0
    failed: bool = False
    last_restart_at: float = field(default=0.0)


class Supervisor:
    """Run control-plane servers under restart-with-backoff.

    Usage::

        sup = Supervisor()
        sup.add_queue(QueueConfig(wal_dir=...))
        sup.add_object_store(ObjectStoreConfig(root=...))
        sup.start()
        host, port = sup.endpoint("queue")
        ...
        sup.stop()

    Children are forked where the platform allows (inheriting the fault
    environment), spawned otherwise — the same policy as the worker farm
    and the serving cluster.  The supervisor itself is a daemon-thread
    monitor; it never builds, serves or journals.
    """

    def __init__(
        self,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        max_restarts: int = 20,
        ready_timeout_s: float = 30.0,
        poll_interval_s: float = 0.05,
    ):
        import multiprocessing

        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        self._ctx = multiprocessing.get_context(method)
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.max_restarts = max_restarts
        self.ready_timeout_s = ready_timeout_s
        self.poll_interval_s = poll_interval_s
        self._services: Dict[str, _Service] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._started = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _add(self, name: str, kind: str, config_kwargs: Dict) -> str:
        if self._started:
            raise ModelError("register services before Supervisor.start()")
        if name in self._services:
            raise ModelError(f"duplicate supervised service {name!r}")
        self._services[name] = _Service(
            name=name, kind=kind, config_kwargs=dict(config_kwargs)
        )
        return name

    def add_queue(self, config=None, name: str = "queue") -> str:
        """Register a build-queue server (config: QueueConfig)."""
        from repro.serve.queue import QueueConfig

        config = config or QueueConfig()
        return self._add(name, "queue", vars(config))

    def add_object_store(self, config=None, name: str = "objectstore") -> str:
        """Register an object-store server (config: ObjectStoreConfig)."""
        from repro.serve.objectstore import ObjectStoreConfig

        config = config or ObjectStoreConfig()
        return self._add(name, "objectstore", vars(config))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Supervisor":
        if self._started:
            return self
        self._started = True
        for service in self._services.values():
            if not self._launch(service):
                self.stop()
                raise ModelError(
                    f"supervised service {service.name!r} failed to start"
                )
        self._monitor = threading.Thread(
            target=self._watch, name="supervisor", daemon=True
        )
        self._monitor.start()
        return self

    def _launch(self, service: _Service) -> bool:
        """Spawn one incarnation and wait for its ready handshake."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_ENTRIES[service.kind],
            args=(dict(service.config_kwargs), child_conn, service.generation),
            daemon=True,
            name=f"{service.name}-gen{service.generation}",
        )
        process.start()
        child_conn.close()
        service.process = process
        expires = time.monotonic() + self.ready_timeout_s
        message = None
        while time.monotonic() < expires:
            try:
                if parent_conn.poll(0.05):
                    message = parent_conn.recv()
                    break
            except (EOFError, OSError):
                break  # child died with the pipe open
            if not process.is_alive():
                # One final drain: the child may have sent just before
                # exiting (an error report) or been killed mid-replay
                # (nothing at all — the double-kill drill's window).
                try:
                    if parent_conn.poll(0.05):
                        message = parent_conn.recv()
                except (EOFError, OSError):
                    pass
                break
        parent_conn.close()
        if not message or "port" not in message:
            _LAUNCH_FAILURES.inc()
            if message and "error" in message:
                _LOG.warning(
                    "service %r (generation %d) failed to start: %s",
                    service.name,
                    service.generation,
                    message["error"],
                )
            return False
        service.port = int(message["port"])
        # Pin the port: every later incarnation rebinds the address the
        # clients already dialed.
        service.config_kwargs["port"] = service.port
        return True

    def _watch(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            for service in list(self._services.values()):
                process = service.process
                if service.failed or process is None or process.is_alive():
                    continue
                if self._stop.is_set():
                    return
                if service.restarts >= self.max_restarts:
                    service.failed = True
                    _LOG.error(
                        "service %r exceeded %d restarts; leaving it down",
                        service.name,
                        self.max_restarts,
                    )
                    continue
                delay = min(
                    self.backoff_max_s,
                    self.backoff_base_s * (2 ** min(service.restarts, 10)),
                )
                if self._stop.wait(delay):
                    return
                service.generation += 1
                service.restarts += 1
                service.last_restart_at = time.monotonic()
                _RESTARTS.inc()
                _LOG.warning(
                    "service %r died (exitcode=%s); restart #%d as "
                    "generation %d",
                    service.name,
                    process.exitcode,
                    service.restarts,
                    service.generation,
                )
                # A failed launch (e.g. killed again mid-replay) leaves
                # a dead process behind; the next tick relaunches as the
                # following generation.
                self._launch(service)

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout)
            self._monitor = None
        for service in self._services.values():
            process = service.process
            if process is None:
                continue
            if process.is_alive():
                process.terminate()
            process.join(timeout)
            if process.is_alive():  # pragma: no cover - stuck child
                process.kill()
                process.join(timeout)

    # ------------------------------------------------------------------
    # Introspection & chaos helpers
    # ------------------------------------------------------------------
    def _require(self, name: str) -> _Service:
        service = self._services.get(name)
        if service is None:
            raise ModelError(f"no supervised service {name!r}")
        return service

    def endpoint(self, name: str) -> Tuple[str, int]:
        """``(host, port)`` a client should dial; stable across restarts."""
        service = self._require(name)
        if service.port is None:
            raise ModelError(f"service {name!r} has not bound yet")
        return service.config_kwargs.get("host", "127.0.0.1"), service.port

    def spec(self, name: str) -> str:
        """Dialable spec: ``host:port`` (queue) / ``obj://host:port``."""
        host, port = self.endpoint(name)
        service = self._require(name)
        return (
            f"obj://{host}:{port}"
            if service.kind == "objectstore"
            else f"{host}:{port}"
        )

    def restarts(self, name: str) -> int:
        """How many times this service has been relaunched."""
        return self._require(name).restarts

    def generation(self, name: str) -> int:
        """The incarnation number currently (or last) running."""
        return self._require(name).generation

    def alive(self, name: str) -> bool:
        process = self._require(name).process
        return process is not None and process.is_alive()

    def kill(self, name: str) -> None:
        """SIGKILL the service's current incarnation (chaos drills)."""
        process = self._require(name).process
        if process is not None and process.pid and process.is_alive():
            os.kill(process.pid, signal.SIGKILL)

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = ["Supervisor"]
